"""Flight recorder tests: ring semantics, slow-op log, dump schema,
tree integration, and exporter round-trips.

The recorder is the per-op half of the observability contract (the
registry is the aggregate half): a bounded ring of the last N operations
with exact I/O deltas, plus a top-K log of the slowest ops that survives
ring eviction.  The property tests drive random op mixes through the
recorder and both exporters and assert the dump round-trips losslessly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factory import build_rum_tree
from repro.obs import FlightRecorder, Observability, OpRecord
from repro.obs.recorder import IO_FIELDS, SCHEMA
from repro.rtree.geometry import Rect
from repro.storage.iostats import IOSnapshot
from repro.workload.objects import default_network_workload


def _record(rec, op="query", dur_s=0.001, io8=(1, 0, 1, 0, 0, 0, 0, 0),
            lookups=0, hits=0, served="traversal"):
    rec.record(op, "RUM-tree", dur_s, io8, lookups, hits, served)


class TestRingSemantics:
    def test_capacity_evicts_oldest_first(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            _record(rec, dur_s=i / 1000.0)
        assert len(rec) == 4
        assert rec.recorded_total == 10
        assert rec.dropped == 6
        seqs = [r.seq for r in rec.records()]
        assert seqs == [6, 7, 8, 9]  # oldest first, newest retained

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(slow_top_k=-1)

    def test_clear_keeps_lifetime_counters(self):
        rec = FlightRecorder(capacity=8)
        for _ in range(5):
            _record(rec)
        rec.clear()
        assert len(rec) == 0
        assert rec.recorded_total == 5
        assert rec.dropped == 5

    def test_record_fields_round_trip_to_views(self):
        rec = FlightRecorder()
        _record(rec, op="update", dur_s=0.25,
                io8=(2, 1, 3, 0, 0, 0, 1, 0), lookups=7, hits=4, served="-")
        (r,) = rec.records()
        assert r.op == "update"
        assert r.tree == "RUM-tree"
        assert r.duration_ms == pytest.approx(250.0)
        assert r.io == IOSnapshot(2, 1, 3, 0, 0, 0, 1, 0)
        assert r.memo_lookups == 7
        assert r.memo_hits == 4
        assert r.served_by == "-"
        # counted page accesses: leaf + index + log (internal cached)
        assert r.pages_touched == r.io.counted_total


class TestSlowOpLog:
    def test_top_k_keeps_slowest_and_survives_eviction(self):
        rec = FlightRecorder(capacity=4, slow_ms=10.0, slow_top_k=3)
        # 20 ops, durations 0..19ms: slow ops are >= 10ms; top-3 = 17,18,19.
        for i in range(20):
            _record(rec, dur_s=i / 1000.0)
        slow = rec.slow_records()
        assert [round(r.duration_ms) for r in slow] == [19, 18, 17]
        # The slowest retained ops are long gone from the 4-deep ring.
        ring_seqs = {r.seq for r in rec.records()}
        assert all(r.seq not in ring_seqs or r.seq >= 16 for r in slow)

    def test_below_threshold_never_enters_log(self):
        rec = FlightRecorder(slow_ms=10.0)
        for _ in range(50):
            _record(rec, dur_s=0.001)
        assert rec.slow_records() == []

    def test_duration_ties_break_by_sequence(self):
        rec = FlightRecorder(slow_ms=1.0, slow_top_k=2)
        for _ in range(4):
            _record(rec, dur_s=0.005)
        slow = rec.slow_records()
        assert len(slow) == 2
        assert slow[0].seq < slow[1].seq  # equal durations: oldest first


class TestDumpSchema:
    def test_dump_is_json_ready_and_schema_tagged(self):
        rec = FlightRecorder(capacity=8, slow_ms=1.0)
        for i in range(12):
            _record(rec, dur_s=i / 1000.0)
        dump = rec.dump()
        # Must survive json round-trip unchanged (CI artifact contract).
        assert json.loads(json.dumps(dump)) == dump
        assert dump["schema"] == SCHEMA
        assert dump["capacity"] == 8
        assert dump["recorded_total"] == 12
        assert dump["dropped"] == 4
        assert dump["backend"]
        assert len(dump["ops"]) == 8
        for op in dump["ops"]:
            assert set(op) == {
                "seq", "op", "tree", "duration_ms", "io", "memo_lookups",
                "memo_hits", "served_by", "pages_touched",
            }
            assert set(op["io"]) == set(IO_FIELDS)

    def test_op_record_dict_round_trip(self):
        rec = FlightRecorder()
        _record(rec, op="knn", dur_s=0.002,
                io8=(4, 0, 2, 0, 1, 0, 0, 0), lookups=9, hits=3)
        (r,) = rec.records()
        assert OpRecord.from_dict(r.as_dict()) == r


class TestTreeIntegration:
    def _workload(self, tree, n_objects=100, n_updates=150):
        w = default_network_workload(n_objects, moving_distance=0.02, seed=5)
        for oid, rect in w.initial():
            tree.insert_object(oid, rect)
        for oid, old, new in w.updates(n_updates):
            tree.update_object(oid, old, new)

    def test_trace_level_records_every_op(self):
        obs = Observability(level="trace", recorder_capacity=4096)
        tree = build_rum_tree(node_size=2048, obs=obs)
        self._workload(tree)
        tree.search(Rect(0.2, 0.2, 0.8, 0.8))
        tree.nearest_neighbors(0.5, 0.5, 3)
        rec = obs.recorder
        # At trace the update stride never widens: every op is in the ring
        # (plus cleaner cycles, which arrive on their own schedule).
        by_op = {}
        for r in rec.records():
            by_op[r.op] = by_op.get(r.op, 0) + 1
        assert by_op["insert"] == 100  # loading inserts
        assert by_op["update"] == 150
        assert by_op["query"] == 1
        assert by_op["knn"] == 1

    def test_update_records_reconcile_with_iostats_at_trace(self):
        obs = Observability(level="trace", recorder_capacity=4096)
        tree = build_rum_tree(node_size=2048, obs=obs)
        w = default_network_workload(100, moving_distance=0.02, seed=5)
        for oid, rect in w.initial():
            tree.insert_object(oid, rect)
        obs.recorder.clear()
        before = tree.stats.snapshot()
        for oid, old, new in w.updates(150):
            tree.update_object(oid, old, new)
        delta = tree.stats.snapshot() - before
        updates = [r for r in obs.recorder.records() if r.op == "update"]
        assert len(updates) == 150
        total = IOSnapshot()
        for r in updates:
            total = total + r.io
        # Cleaner steps run inside the update op, so the sum of the
        # records' exact deltas is the interval's whole IOStats delta.
        assert total == delta

    def test_queries_carry_memo_columns_and_serving_decision(self):
        obs = Observability(level="trace")
        tree = build_rum_tree(node_size=2048, obs=obs)
        self._workload(tree)
        obs.recorder.clear()
        tree.search(Rect(0.0, 0.0, 1.0, 1.0))
        (r,) = [x for x in obs.recorder.records() if x.op == "query"]
        assert r.served_by in ("mirror", "traversal")
        # A full-extent query inspects every surfaced entry in the memo.
        assert r.memo_lookups > 0
        assert 0 <= r.memo_hits <= r.memo_lookups

    def test_off_level_has_no_recorder(self):
        obs = Observability.disabled()
        assert obs.recorder is None
        tree = build_rum_tree(node_size=2048, obs=obs)
        self._workload(tree, n_updates=20)  # must not raise


# -- exporter round-trip property tests -------------------------------------

_OPS = st.sampled_from(["query", "knn", "update", "batch", "cleaner_cycle"])
_IO8 = st.tuples(*[st.integers(min_value=0, max_value=50)] * 8)


@st.composite
def _op_mix(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    ops = []
    for _ in range(n):
        lookups = draw(st.integers(min_value=0, max_value=30))
        ops.append((
            draw(_OPS),
            draw(st.floats(min_value=0.0, max_value=0.05,
                           allow_nan=False, allow_infinity=False)),
            draw(_IO8),
            lookups,
            draw(st.integers(min_value=0, max_value=lookups)),
            draw(st.sampled_from(["mirror", "traversal", "-"])),
        ))
    return ops


class TestExporterRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(mix=_op_mix(), capacity=st.integers(min_value=1, max_value=16))
    def test_dump_json_round_trip_over_random_mixes(self, mix, capacity):
        rec = FlightRecorder(capacity=capacity, slow_ms=5.0, slow_top_k=4)
        for op, dur, io8, lookups, hits, served in mix:
            rec.record(op, "T", dur, io8, lookups, hits, served)
        dump = json.loads(json.dumps(rec.dump()))
        assert dump["recorded_total"] == len(mix)
        assert dump["dropped"] == max(0, len(mix) - capacity)
        assert len(dump["ops"]) == min(len(mix), capacity)
        # Every dumped record reconstructs to the exact retained view.
        rebuilt = [OpRecord.from_dict(d) for d in dump["ops"]]
        assert rebuilt == rec.records()
        rebuilt_slow = [OpRecord.from_dict(d) for d in dump["slow_ops"]]
        assert rebuilt_slow == rec.slow_records()

    @settings(max_examples=25, deadline=None)
    @given(mix=_op_mix())
    def test_registry_jsonl_and_prometheus_round_trip(self, mix):
        """A registry fed the same op mix exports consistently through
        both the JSON and Prometheus paths."""
        from repro.obs import MetricsRegistry, metrics_json, prometheus_text

        reg = MetricsRegistry()
        ops_c = reg.counter("recorder.ops")
        dur_h = reg.histogram("op.duration_ms")
        for _op, dur, _io8, _l, _h, _s in mix:
            ops_c.inc()
            dur_h.observe(dur * 1000.0)
        snap = reg.snapshot()
        parsed = json.loads(metrics_json(snap))
        assert parsed["counters"].get("recorder.ops", 0) == len(mix)
        if mix:
            assert parsed["histograms"]["op.duration_ms"]["count"] == len(mix)
        text = prometheus_text(snap)
        assert f"repro_recorder_ops {len(mix)}" in text
        if mix:
            assert f"repro_op_duration_ms_count {len(mix)}" in text
            # Cumulative bucket counts end at the total count.
            assert f'repro_op_duration_ms_bucket{{le="+Inf"}} {len(mix)}' in text
