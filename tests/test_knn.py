"""Tests for k-nearest-neighbour search on all trees (memo-filtered on
the RUM-tree)."""

import math
import random

import pytest

from conftest import SMALL_NODE, populate, random_walk
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.rtree.geometry import Rect


def _euclidean(rect: Rect, x: float, y: float) -> float:
    cx, cy = rect.center()
    return math.hypot(cx - x, cy - y)


def _oracle_knn(positions, x, y, k, alive=None):
    candidates = [
        (oid, rect)
        for oid, rect in positions.items()
        if alive is None or oid in alive
    ]
    candidates.sort(key=lambda item: _euclidean(item[1], x, y))
    return [oid for oid, _rect in candidates[:k]]


class TestMinDist:
    def test_inside_is_zero(self):
        assert Rect(0.2, 0.2, 0.8, 0.8).min_dist(0.5, 0.5) == 0.0

    def test_axis_distance(self):
        r = Rect(0.4, 0.4, 0.6, 0.6)
        assert r.min_dist(0.1, 0.5) == pytest.approx(0.3)
        assert r.min_dist(0.5, 0.9) == pytest.approx(0.3)

    def test_corner_distance(self):
        r = Rect(0.4, 0.4, 0.6, 0.6)
        assert r.min_dist(0.1, 0.1) == pytest.approx(math.hypot(0.3, 0.3))


@pytest.mark.parametrize(
    "builder", [build_rstar_tree, build_fur_tree, build_rum_tree]
)
class TestKNNAllTrees:
    def test_matches_oracle(self, builder):
        tree = builder(node_size=SMALL_NODE)
        positions = populate(tree, 200, seed=150)
        rng = random.Random(151)
        for _ in range(20):
            x, y = rng.random(), rng.random()
            got = [oid for oid, _r in tree.nearest_neighbors(x, y, 5)]
            want = _oracle_knn(positions, x, y, 5)
            assert got == want

    def test_results_ordered_by_distance(self, builder):
        tree = builder(node_size=SMALL_NODE)
        populate(tree, 150, seed=152)
        hits = tree.nearest_neighbors(0.5, 0.5, 10)
        distances = [_euclidean(rect, 0.5, 0.5) for _oid, rect in hits]
        assert distances == sorted(distances)

    def test_k_larger_than_population(self, builder):
        tree = builder(node_size=SMALL_NODE)
        populate(tree, 7, seed=153)
        assert len(tree.nearest_neighbors(0.5, 0.5, 50)) == 7

    def test_k_zero(self, builder):
        tree = builder(node_size=SMALL_NODE)
        populate(tree, 10, seed=154)
        assert tree.nearest_neighbors(0.5, 0.5, 0) == []


class TestRUMKNNFiltering:
    def test_obsolete_versions_never_returned(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.0
        )
        # Object 1's stale version sits exactly at the query point; its
        # latest position is far away.
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        tree.update_object(1, None, Rect.from_point(0.9, 0.9))
        tree.insert_object(2, Rect.from_point(0.6, 0.6))
        hits = tree.nearest_neighbors(0.5, 0.5, 1)
        assert hits[0][0] == 2  # the stale (0.5, 0.5) entry was filtered

    def test_deleted_objects_skipped(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        tree.insert_object(2, Rect.from_point(0.7, 0.7))
        tree.delete_object(1)
        hits = tree.nearest_neighbors(0.5, 0.5, 2)
        assert [oid for oid, _r in hits] == [2]

    def test_after_heavy_churn_matches_oracle(self):
        tree = build_rum_tree(node_size=SMALL_NODE, inspection_ratio=0.2)
        positions = populate(tree, 150, seed=155)
        random_walk(tree, positions, steps=600, seed=156, distance=0.15)
        rng = random.Random(157)
        for _ in range(15):
            x, y = rng.random(), rng.random()
            got = [oid for oid, _r in tree.nearest_neighbors(x, y, 8)]
            assert got == _oracle_knn(positions, x, y, 8)

    def test_knn_reads_few_leaves(self):
        """Best-first kNN must not read the whole leaf level."""
        tree = build_rum_tree(node_size=SMALL_NODE)
        populate(tree, 400, seed=158)
        n_leaves = tree.num_leaf_nodes()
        before = tree.stats.snapshot()
        tree.nearest_neighbors(0.5, 0.5, 3)
        delta = tree.stats.snapshot() - before
        assert delta.leaf_reads < n_leaves / 2
        assert delta.leaf_writes == 0


class TestKNNOnBulkLoadedTrees:
    def test_bulk_loaded_rum_knn(self):
        from repro.rtree.bulk import bulk_load_objects

        tree = build_rum_tree(node_size=SMALL_NODE)
        positions = {
            oid: Rect.from_point((oid % 17) / 17.0, (oid % 13) / 13.0)
            for oid in range(200)
        }
        bulk_load_objects(tree, positions.items())
        got = [oid for oid, _r in tree.nearest_neighbors(0.31, 0.42, 6)]
        assert got == _oracle_knn(positions, 0.31, 0.42, 6)
