"""Tests for the node model and the binary page codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtree.geometry import Rect
from repro.rtree.node import (
    CLASSIC_LEAF_ENTRY_BYTES,
    INDEX_ENTRY_BYTES,
    NO_PAGE,
    NODE_HEADER_BYTES,
    RUM_LEAF_ENTRY_BYTES,
    IndexEntry,
    LeafEntry,
    Node,
    index_capacity,
    leaf_capacity,
)
from repro.storage.codec import NodeCodec, PageOverflowError

coords = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def leaf_entries(draw, with_stamp: bool) -> LeafEntry:
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    oid = draw(st.integers(min_value=0, max_value=2**40))
    stamp = draw(st.integers(min_value=0, max_value=2**40)) if with_stamp else 0
    return LeafEntry(Rect(x1, y1, x2, y2), oid, stamp)


class TestCapacities:
    def test_paper_fanouts_at_8192(self):
        # 8192-byte pages: 204 classic leaf entries vs 145 RUM entries —
        # the fanout difference behind the RUM-tree's ~10% search overhead.
        assert leaf_capacity(8192, CLASSIC_LEAF_ENTRY_BYTES) == 204
        assert leaf_capacity(8192, RUM_LEAF_ENTRY_BYTES) == 145
        assert index_capacity(8192) == 204

    @pytest.mark.parametrize("node_size", [1024, 2048, 4096, 8192])
    def test_capacity_matches_layout(self, node_size):
        for entry_bytes in (CLASSIC_LEAF_ENTRY_BYTES, RUM_LEAF_ENTRY_BYTES):
            cap = leaf_capacity(node_size, entry_bytes)
            assert NODE_HEADER_BYTES + cap * entry_bytes <= node_size
            assert NODE_HEADER_BYTES + (cap + 1) * entry_bytes > node_size

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            leaf_capacity(64, CLASSIC_LEAF_ENTRY_BYTES)


class TestNode:
    def test_mbr(self):
        node = Node(
            0,
            True,
            [
                LeafEntry(Rect(0.1, 0.1, 0.2, 0.2), 1),
                LeafEntry(Rect(0.5, 0.4, 0.9, 0.6), 2),
            ],
        )
        assert node.mbr() == Rect(0.1, 0.1, 0.9, 0.6)

    def test_find_child_index(self):
        node = Node(
            0,
            False,
            [
                IndexEntry(Rect(0, 0, 0.5, 0.5), 7),
                IndexEntry(Rect(0.5, 0.5, 1, 1), 9),
            ],
        )
        assert node.find_child_index(9) == 1
        with pytest.raises(KeyError):
            node.find_child_index(42)

    def test_len_and_repr(self):
        node = Node(3, True, [LeafEntry(Rect.from_point(0.5, 0.5), 1)])
        assert len(node) == 1
        assert "leaf" in repr(node)

    def test_entry_equality(self):
        a = LeafEntry(Rect.from_point(0.1, 0.1), 5, 7)
        b = LeafEntry(Rect.from_point(0.1, 0.1), 5, 7)
        assert a == b and hash(a) == hash(b)
        assert a != LeafEntry(Rect.from_point(0.1, 0.1), 5, 8)
        ia = IndexEntry(Rect(0, 0, 1, 1), 4)
        ib = IndexEntry(Rect(0, 0, 1, 1), 4)
        assert ia == ib and hash(ia) == hash(ib)


class TestCodecRoundtrip:
    def _roundtrip(self, codec: NodeCodec, node: Node) -> Node:
        return codec.decode(node.page_id, codec.encode(node))

    def test_empty_leaf(self):
        codec = NodeCodec(512)
        node = Node(5, True, [], prev_leaf=3, next_leaf=9)
        back = self._roundtrip(codec, node)
        assert back.is_leaf and back.entries == []
        assert back.prev_leaf == 3 and back.next_leaf == 9

    def test_classic_leaf_drops_stamp(self):
        codec = NodeCodec(512, rum_leaves=False)
        node = Node(
            1, True, [LeafEntry(Rect(0.1, 0.2, 0.3, 0.4), 77, stamp=123)]
        )
        back = self._roundtrip(codec, node)
        assert back.entries[0].oid == 77
        assert back.entries[0].stamp == 0  # classic layout has no stamp

    def test_rum_leaf_preserves_stamp(self):
        codec = NodeCodec(512, rum_leaves=True)
        node = Node(
            1, True, [LeafEntry(Rect(0.1, 0.2, 0.3, 0.4), 77, stamp=123)]
        )
        back = self._roundtrip(codec, node)
        assert back.entries[0].oid == 77
        assert back.entries[0].stamp == 123

    def test_internal_node(self):
        codec = NodeCodec(512)
        node = Node(
            2,
            False,
            [
                IndexEntry(Rect(0, 0, 0.5, 1), 10),
                IndexEntry(Rect(0.5, 0, 1, 1), 11),
            ],
        )
        back = self._roundtrip(codec, node)
        assert not back.is_leaf
        assert back.entries == node.entries

    def test_no_page_sentinel_survives(self):
        codec = NodeCodec(512)
        node = Node(0, True, [])
        back = self._roundtrip(codec, node)
        assert back.prev_leaf == NO_PAGE and back.next_leaf == NO_PAGE

    def test_encode_pads_to_page_size(self):
        codec = NodeCodec(1024)
        node = Node(0, True, [LeafEntry(Rect.from_point(0.5, 0.5), 1)])
        assert len(codec.encode(node)) == 1024

    def test_overflow_rejected(self):
        codec = NodeCodec(512, rum_leaves=True)
        entries = [
            LeafEntry(Rect.from_point(0.5, 0.5), i)
            for i in range(codec.leaf_cap + 1)
        ]
        with pytest.raises(PageOverflowError):
            codec.encode(Node(0, True, entries))

    def test_decode_wrong_length_rejected(self):
        codec = NodeCodec(512)
        with pytest.raises(ValueError):
            codec.decode(0, b"\x00" * 100)

    def test_disk_and_codec_size_must_match(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import DiskManager
        from repro.storage.iostats import IOStats

        with pytest.raises(ValueError):
            BufferPool(DiskManager(512), NodeCodec(1024), IOStats())

    @given(
        st.lists(leaf_entries(with_stamp=True), max_size=8),
        st.integers(min_value=-1, max_value=100),
        st.integers(min_value=-1, max_value=100),
    )
    def test_rum_leaf_roundtrip_property(self, entries, prev, next_):
        codec = NodeCodec(1024, rum_leaves=True)
        node = Node(7, True, entries, prev_leaf=prev, next_leaf=next_)
        back = codec.decode(7, codec.encode(node))
        assert back.entries == entries
        assert (back.prev_leaf, back.next_leaf) == (prev, next_)

    @given(st.lists(leaf_entries(with_stamp=False), max_size=10))
    def test_classic_leaf_roundtrip_property(self, entries):
        codec = NodeCodec(1024, rum_leaves=False)
        node = Node(7, True, entries)
        back = codec.decode(7, codec.encode(node))
        assert back.entries == entries

    def test_entry_byte_constants(self):
        assert CLASSIC_LEAF_ENTRY_BYTES == 40
        assert RUM_LEAF_ENTRY_BYTES == 56
        assert INDEX_ENTRY_BYTES == 40
