"""Cost-model drift monitor tests.

The drift monitor compares the Section-4 closed-form expected I/O per
operation against a live EWMA of measured counted I/O.  Tests cover the
EWMA math itself, the gauge wiring, the per-tree drift report, and the
headline acceptance check: at the Figure-10 workload configuration the
RUM-tree's drift ratios stay inside the model's error envelope (the
model describes the tree it was derived for).
"""

import pytest

from repro.factory import build_rum_tree
from repro.obs import Observability
from repro.obs.drift import DriftMonitor, OpDriftTracker
from repro.obs.metrics import MetricsRegistry
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator


class TestTrackerMath:
    def test_first_sample_seeds_ewma(self):
        t = OpDriftTracker("update", lambda tr: 4.0, alpha=0.1)
        t.observe(8.0)
        assert t.samples == 1
        assert t.measured == 8.0

    def test_ewma_folds_with_alpha(self):
        t = OpDriftTracker("update", lambda tr: 4.0, alpha=0.5)
        t.observe(8.0)
        t.observe(4.0)
        assert t.measured == pytest.approx(6.0)  # 8 + 0.5*(4-8)
        t.observe(4.0)
        assert t.measured == pytest.approx(5.0)

    def test_window_ewma_independent_of_io_ewma(self):
        t = OpDriftTracker("query", lambda tr: 1.0, alpha=0.5)
        t.observe_window(0.1, 0.2)
        t.observe_window(0.3, 0.2)
        assert t.window_samples == 2
        assert t.window_w == pytest.approx(0.2)
        assert t.window_h == pytest.approx(0.2)
        assert t.samples == 0  # untouched

    def test_ratio_zero_before_samples_or_without_prediction(self):
        t = OpDriftTracker("update", lambda tr: 4.0)
        assert t.ratio() == 0.0  # no samples yet
        t.observe(8.0)
        assert t.ratio() == pytest.approx(2.0)
        z = OpDriftTracker("update", lambda tr: 0.0)
        z.observe(8.0)
        assert z.ratio() == 0.0  # model predicts nothing

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            OpDriftTracker("update", lambda tr: 1.0, alpha=0.0)
        with pytest.raises(ValueError):
            OpDriftTracker("update", lambda tr: 1.0, alpha=1.5)


class TestMonitorGauges:
    def test_track_binds_four_gauges_per_op(self):
        reg = MetricsRegistry()
        mon = DriftMonitor(reg)
        tracker = mon.track("update", lambda tr: 5.0)
        tracker.observe(10.0)
        snap = reg.snapshot()
        assert snap.gauges["drift.update.predicted_io"] == pytest.approx(5.0)
        assert snap.gauges["drift.update.measured_io"] == pytest.approx(10.0)
        assert snap.gauges["drift.update.ratio"] == pytest.approx(2.0)
        assert snap.gauges["drift.update.samples"] == 1

    def test_rows_one_per_op_class_sorted(self):
        reg = MetricsRegistry()
        mon = DriftMonitor(reg)
        mon.track("update", lambda tr: 2.0).observe(2.0)
        mon.track("query", lambda tr: 3.0).observe(6.0)
        rows = mon.rows()
        assert [r["op"] for r in rows] == ["query", "update"]
        by_op = {r["op"]: r for r in rows}
        assert by_op["update"]["drift_ratio"] == pytest.approx(1.0)
        assert by_op["query"]["drift_ratio"] == pytest.approx(2.0)
        assert by_op["query"]["samples"] == 1

    def test_retrack_rebinds_gauges_to_newest_tracker(self):
        reg = MetricsRegistry()
        mon = DriftMonitor(reg)
        old = mon.track("update", lambda tr: 1.0)
        old.observe(7.0)
        new = mon.track("update", lambda tr: 1.0)
        new.observe(3.0)
        snap = reg.snapshot()
        assert snap.gauges["drift.update.measured_io"] == pytest.approx(3.0)


class TestTreeIntegration:
    def _run(self, tree, n=400, n_updates=800, n_queries=60):
        w = default_network_workload(n, moving_distance=0.01, seed=11)
        for oid, rect in w.initial():
            tree.insert_object(oid, rect)
        for oid, old, new in w.updates(n_updates):
            tree.update_object(oid, old, new)
        for q in RangeQueryGenerator(side=0.01, seed=29).queries(n_queries):
            tree.search(q)

    def test_drift_report_empty_when_off(self):
        tree = build_rum_tree(node_size=2048, obs=Observability.disabled())
        assert tree.drift_report() == []
        tree2 = build_rum_tree(node_size=2048)
        assert tree2.drift_report() == []

    def test_drift_gauges_exported_via_prometheus(self):
        from repro.obs import prometheus_text

        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        self._run(tree, n=150, n_updates=200, n_queries=10)
        text = prometheus_text(obs.registry)
        for op in ("update", "query"):
            for g in ("predicted_io", "measured_io", "ratio", "samples"):
                assert f"repro_drift_{op}_{g} " in text

    def test_fig10_configuration_ratio_within_model_envelope(self):
        """Acceptance: at the paper's standard workload shape the memo
        model's update prediction tracks the measured EWMA.  The model
        carries idealisations (uniform leaves, fixed cleaning yield), so
        the envelope is a factor band, not an equality."""
        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        self._run(tree)
        rows = {r["op"]: r for r in tree.drift_report()}
        upd = rows["update"]
        assert upd["samples"] > 0
        assert upd["predicted_io"] > 0
        assert 0.5 <= upd["drift_ratio"] <= 2.0
        qry = rows["query"]
        assert qry["samples"] > 0
        assert qry["predicted_io"] > 0
        assert 0.25 <= qry["drift_ratio"] <= 4.0

    def test_sampling_still_feeds_drift_ewma(self):
        """Even with the adaptive update stride widening, sampled
        updates keep feeding the EWMA — samples grow with the workload."""
        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        self._run(tree, n=150, n_updates=600, n_queries=0)
        (upd,) = [r for r in tree.drift_report() if r["op"] == "update"]
        # 150 inserts always sample; of the 600 updates at least the
        # stride-spaced ones do.  Far fewer than every op, far more
        # than none.
        assert upd["samples"] >= 150 + 600 // 256
        assert upd["measured_io"] > 0


class TestDriftExperiment:
    def test_run_drift_rows(self, monkeypatch):
        from repro.experiments import run_drift

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        result = run_drift()
        assert result.rows
        # Every evaluated tree contributes an update and a query row.
        pairs = {(r["tree"], r["op"]) for r in result.rows}
        trees = {t for t, _ in pairs}
        assert len(trees) >= 3
        for t in trees:
            assert (t, "update") in pairs
            assert (t, "query") in pairs
        for r in result.rows:
            assert set(r) >= {
                "op", "predicted_io", "measured_io", "drift_ratio", "samples"
            }
            assert r["samples"] > 0
