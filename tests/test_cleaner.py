"""Tests for the garbage cleaner: tokens, Property 1, phantom inspection."""

import random

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    leaf_entry_count,
    populate,
    random_walk,
)
from repro.factory import build_rum_tree
from repro.rtree.geometry import Rect


def _token_tree(ir=0.5, n_tokens=1, **kwargs):
    return build_rum_tree(
        node_size=SMALL_NODE,
        clean_upon_touch=False,
        inspection_ratio=ir,
        n_tokens=n_tokens,
        **kwargs,
    )


class TestConfiguration:
    def test_inspection_ratio_exposed(self):
        tree = _token_tree(ir=0.25)
        assert tree.cleaner.inspection_ratio == 0.25
        assert tree.cleaner.inspection_interval == pytest.approx(4.0)

    def test_zero_ratio_never_cleans(self):
        tree = _token_tree(ir=0.0)
        positions = populate(tree, 60, seed=80)
        random_walk(tree, positions, steps=200, seed=81)
        assert tree.cleaner.leaves_inspected == 0
        assert tree.garbage_count() > 0

    def test_invalid_parameters(self):
        from repro.core.cleaner import GarbageCleaner

        tree = _token_tree()
        with pytest.raises(ValueError):
            GarbageCleaner(tree, n_tokens=-1)
        with pytest.raises(ValueError):
            GarbageCleaner(tree, inspection_ratio=-0.5)
        with pytest.raises(ValueError):
            GarbageCleaner(tree, phantom_lag_cycles=0)

    def test_fractional_ratio_realised_exactly(self):
        tree = _token_tree(ir=0.3)
        positions = populate(tree, 80, seed=82)
        before = tree.cleaner.leaves_inspected
        random_walk(tree, positions, steps=400, seed=83)
        inspected = tree.cleaner.leaves_inspected - before
        assert inspected == pytest.approx(0.3 * 400, abs=2)


class TestCleaningEffect:
    def test_cleaner_removes_garbage(self):
        tree = _token_tree(ir=0.5)
        positions = populate(tree, 100, seed=84)
        random_walk(tree, positions, steps=500, seed=85, distance=0.2)
        # With aggressive cleaning the tree stays near one entry/object.
        assert leaf_entry_count(tree) < 100 * 1.6
        assert_search_matches_oracle(tree, positions)

    def test_higher_ratio_less_garbage(self):
        garbage = {}
        for ir in (0.05, 0.8):
            tree = _token_tree(ir=ir)
            positions = populate(tree, 120, seed=86)
            random_walk(tree, positions, steps=600, seed=87, distance=0.15)
            garbage[ir] = tree.garbage_count()
        assert garbage[0.8] < garbage[0.05]

    def test_cleaning_charges_leaf_io(self):
        tree = _token_tree(ir=1.0)
        positions = populate(tree, 60, seed=88)
        before = tree.stats.snapshot()
        random_walk(tree, positions, steps=100, seed=89)
        delta = tree.stats.snapshot() - before
        # Every update pays ~2 for the insert; the cleaner adds about one
        # read (plus a write when it actually removed something) per update.
        assert delta.leaf_reads > 150


class TestPropertyOne:
    def test_quiescent_full_cycle_removes_all_garbage(self):
        """Property 1: after every leaf has been visited once with no new
        updates, all previously obsolete entries are gone."""
        tree = _token_tree(ir=0.2)
        positions = populate(tree, 120, seed=90)
        random_walk(tree, positions, steps=400, seed=91, distance=0.25)
        assert tree.garbage_count() > 0
        tree.cleaner.run_full_cycle()
        assert tree.garbage_count() == 0
        assert leaf_entry_count(tree) == 120
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()

    def test_full_cycle_drains_memo_of_real_entries(self):
        tree = _token_tree(ir=0.2, phantom_inspection=True)
        positions = populate(tree, 100, seed=92)
        random_walk(tree, positions, steps=300, seed=93, distance=0.2)
        tree.cleaner.run_full_cycle()
        # After a quiescent cycle, every remaining memo entry is a phantom
        # (N_old not drained only for objects with no obsolete entries).
        assert tree.garbage_count() == 0

    def test_underflow_during_cleaning_reinserts_survivors(self):
        tree = _token_tree(ir=0.0)  # build garbage first, no cleaning
        rng = random.Random(94)
        positions = {}
        for oid in range(100):
            rect = Rect.from_point(rng.random(), rng.random())
            positions[oid] = rect
            tree.insert_object(oid, rect)
        # Concentrate updates so some leaves become nearly all garbage.
        for oid in range(100):
            new = Rect.from_point(rng.random() * 0.1, rng.random() * 0.1)
            tree.update_object(oid, None, new)
            positions[oid] = new
        tree.cleaner.n_tokens = 1
        tree.cleaner.inspection_ratio = 1.0
        removed = tree.cleaner.run_full_cycle()
        assert removed > 0
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()
        assert leaf_entry_count(tree) == 100


class TestPhantomInspection:
    def test_phantoms_eventually_purged(self):
        tree = _token_tree(ir=0.5, phantom_lag_cycles=1)
        positions = populate(tree, 60, seed=95)
        # Operations on objects that never existed create phantoms.
        for oid in (900, 901, 902):
            tree.delete_object(oid)
        assert all(tree.memo.get(oid) is not None for oid in (900, 901, 902))
        # Drive enough cycles for the purge to fire.
        for _ in range(4):
            tree.cleaner.run_full_cycle()
        assert all(tree.memo.get(oid) is None for oid in (900, 901, 902))
        assert_search_matches_oracle(tree, positions)

    def test_purge_counts_reported(self):
        tree = _token_tree(ir=0.5, phantom_lag_cycles=1)
        populate(tree, 40, seed=96)
        for oid in range(500, 510):
            tree.delete_object(oid)
        for _ in range(4):
            tree.cleaner.run_full_cycle()
        assert tree.cleaner.phantoms_purged >= 10

    def test_correctness_with_aggressive_phantom_inspection(self):
        """Even with the paper's single-cycle rule, queries stay correct."""
        tree = _token_tree(ir=0.6, phantom_lag_cycles=1)
        positions = populate(tree, 100, seed=97)
        random_walk(tree, positions, steps=700, seed=98, distance=0.15)
        assert_search_matches_oracle(tree, positions)


class TestMultipleTokens:
    @pytest.mark.parametrize("n_tokens", [2, 4])
    def test_multi_token_correctness(self, n_tokens):
        tree = _token_tree(ir=0.5, n_tokens=n_tokens)
        positions = populate(tree, 120, seed=99)
        random_walk(tree, positions, steps=500, seed=100, distance=0.2)
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()

    def test_same_ratio_same_inspections(self):
        inspected = {}
        for n_tokens in (1, 4):
            tree = _token_tree(ir=0.4, n_tokens=n_tokens)
            positions = populate(tree, 100, seed=101)
            random_walk(tree, positions, steps=300, seed=102)
            inspected[n_tokens] = tree.cleaner.leaves_inspected
        assert inspected[1] == pytest.approx(inspected[4], abs=4)


class TestTokenResilience:
    def test_tokens_survive_leaf_dissolution(self):
        """Cleaning that underflows leaves re-homes any parked token."""
        tree = _token_tree(ir=1.0)
        rng = random.Random(103)
        positions = {}
        for oid in range(150):
            rect = Rect.from_point(rng.random(), rng.random())
            positions[oid] = rect
            tree.insert_object(oid, rect)
        # Move everything into one corner: massive garbage + dissolutions.
        for oid in range(150):
            new = Rect.from_point(rng.random() * 0.05, rng.random() * 0.05)
            tree.update_object(oid, None, new)
            positions[oid] = new
        for _ in range(3):
            tree.cleaner.run_full_cycle()
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()
        # All token positions refer to live leaves.
        live = {leaf.page_id for leaf in tree.iter_leaf_nodes()}
        for token in tree.cleaner.tokens:
            assert token.position in live

    def test_reset_clears_state(self):
        tree = _token_tree(ir=0.5)
        positions = populate(tree, 60, seed=104)
        random_walk(tree, positions, steps=100, seed=105)
        assert tree.cleaner.tokens
        tree.cleaner.reset()
        assert not tree.cleaner.tokens
        assert tree.cleaner.updates_seen == 0
        # Cleaning resumes cleanly after a reset (e.g. post-recovery).
        random_walk(tree, positions, steps=100, seed=106)
        assert_search_matches_oracle(tree, positions)
