"""Behavioural tests for the RUM-tree: memo-based updates, filtering
searches, deletes, clean-upon-touch, and the garbage metrics."""

import random

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    leaf_entry_count,
    populate,
    random_walk,
)
from repro.factory import build_rum_tree, build_storage
from repro.core.rum import RUMTree
from repro.rtree.geometry import Rect


class TestConstruction:
    def test_requires_rum_codec(self):
        with pytest.raises(ValueError):
            RUMTree(build_storage(SMALL_NODE, rum_leaves=False))

    def test_leaf_ring_maintained_by_default(self, rum_tree):
        assert rum_tree.maintain_leaf_ring is True

    def test_recovery_option_validation(self):
        with pytest.raises(ValueError):
            build_rum_tree(node_size=SMALL_NODE, recovery_option="IV")
        with pytest.raises(ValueError):
            RUMTree(
                build_storage(SMALL_NODE, rum_leaves=True),
                recovery_option="II",
                wal=None,
            )

    def test_negative_inspection_ratio_rejected(self):
        with pytest.raises(ValueError):
            build_rum_tree(node_size=SMALL_NODE, inspection_ratio=-0.1)


class TestMemoBasedUpdate:
    def test_update_does_not_need_old_value(self, rum_tree):
        rum_tree.insert_object(1, Rect.from_point(0.1, 0.1))
        # old_rect=None: the memo approach never looks at it.
        rum_tree.update_object(1, None, Rect.from_point(0.9, 0.9))
        assert rum_tree.search(Rect(0.8, 0.8, 1.0, 1.0)) == [
            (1, Rect.from_point(0.9, 0.9))
        ]
        assert rum_tree.search(Rect(0.0, 0.0, 0.2, 0.2)) == []

    def test_update_leaves_obsolete_entry_behind(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.0
        )
        tree.insert_object(1, Rect.from_point(0.1, 0.1))
        tree.update_object(1, None, Rect.from_point(0.9, 0.9))
        # Physically two entries, logically one object.
        assert leaf_entry_count(tree) == 2
        assert tree.garbage_count() == 1
        assert len(tree.search(Rect(0, 0, 1, 1))) == 1

    def test_stamps_strictly_increase_per_object(self, rum_tree):
        rum_tree.insert_object(1, Rect.from_point(0.5, 0.5))
        for i in range(5):
            rum_tree.update_object(1, None, Rect.from_point(0.5, 0.1 * i))
        stamps = [
            e.stamp for e in rum_tree.iter_leaf_entries() if e.oid == 1
        ]
        assert len(stamps) == len(set(stamps))

    def test_update_io_is_insert_io(self):
        """The defining property: an update costs what an insert costs —
        no deletion search, no secondary-index access."""
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=True, inspection_ratio=0.0
        )
        populate(tree, 150, seed=60)
        stats = tree.stats
        rng = random.Random(61)
        costs = []
        for oid in range(50):
            before = stats.snapshot()
            tree.update_object(
                oid, None, Rect.from_point(rng.random(), rng.random())
            )
            delta = stats.snapshot() - before
            assert delta.index_total == 0
            costs.append(delta.leaf_total)
        assert sorted(costs)[len(costs) // 2] == 2  # 1 read + 1 write


class TestDelete:
    def test_delete_never_touches_the_tree(self, rum_tree):
        populate(rum_tree, 50, seed=62)
        before = rum_tree.stats.snapshot()
        rum_tree.delete_object(7)
        delta = rum_tree.stats.snapshot() - before
        assert delta.leaf_total == 0  # Figure 5: memo-only operation

    def test_deleted_object_filtered_from_queries(self, rum_tree):
        positions = populate(rum_tree, 80, seed=63)
        alive = set(positions)
        for oid in (3, 10, 42):
            rum_tree.delete_object(oid)
            alive.discard(oid)
        assert_search_matches_oracle(rum_tree, positions, alive=alive)

    def test_delete_nonexistent_is_harmless_phantom(self, rum_tree):
        """Deleting an object that never existed only creates a phantom
        memo entry; queries stay correct (Section 3.2 discussion)."""
        positions = populate(rum_tree, 40, seed=64)
        rum_tree.delete_object(999)
        assert rum_tree.memo.get(999) is not None
        assert_search_matches_oracle(rum_tree, positions)

    def test_reinsert_after_delete(self, rum_tree):
        rum_tree.insert_object(1, Rect.from_point(0.2, 0.2))
        rum_tree.delete_object(1)
        rum_tree.insert_object(1, Rect.from_point(0.7, 0.7))
        assert rum_tree.search(Rect(0, 0, 1, 1)) == [
            (1, Rect.from_point(0.7, 0.7))
        ]


class TestSearchFiltering:
    def test_filter_removes_all_obsolete_versions(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.0
        )
        # Many versions of one object inside the same query window.
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        for i in range(10):
            tree.update_object(1, None, Rect.from_point(0.5, 0.5))
        hits = tree.search(Rect(0.4, 0.4, 0.6, 0.6))
        assert len(hits) == 1

    def test_correct_under_heavy_churn(self):
        tree = build_rum_tree(node_size=SMALL_NODE, inspection_ratio=0.3)
        positions = populate(tree, 120, seed=65)
        random_walk(tree, positions, steps=900, seed=66, distance=0.2)
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()


class TestCleanUponTouch:
    def test_touch_cleans_same_leaf_versions(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=True, inspection_ratio=0.0
        )
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        for _ in range(20):
            # Tiny moves: the new entry lands in the leaf holding the old
            # one, which clean-upon-touch then sweeps for free.
            tree.update_object(1, None, Rect.from_point(0.5, 0.5))
        assert leaf_entry_count(tree) <= 3

    def test_touch_reduces_garbage_vs_token_only(self):
        results = {}
        for touch in (False, True):
            tree = build_rum_tree(
                node_size=SMALL_NODE,
                clean_upon_touch=touch,
                inspection_ratio=0.1,
            )
            positions = populate(tree, 150, seed=67)
            random_walk(tree, positions, steps=600, seed=68, distance=0.05)
            results[touch] = tree.garbage_count()
        assert results[True] < results[False]

    def test_touch_costs_no_extra_io(self):
        """Clean-upon-touch must not change the I/O of an update that hits
        a garbage-free leaf, and must cost the same 2 I/Os when cleaning."""
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=True, inspection_ratio=0.0
        )
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        before = tree.stats.snapshot()
        tree.update_object(1, None, Rect.from_point(0.5, 0.5))
        delta = tree.stats.snapshot() - before
        assert delta.leaf_total == 2  # read + write, cleaning included


class TestGarbageMetrics:
    def test_garbage_count_exact(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.0
        )
        populate(tree, 50, seed=69)
        assert tree.garbage_count() == 0
        for oid in range(10):
            tree.update_object(oid, None, Rect.from_point(0.9, 0.9))
        # Each update created one obsolete entry; splits may already have
        # swept a few for free (clean-on-split), which the cleaner counts.
        assert tree.garbage_count() + tree.cleaner.entries_removed == 10
        assert tree.garbage_ratio(50) == pytest.approx(
            (10 - tree.cleaner.entries_removed) / 50
        )

    def test_garbage_ratio_zero_objects(self, rum_tree):
        assert rum_tree.garbage_ratio(0) == 0.0

    def test_memo_size_bytes(self, rum_tree):
        populate(rum_tree, 30, seed=70)
        assert rum_tree.memo_size_bytes() == rum_tree.memo.size_bytes()


class TestEntryCountConservation:
    def test_entries_equal_objects_plus_garbage(self):
        """Physical leaf entries = live latest entries + obsolete ones;
        the memo's total N_old upper-bounds the garbage."""
        tree = build_rum_tree(node_size=SMALL_NODE, inspection_ratio=0.2)
        positions = populate(tree, 100, seed=71)
        random_walk(tree, positions, steps=400, seed=72, distance=0.1)
        garbage = tree.garbage_count()
        assert leaf_entry_count(tree) == 100 + garbage
        assert tree.memo.total_n_old() >= garbage
