"""Tests for the hot-path storage optimisations.

Covers the precompiled codec kernels (round-trips at exact capacity and at
count 0 for all three entry layouts), the lazy leaf decode path, the
clean-page byte cache of the buffer pool, the resident-LRU corner cases,
and the ``REPRO_BENCH_SCALE`` parsing warning.
"""

import warnings

import pytest

from repro.experiments import harness
from repro.rtree.geometry import Rect
from repro.rtree.node import IndexEntry, LazyNode, LeafEntry, Node
from repro.storage.buffer import BufferPool
from repro.storage.codec import NodeCodec
from repro.storage.disk import DiskManager
from repro.storage.iostats import IOStats


def _leaf_entries(count, stamped=True):
    return [
        LeafEntry(
            Rect(0.01 * (i % 7), 0.01 * (i % 5), 0.5 + 0.001 * i, 0.9),
            oid=i,
            stamp=3 * i if stamped else 0,
        )
        for i in range(count)
    ]


def _index_entries(count):
    return [
        IndexEntry(Rect(0.0, 0.0, 0.001 * (i + 1), 0.002 * (i + 1)), i + 1)
        for i in range(count)
    ]


class TestCodecKernels:
    """Round-trips through the precompiled pack/unpack kernels."""

    @pytest.mark.parametrize("rum_leaves", [False, True])
    @pytest.mark.parametrize("node_size", [512, 1024, 4096])
    def test_leaf_roundtrip_at_exact_capacity(self, node_size, rum_leaves):
        codec = NodeCodec(node_size, rum_leaves=rum_leaves)
        entries = _leaf_entries(codec.leaf_cap, stamped=rum_leaves)
        node = Node(3, True, entries, prev_leaf=1, next_leaf=8)
        page = codec.encode(node)
        assert len(page) == node_size
        back = codec.decode(3, page)
        assert back.entries == entries
        assert (back.prev_leaf, back.next_leaf) == (1, 8)

    @pytest.mark.parametrize("node_size", [512, 1024, 4096])
    def test_index_roundtrip_at_exact_capacity(self, node_size):
        codec = NodeCodec(node_size)
        entries = _index_entries(codec.index_cap)
        node = Node(4, False, entries)
        back = codec.decode(4, codec.encode(node))
        assert not back.is_leaf
        assert back.entries == entries

    @pytest.mark.parametrize("rum_leaves", [False, True])
    def test_empty_nodes_all_layouts(self, rum_leaves):
        codec = NodeCodec(512, rum_leaves=rum_leaves)
        for is_leaf in (True, False):
            node = Node(9, is_leaf, [], prev_leaf=2, next_leaf=6)
            back = codec.decode(9, codec.encode(node))
            assert back.entries == []
            assert back.is_leaf == is_leaf
            if is_leaf:
                assert (back.prev_leaf, back.next_leaf) == (2, 6)


class TestLazyDecode:
    """decode(lazy=True) must be behaviour-transparent."""

    @pytest.mark.parametrize("rum_leaves", [False, True])
    def test_lazy_equals_eager(self, rum_leaves):
        codec = NodeCodec(1024, rum_leaves=rum_leaves)
        entries = _leaf_entries(codec.leaf_cap, stamped=rum_leaves)
        page = codec.encode(Node(5, True, entries, prev_leaf=3, next_leaf=7))
        eager = codec.decode(5, page, lazy=False)
        lazy = codec.decode(5, page, lazy=True)
        assert isinstance(lazy, LazyNode)
        assert not lazy.materialized
        assert len(lazy) == len(eager) == len(entries)
        assert not lazy.materialized  # len() reads the header count
        assert lazy.entries == eager.entries == entries
        assert lazy.materialized

    def test_lazy_reencodes_byte_identical(self):
        codec = NodeCodec(1024, rum_leaves=True)
        page = codec.encode(Node(5, True, _leaf_entries(10)))
        lazy = codec.decode(5, page, lazy=True)
        assert lazy.cached_bytes == page  # clean page: image reusable
        lazy.cached_bytes = None
        assert codec.encode(lazy) == page
        eager = codec.decode(5, page, lazy=False)
        eager.cached_bytes = None
        assert codec.encode(eager) == page

    def test_internal_pages_decode_eagerly(self):
        codec = NodeCodec(512)
        page = codec.encode(Node(2, False, _index_entries(4)))
        node = codec.decode(2, page, lazy=True)
        assert not isinstance(node, LazyNode)
        assert node.entries == _index_entries(4)

    def test_header_mutation_keeps_entries_thawable(self):
        # Ring-pointer updates dirty only the header; a still-frozen lazy
        # node must thaw the original entries afterwards.
        codec = NodeCodec(1024, rum_leaves=True)
        entries = _leaf_entries(6)
        page = codec.encode(Node(5, True, entries, prev_leaf=3, next_leaf=7))
        lazy = codec.decode(5, page, lazy=True)
        lazy.next_leaf = 42
        lazy.cached_bytes = None  # what mark_dirty does
        assert lazy.entries == entries
        back = codec.decode(5, codec.encode(lazy))
        assert back.next_leaf == 42
        assert back.entries == entries

    def test_entry_replacement_detaches_page_image(self):
        codec = NodeCodec(1024, rum_leaves=True)
        page = codec.encode(Node(5, True, _leaf_entries(6)))
        lazy = codec.decode(5, page, lazy=True)
        lazy.entries = _leaf_entries(2)
        assert lazy.materialized
        assert len(lazy) == 2
        lazy.cached_bytes = None
        assert codec.decode(5, codec.encode(lazy)).entries == _leaf_entries(2)


def _stack(leaf_cache_pages=0):
    stats = IOStats()
    disk = DiskManager(512)
    codec = NodeCodec(512, rum_leaves=True)
    return BufferPool(disk, codec, stats, leaf_cache_pages=leaf_cache_pages), stats


class TestCleanPageByteCache:
    """Never-dirtied pages are written back from their cached image."""

    def test_clean_page_reemits_original_bytes(self, monkeypatch):
        buffer, stats = _stack(leaf_cache_pages=1)
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            node.entries.extend(_leaf_entries(4))
            buffer.mark_dirty(node)
        buffer.flush()
        original = buffer.disk.peek(node.page_id)
        buffer.drop_volatile()
        # Re-read the page; it stays clean, so an eviction-time write
        # must reuse the image without calling the codec.
        with buffer.operation():
            reread = buffer.get_node(node.page_id)
            assert reread.cached_bytes == original
        monkeypatch.setattr(
            buffer.codec,
            "encode",
            lambda *_: pytest.fail("clean page was re-encoded"),
        )
        assert buffer._page_bytes(reread) == original

    def test_mark_dirty_invalidates_cached_bytes(self):
        buffer, stats = _stack()
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            node.entries.extend(_leaf_entries(2))
            buffer.mark_dirty(node)
        with buffer.operation():
            node = buffer.get_node(node.page_id)
            node.entries  # materialise before mutating
            assert node.cached_bytes is not None
            node.entries.append(_leaf_entries(3)[-1])
            buffer.mark_dirty(node)
            assert node.cached_bytes is None
        back = buffer.get_node(node.page_id)
        assert len(back) == 3  # mutated state reached the disk


class TestResidentLRUCorners:
    def test_dirty_bit_carried_lru_to_op_cache(self):
        buffer, stats = _stack(leaf_cache_pages=4)
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            buffer.mark_dirty(node)
        pid = node.page_id
        assert pid in buffer._lru_dirty
        with buffer.operation():
            buffer.get_node(pid)
            # The pending write travels with the page into the op cache...
            assert pid in buffer._dirty_leaves
            assert pid not in buffer._lru_dirty
        # ...and back into the LRU at operation end, still unwritten.
        assert pid in buffer._lru_dirty
        assert stats.leaf_writes == 0
        buffer.flush()
        assert stats.leaf_writes == 1

    def test_eviction_order_after_recency_refresh(self):
        buffer, stats = _stack(leaf_cache_pages=2)
        with buffer.operation():
            a = buffer.new_node(is_leaf=True)
        with buffer.operation():
            b = buffer.new_node(is_leaf=True)
        with buffer.operation():
            buffer.get_node(a.page_id)  # refresh A: B becomes the LRU
        with buffer.operation():
            buffer.new_node(is_leaf=True)  # evicts B, not A
        stats.reset()
        with buffer.operation():
            buffer.get_node(a.page_id)
        assert stats.leaf_reads == 0  # A stayed resident
        with buffer.operation():
            buffer.get_node(b.page_id)
        assert stats.leaf_reads == 1  # B was the eviction victim

    def test_free_dirty_lru_page_never_writes(self):
        buffer, stats = _stack(leaf_cache_pages=4)
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            node.entries.extend(_leaf_entries(2))
            buffer.mark_dirty(node)
        assert node.page_id in buffer._lru_dirty
        buffer.free_node(node)
        assert node.page_id not in buffer._lru
        assert node.page_id not in buffer._lru_dirty
        buffer.flush()
        assert stats.leaf_writes == 0
        assert not buffer.disk.is_allocated(node.page_id)


class TestBenchCompare:
    def _load_script(self):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).parent.parent
            / "scripts"
            / "bench_compare.py"
        )
        spec = importlib.util.spec_from_file_location("bench_compare", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _report(self, **ops):
        return {
            "schema": "bench_micro/v1",
            "scale": 1.0,
            "node_size": 8192,
            "metrics": {
                name: {"ops_per_sec": v, "iterations": 100}
                for name, v in ops.items()
            },
        }

    def test_flags_regressions_beyond_threshold(self, capsys):
        mod = self._load_script()
        base = self._report(a=1000.0, b=1000.0, c=1000.0)
        cur = self._report(a=1050.0, b=850.0, c=995.0)
        report = mod.compare(base, cur, threshold=0.10)
        assert report["regressions"] == 1
        assert report["metrics"]["b"]["status"] == "regressed"
        assert report["metrics"]["b"]["delta_pct"] == pytest.approx(-15.0)
        assert report["metrics"]["a"]["status"] == "ok"
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "b" in out

    def test_new_and_removed_metrics_never_fail(self, capsys):
        mod = self._load_script()
        base = self._report(a=1000.0, gone=500.0)
        cur = self._report(a=1000.0, fresh=700.0)
        report = mod.compare(base, cur, threshold=0.10)
        assert report["regressions"] == 0
        assert report["metrics"]["fresh"]["status"] == "new"
        assert report["metrics"]["gone"]["status"] == "removed"
        out = capsys.readouterr().out
        assert "NEW" in out and "REMOVED" in out

    def test_json_report_and_summary_line(self, tmp_path, capsys):
        mod = self._load_script()
        import json

        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        out_json = tmp_path / "cmp.json"
        base.write_text(json.dumps(self._report(a=1000.0, b=1000.0)))
        cur.write_text(json.dumps(self._report(a=400.0, b=1000.0)))
        rc = mod.main(
            [str(base), str(cur), "--json", str(out_json), "--fail-on-regress"]
        )
        assert rc == 1
        report = json.loads(out_json.read_text())
        assert report["schema"] == "bench_compare/v1"
        assert report["regressions"] == 1
        assert report["metrics"]["a"]["status"] == "regressed"
        out = capsys.readouterr().out
        assert "summary: 1 regression(s)" in out

    def test_delta_pct_percentile_summary(self, capsys):
        mod = self._load_script()
        # Deltas: -20%, -10%, 0%, +10%, +20% over shared metrics; the
        # new/removed entries must be excluded from the distribution.
        base = self._report(
            a=1000.0, b=1000.0, c=1000.0, d=1000.0, e=1000.0, gone=1.0
        )
        cur = self._report(
            a=800.0, b=900.0, c=1000.0, d=1100.0, e=1200.0, fresh=1.0
        )
        report = mod.compare(base, cur, threshold=0.50)
        summary = report["delta_pct_summary"]
        assert summary["count"] == 5
        assert summary["p50"] == pytest.approx(0.0)
        assert summary["p95"] == pytest.approx(18.0)  # interpolated
        assert summary["p99"] == pytest.approx(19.6)
        assert "delta distribution" in capsys.readouterr().out

    def test_percentile_helper_edges(self):
        mod = self._load_script()
        assert mod.percentile([], 0.5) == 0.0
        assert mod.percentile([7.0], 0.99) == 7.0
        assert mod.percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)

    def test_end_to_end_exit_codes(self, tmp_path):
        mod = self._load_script()
        import json

        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(self._report(a=1000.0)))
        cur.write_text(json.dumps(self._report(a=999.0)))
        assert mod.main([str(base), str(cur), "--fail-on-regress"]) == 0
        cur.write_text(json.dumps(self._report(a=500.0)))
        # Report-only by default; --fail-on-regress turns on the gate.
        assert mod.main([str(base), str(cur)]) == 0
        assert mod.main([str(base), str(cur), "--fail-on-regress"]) == 1


class TestBenchScaleParsing:
    def test_valid_scale_no_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert harness.bench_scale() == 0.25

    def test_malformed_scale_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2x-typo")
        monkeypatch.setattr(harness, "_warned_bench_scales", set())
        with pytest.warns(RuntimeWarning, match="2x-typo"):
            assert harness.bench_scale() == 1.0
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call stays silent
            assert harness.bench_scale() == 1.0

    def test_scaled_falls_back_on_malformed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "half")
        monkeypatch.setattr(harness, "_warned_bench_scales", set())
        with pytest.warns(RuntimeWarning):
            assert harness.scaled(1000) == 1000


class TestBenchCompareServeSchema:
    """The serve report (bench_serve/v1) rides the same compare path."""

    def _load_script(self):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).parent.parent
            / "scripts"
            / "bench_compare.py"
        )
        spec = importlib.util.spec_from_file_location("bench_compare", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _serve_report(self, tmp_path, name, **ops):
        import json

        path = tmp_path / name
        path.write_text(
            json.dumps(
                {
                    "schema": "bench_serve/v1",
                    "scale": 1.0,
                    "metrics": {
                        metric: {"ops_per_sec": v, "iterations": 1}
                        for metric, v in ops.items()
                    },
                }
            )
        )
        return path

    def test_serve_schema_accepted_and_gated(self, tmp_path, capsys):
        mod = self._load_script()
        base = self._serve_report(
            tmp_path, "base.json",
            **{"serve.4shards.saturation": 1500.0,
               "serve.4shards.inv_p99": 120.0},
        )
        # p99 latency doubles -> inverse halves -> regression flagged.
        cur = self._serve_report(
            tmp_path, "cur.json",
            **{"serve.4shards.saturation": 1480.0,
               "serve.4shards.inv_p99": 60.0},
        )
        assert mod.main([str(base), str(cur), "--fail-on-regress"]) == 1
        out = capsys.readouterr().out
        assert "inv_p99" in out and "REGRESSED" in out

    def test_mixed_schemas_rejected(self, tmp_path):
        import json

        mod = self._load_script()
        serve = self._serve_report(
            tmp_path, "serve.json", **{"serve.1shards.saturation": 100.0}
        )
        micro = tmp_path / "micro.json"
        micro.write_text(
            json.dumps(
                {
                    "schema": "bench_micro/v1",
                    "scale": 1.0,
                    "metrics": {"a": {"ops_per_sec": 1.0, "iterations": 1}},
                }
            )
        )
        with pytest.raises(SystemExit):
            mod.main([str(micro), str(serve)])
        with pytest.raises(SystemExit):
            mod.main([str(serve), str(serve), str(micro)])

    def test_real_serve_report_shape_compares_clean(self, tmp_path):
        """The actual bench_serve.py output must satisfy the compare
        contract: build a tiny report via its to_metrics and self-diff."""
        import importlib.util
        import json
        import pathlib

        bench_path = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks"
            / "bench_serve.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_serve", bench_path
        )
        bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench)
        shards = {
            "1": {
                "saturation_ops_per_sec": 450.0,
                "open_loop": {"p50_ms": 2.0, "p95_ms": 4.0, "p99_ms": 8.0},
            },
            "4": {
                "saturation_ops_per_sec": 1500.0,
                "open_loop": {"p50_ms": 2.5, "p95_ms": 5.0, "p99_ms": 9.0},
            },
        }
        metrics = bench.to_metrics(shards)
        assert metrics["serve.4shards.saturation"]["ops_per_sec"] == 1500.0
        assert metrics["serve.1shards.inv_p99"]["ops_per_sec"] == (
            pytest.approx(125.0)
        )
        report = {
            "schema": "bench_serve/v1",
            "scale": 1.0,
            "metrics": metrics,
        }
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(report))
        mod = self._load_script()
        assert mod.main([str(path), str(path), "--fail-on-regress"]) == 0
