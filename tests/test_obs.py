"""Tests for the observability core: registry, tracer, sinks, exporters."""

import io
import json
import logging

import pytest

from repro.obs import (
    LEVELS,
    Histogram,
    JsonlEventSink,
    ListEventSink,
    LoggingEventSink,
    MetricsRegistry,
    NULL_TRACER,
    NullEventSink,
    Observability,
    TeeEventSink,
    Tracer,
    get_default_obs,
    metrics_json,
    prometheus_text,
    set_default_obs,
    write_prometheus,
)
from repro.storage.iostats import IOStats


class TestCounterGauge:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("disk.page_reads")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("disk.page_reads") is c  # get-or-create

    def test_gauge_set_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("memo.entries")
        g.set(7.0)
        assert g.read() == 7.0
        backing = [0]
        g.set_function(lambda: backing[0])
        backing[0] = 42
        assert g.read() == 42
        g.set(3.0)  # direct set clears the callback
        backing[0] = 99
        assert g.read() == 3.0

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("io", buckets=(0, 1, 2, 4))
        for v in (0, 1, 1, 3, 100):
            h.observe(v)
        # cells: <=0, <=1, <=2, <=4, overflow
        assert h.counts == [1, 2, 0, 1, 1]
        assert h.count == 5
        assert h.total == 105
        assert h.mean == 21.0

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2, 1))

    def test_reregister_with_other_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1, 2))
        assert reg.histogram("h") is reg.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1, 2, 3))


class TestSnapshots:
    def test_counter_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(10)
        before = reg.snapshot()
        c.inc(7)
        delta = reg.snapshot() - before
        assert delta.counters["c"] == 7

    def test_gauge_delta_keeps_newer_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5)
        before = reg.snapshot()
        g.set(12)
        delta = reg.snapshot() - before
        assert delta.gauges["g"] == 12  # point-in-time, not subtracted

    def test_histogram_delta(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 10))
        h.observe(0)
        before = reg.snapshot()
        h.observe(5)
        h.observe(100)
        delta = (reg.snapshot() - before).histograms["h"]
        assert delta.count == 2
        assert delta.counts == (0, 1, 1)
        assert delta.total == 105

    def test_histogram_delta_bucket_mismatch(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", buckets=(1,))
        r2.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            _ = r1.snapshot().histograms["h"] - r2.snapshot().histograms["h"]

    def test_as_dict_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1,)).observe(2)
        data = json.loads(json.dumps(reg.snapshot().as_dict()))
        assert data["counters"]["c"] == 3
        assert data["gauges"]["g"] == 1.5
        assert data["histograms"]["h"]["counts"] == [0, 1]

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        reg.histogram("c")
        assert reg.names() == ("a", "b", "c")


class TestTracer:
    def test_span_emits_event_with_timing(self):
        sink = ListEventSink()
        tracer = Tracer(sink)
        with tracer.span("update", oid=7):
            pass
        (event,) = sink.events
        assert event["type"] == "span"
        assert event["name"] == "update"
        assert event["oid"] == 7
        assert event["dur_ms"] >= 0.0
        assert event["depth"] == 0
        assert "parent" not in event

    def test_nesting_depth_and_parent(self):
        sink = ListEventSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                assert tracer.depth == 2
        inner_ev, outer_ev = sink.events  # inner closes first
        assert inner_ev["name"] == "inner"
        assert inner_ev["depth"] == 1
        assert inner_ev["parent"] == outer.seq
        assert outer_ev["depth"] == 0

    def test_span_attaches_io_delta(self):
        stats = IOStats()
        sink = ListEventSink()
        tracer = Tracer(sink)
        with tracer.span("op", io=stats) as span:
            stats.record_read(is_leaf=True)
            stats.record_write(is_leaf=True)
        assert span.io_delta.leaf_reads == 1
        assert span.io_delta.leaf_writes == 1
        assert sink.events[0]["io"]["leaf_reads"] == 1

    def test_error_flag_on_exception(self):
        sink = ListEventSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert sink.events[0]["error"] is True
        assert tracer.depth == 0

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("anything", io=IOStats(), oid=1)
        with span as s:
            assert s is span
        assert span.io_delta is None
        assert NULL_TRACER.span("x") is span  # one shared instance
        assert NULL_TRACER.enabled is False


class TestSinks:
    def test_jsonl_sink_to_file_object(self):
        buf = io.StringIO()
        sink = JsonlEventSink(buf)
        sink.emit({"type": "a", "n": 1})
        sink.emit({"type": "b"})
        sink.close()
        lines = buf.getvalue().strip().splitlines()
        assert [json.loads(l)["type"] for l in lines] == ["a", "b"]
        assert sink.emitted == 2

    def test_jsonl_sink_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit({"type": "x"})
        sink.close()
        assert json.loads(path.read_text())["type"] == "x"

    def test_logging_sink(self, caplog):
        sink = LoggingEventSink()
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            sink.emit({"type": "cleaner.cycle", "steps": 3})
        (record,) = caplog.records
        assert "cleaner.cycle" in record.getMessage()
        assert record.obs_event == {"type": "cleaner.cycle", "steps": 3}

    def test_logging_sink_skips_when_disabled(self, caplog):
        sink = LoggingEventSink()
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            sink.emit({"type": "x"})
        assert not caplog.records

    def test_tee_fans_out_and_closes(self):
        a, b = ListEventSink(), ListEventSink()
        tee = TeeEventSink([a, b])
        tee.emit({"type": "x"})
        tee.close()
        assert a.events == b.events == [{"type": "x"}]

    def test_of_type_filter(self):
        sink = ListEventSink()
        sink.emit({"type": "a"})
        sink.emit({"type": "b"})
        sink.emit({"type": "a"})
        assert len(sink.of_type("a")) == 2


class TestPrometheusExport:
    def test_counter_gauge_rendering(self):
        reg = MetricsRegistry()
        reg.counter("disk.page_reads").inc(3)
        reg.gauge("memo.entries").set(2.5)
        text = prometheus_text(reg)
        assert "# TYPE repro_disk_page_reads counter" in text
        assert "repro_disk_page_reads 3" in text
        assert "repro_memo_entries 2.5" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("tree.update_leaf_io", buckets=(1, 2))
        for v in (1, 1, 2, 9):
            h.observe(v)
        text = prometheus_text(reg)
        assert 'repro_tree_update_leaf_io_bucket{le="1"} 2' in text
        assert 'repro_tree_update_leaf_io_bucket{le="2"} 3' in text
        assert 'repro_tree_update_leaf_io_bucket{le="+Inf"} 4' in text
        assert "repro_tree_update_leaf_io_sum 13" in text
        assert "repro_tree_update_leaf_io_count 4" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_prometheus_and_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        out = write_prometheus(reg, tmp_path / "sub" / "m.prom")
        assert out.read_text() == prometheus_text(reg)
        data = json.loads(metrics_json(reg))
        assert data["counters"]["c"] == 1

    def test_snapshot_accepted_directly(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        snap = reg.snapshot()
        assert prometheus_text(snap) == prometheus_text(reg)


class TestObservabilityFacade:
    def test_levels(self):
        off = Observability(level="off")
        assert not off.enabled and not off.metrics_on and not off.tracing
        metrics = Observability(level="metrics")
        assert metrics.enabled and metrics.metrics_on and not metrics.tracing
        trace = Observability(level="trace")
        assert trace.tracing and not trace.debug
        debug = Observability(level="debug")
        assert debug.debug and debug.tracing
        assert tuple(LEVELS) == ("off", "metrics", "trace", "debug")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            Observability(level="verbose")

    def test_disabled_classmethod(self):
        obs = Observability.disabled()
        assert obs.level == "off"
        assert obs.tracer is NULL_TRACER

    def test_span_below_trace_level_is_null(self):
        obs = Observability(level="metrics", sink=ListEventSink())
        with obs.span("x") as span:
            pass
        assert span.io_delta is None
        assert obs.sink.events == []

    def test_event_only_when_tracing(self):
        sink = ListEventSink()
        Observability(level="metrics", sink=sink).event("x", a=1)
        assert sink.events == []
        Observability(level="trace", sink=sink).event("x", a=1)
        (event,) = sink.events
        assert event["type"] == "x" and event["a"] == 1 and "ts" in event

    def test_default_sink_is_null(self):
        assert isinstance(Observability().sink, NullEventSink)

    def test_process_default(self):
        assert get_default_obs() is None
        obs = Observability(level="metrics")
        set_default_obs(obs)
        try:
            assert get_default_obs() is obs
        finally:
            set_default_obs(None)
        assert get_default_obs() is None
