"""Tests for the PR-quadtree extension (classic and memo-based)."""

import random

import pytest

from repro.extensions.quadtree import MAX_DEPTH, MemoQuadtree, PRQuadtree


def _drive(tree, n=200, updates=400, seed=210):
    rng = random.Random(seed)
    pos = {}
    for oid in range(n):
        pos[oid] = (rng.random(), rng.random())
        tree.insert_object(oid, *pos[oid])
    for _ in range(updates):
        oid = rng.randrange(n)
        new = (rng.random(), rng.random())
        tree.update_object(oid, pos[oid], new)
        pos[oid] = new
    return pos


def _oracle(pos, x0, y0, x1, y1):
    return sorted(
        oid
        for oid, (x, y) in pos.items()
        if x0 <= x <= x1 and y0 <= y <= y1
    )


class TestPRQuadtree:
    def test_range_search_matches_oracle(self):
        tree = PRQuadtree(page_size=512)
        pos = _drive(tree)
        rng = random.Random(211)
        for _ in range(40):
            x0, y0 = rng.random() * 0.7, rng.random() * 0.7
            got = sorted(
                oid
                for oid, _x, _y in tree.range_search(
                    x0, y0, x0 + 0.3, y0 + 0.3
                )
            )
            assert got == _oracle(pos, x0, y0, x0 + 0.3, y0 + 0.3)

    def test_exactly_one_entry_per_object(self):
        tree = PRQuadtree(page_size=512)
        _drive(tree)
        assert tree.num_entries() == 200

    def test_subdivision_happens(self):
        tree = PRQuadtree(page_size=256)
        _drive(tree, n=300, updates=0)
        assert tree.depth() >= 2
        assert tree.num_leaves() > 4
        # Buckets respect the capacity (except at the depth cap).
        for leaf in tree.iter_leaves():
            if leaf.depth < MAX_DEPTH:
                assert len(leaf.entries) <= tree.bucket_cap

    def test_duplicate_points_capped_by_max_depth(self):
        tree = PRQuadtree(page_size=256)
        for oid in range(100):
            tree.insert_object(oid, 0.3, 0.3)
        assert tree.depth() <= MAX_DEPTH
        hits = tree.range_search(0.3, 0.3, 0.3, 0.3)
        assert len(hits) == 100

    def test_update_missing_raises(self):
        tree = PRQuadtree()
        with pytest.raises(KeyError):
            tree.update_object(1, (0.5, 0.5), (0.6, 0.6))

    def test_delete(self):
        tree = PRQuadtree()
        tree.insert_object(1, 0.4, 0.4)
        tree.delete_object(1, (0.4, 0.4))
        assert tree.range_search(0, 0, 1, 1) == []


class TestMemoQuadtree:
    def test_range_search_filters_obsolete(self):
        tree = MemoQuadtree(page_size=512, inspection_ratio=0.3)
        pos = _drive(tree, seed=212)
        rng = random.Random(213)
        for _ in range(40):
            x0, y0 = rng.random() * 0.7, rng.random() * 0.7
            got = sorted(
                oid
                for oid, _x, _y in tree.range_search(
                    x0, y0, x0 + 0.3, y0 + 0.3
                )
            )
            assert got == _oracle(pos, x0, y0, x0 + 0.3, y0 + 0.3)

    def test_full_sweep_drains_garbage(self):
        tree = MemoQuadtree(
            page_size=512, inspection_ratio=0.0, clean_upon_touch=False
        )
        _drive(tree, n=120, updates=240, seed=214)
        assert tree.garbage_count() > 0
        tree.run_full_sweep()
        assert tree.garbage_count() == 0
        assert tree.num_entries() == 120

    def test_update_does_not_need_old_position(self):
        tree = MemoQuadtree()
        tree.insert_object(1, 0.2, 0.2)
        tree.update_object(1, None, (0.8, 0.8))
        assert tree.range_search(0, 0, 0.5, 0.5) == []
        assert tree.range_search(0.7, 0.7, 0.9, 0.9) == [(1, 0.8, 0.8)]

    def test_delete_is_memo_only(self):
        tree = MemoQuadtree(inspection_ratio=0.0, clean_upon_touch=False)
        tree.insert_object(1, 0.5, 0.5)
        before = tree.stats.leaf_reads + tree.stats.leaf_writes
        tree.delete_object(1)
        assert tree.stats.leaf_reads + tree.stats.leaf_writes == before
        assert tree.range_search(0, 0, 1, 1) == []

    def test_memo_update_cheaper_than_classic(self):
        classic = PRQuadtree(page_size=512)
        memo = MemoQuadtree(page_size=512, inspection_ratio=0.2)
        _drive(classic, seed=215)
        _drive(memo, seed=215)
        classic_io = classic.stats.leaf_reads + classic.stats.leaf_writes
        memo_io = memo.stats.leaf_reads + memo.stats.leaf_writes
        assert memo_io < classic_io

    def test_sweep_survives_splits_between_rounds(self):
        tree = MemoQuadtree(
            page_size=256, inspection_ratio=0.5, clean_upon_touch=False
        )
        pos = _drive(tree, n=150, updates=600, seed=216)
        rng = random.Random(217)
        for _ in range(30):
            x0, y0 = rng.random() * 0.6, rng.random() * 0.6
            got = sorted(
                oid
                for oid, _x, _y in tree.range_search(
                    x0, y0, x0 + 0.35, y0 + 0.35
                )
            )
            assert got == _oracle(pos, x0, y0, x0 + 0.35, y0 + 0.35)
