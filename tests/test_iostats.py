"""Tests for IOStats/IOSnapshot arithmetic, totals, and serialisation."""

from dataclasses import fields

from hypothesis import given
from hypothesis import strategies as st

from repro.storage.iostats import IOSnapshot, IOStats

FIELD_NAMES = tuple(f.name for f in fields(IOSnapshot))

snapshots = st.builds(
    IOSnapshot,
    **{
        name: st.integers(min_value=0, max_value=10_000)
        for name in FIELD_NAMES
    },
)


class TestArithmetic:
    @given(snapshots, snapshots)
    def test_add_sub_round_trip(self, a, b):
        assert (a + b) - b == a
        assert (a + b) - a == b

    @given(snapshots)
    def test_zero_identity(self, a):
        zero = IOSnapshot()
        assert a + zero == a
        assert a - zero == a
        assert a - a == zero

    @given(snapshots, snapshots)
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    def test_fieldwise_subtraction(self):
        after = IOSnapshot(leaf_reads=5, leaf_writes=3, log_writes=2)
        before = IOSnapshot(leaf_reads=2, leaf_writes=1)
        delta = after - before
        assert delta.leaf_reads == 3
        assert delta.leaf_writes == 2
        assert delta.log_writes == 2
        assert delta.internal_reads == 0


class TestTotals:
    @given(snapshots)
    def test_totals_invariants(self, snap):
        assert snap.leaf_total == snap.leaf_reads + snap.leaf_writes
        assert snap.index_total == snap.index_reads + snap.index_writes
        assert snap.log_total == snap.log_reads + snap.log_writes
        assert snap.memo_total == snap.memo_reads + snap.memo_writes
        assert snap.counted_total == (
            snap.leaf_total + snap.index_total + snap.log_total
            + snap.memo_total
        )
        assert snap.grand_total == (
            snap.counted_total + snap.internal_reads + snap.internal_writes
        )
        assert snap.grand_total == sum(snap.as_dict().values())

    @given(snapshots)
    def test_as_dict_covers_every_field(self, snap):
        data = snap.as_dict()
        assert set(data) == set(FIELD_NAMES)
        assert IOSnapshot(**data) == snap


class TestIOStats:
    def test_recording_and_snapshot(self):
        stats = IOStats()
        stats.record_read(is_leaf=True)
        stats.record_read(is_leaf=False)
        stats.record_write(is_leaf=True)
        snap = stats.snapshot()
        assert snap.leaf_reads == 1
        assert snap.internal_reads == 1
        assert snap.leaf_writes == 1
        assert snap.leaf_total == 2

    def test_reset(self):
        stats = IOStats()
        stats.record_read(is_leaf=True)
        stats.reset()
        assert stats.snapshot() == IOSnapshot()

    def test_repr_is_flat(self):
        """The repr lists counters directly — no nested IOSnapshot(...)."""
        stats = IOStats()
        stats.record_read(is_leaf=True)
        text = repr(stats)
        assert text.startswith("IOStats(leaf_reads=1, ")
        assert "IOSnapshot" not in text
        assert all(name in text for name in FIELD_NAMES)

class TestMemoFieldsWiring:
    def test_recorder_io_fields_cover_memo(self):
        """The flight recorder's per-op I/O tuple must carry the memo
        tier: IO_FIELDS and IOSnapshot agree field-for-field."""
        from repro.obs.recorder import IO_FIELDS

        assert "memo_reads" in IO_FIELDS and "memo_writes" in IO_FIELDS
        assert len(IO_FIELDS) == 10
        # Positional construction from an IO_FIELDS-ordered tuple must
        # land every value on the right field.
        snap = IOSnapshot(*range(len(IO_FIELDS)))
        for i, name in enumerate(IO_FIELDS):
            assert getattr(snap, name) == i

    def test_stats_reset_clears_memo_counters(self):
        stats = IOStats()
        stats.memo_reads += 3
        stats.memo_writes += 2
        assert stats.snapshot().memo_total == 5
        stats.reset()
        assert stats.snapshot() == IOSnapshot()
