"""End-to-end tests for the instrumented storage/RUM stack.

Covers the ISSUE's acceptance invariant: with tracing enabled, the sum of
per-update leaf I/O attached to the spans equals the ``IOStats`` delta
over the same interval — the trace never under- or over-counts.
"""

import json

import pytest

from repro.core.memo import UpdateMemo
from repro.experiments.__main__ import main as cli_main
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.obs import ListEventSink, Observability
from repro.rtree.geometry import Rect
from repro.workload.objects import default_network_workload


def _traced_obs():
    sink = ListEventSink()
    return Observability(level="trace", sink=sink), sink


def _run_workload(tree, n_objects=120, n_updates=200):
    workload = default_network_workload(
        n_objects, moving_distance=0.02, seed=5
    )
    for oid, rect in workload.initial():
        tree.insert_object(oid, rect)
    for oid, old_rect, new_rect in workload.updates(n_updates):
        tree.update_object(oid, old_rect, new_rect)


class TestSpanIOExactness:
    @pytest.mark.parametrize(
        "build",
        [build_rstar_tree, build_fur_tree, build_rum_tree],
        ids=["rstar", "fur", "rum"],
    )
    def test_update_span_io_sums_to_stats_delta(self, build):
        obs, sink = _traced_obs()
        tree = build(node_size=2048, obs=obs)
        workload = default_network_workload(
            100, moving_distance=0.02, seed=5
        )
        for oid, rect in workload.initial():
            tree.insert_object(oid, rect)
        before = tree.stats.snapshot()
        sink.events.clear()
        for oid, old_rect, new_rect in workload.updates(150):
            tree.update_object(oid, old_rect, new_rect)
        delta = tree.stats.snapshot() - before
        spans = [e for e in sink.of_type("span") if e["name"] == "update"]
        assert len(spans) == 150
        assert sum(s["io"]["leaf_reads"] for s in spans) == delta.leaf_reads
        assert sum(s["io"]["leaf_writes"] for s in spans) == delta.leaf_writes
        span_total = sum(
            sum(s["io"].values()) for s in spans
        )
        assert span_total == delta.grand_total

    def test_query_spans_account_their_io(self):
        obs, sink = _traced_obs()
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree)
        before = tree.stats.snapshot()
        sink.events.clear()
        for _ in range(20):
            tree.search(Rect(0.2, 0.2, 0.8, 0.8))
        delta = tree.stats.snapshot() - before
        spans = [e for e in sink.of_type("span") if e["name"] == "query"]
        assert len(spans) == 20
        assert (
            sum(s["io"]["leaf_reads"] for s in spans) == delta.leaf_reads
        )


class TestMetricsWiring:
    def test_tree_counters_count_operations(self):
        obs, _sink = _traced_obs()
        tree = build_rum_tree(node_size=2048, obs=obs)
        before = obs.registry.snapshot()
        _run_workload(tree, n_updates=50)
        tree.search(Rect(0.0, 0.0, 1.0, 1.0))
        tree.nearest_neighbors(0.5, 0.5, 3)
        delta = obs.registry.snapshot() - before
        # Memo-based inserts and updates are the same operation, so the
        # 120 loading inserts count alongside the 50 updates.
        assert delta.counters["tree.updates"] == 170
        assert delta.counters["tree.queries"] == 1
        assert delta.counters["tree.knn_queries"] == 1
        hist = delta.histograms["tree.update_leaf_io"]
        assert hist.count == 170

    def test_buffer_misses_match_disk_reads(self):
        obs, _sink = _traced_obs()
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree)
        snap = obs.registry.snapshot()
        # Per-page tallies are plain ints mirrored into lazy gauges
        # (zero hot-path instrumentation cost); rarer storage events
        # stay counters.
        assert snap.gauges["buffer.misses"] == snap.gauges[
            "disk.page_reads"
        ]
        assert snap.gauges["buffer.hits"] > 0
        assert snap.gauges["disk.page_writes"] > 0
        assert snap.gauges["disk.pages"] > 0

    def test_wal_append_counter(self):
        obs, _sink = _traced_obs()
        tree = build_rum_tree(
            node_size=2048, recovery_option="III", obs=obs
        )
        _run_workload(tree, n_updates=40)
        snap = obs.registry.snapshot()
        assert snap.counters["wal.appends"] > 0
        assert snap.gauges["wal.records"] > 0

    def test_cleaner_metrics_and_events(self):
        obs, sink = _traced_obs()
        tree = build_rum_tree(
            node_size=2048, inspection_ratio=0.5, obs=obs
        )
        _run_workload(tree, n_updates=300)
        snap = obs.registry.snapshot()
        assert snap.counters["cleaner.token_steps"] > 0
        assert snap.counters["cleaner.cycles"] > 0
        assert snap.histograms["cleaner.cycle_ms"].count == (
            snap.counters["cleaner.cycles"]
        )
        cycles = sink.of_type("cleaner.cycle")
        assert len(cycles) == snap.counters["cleaner.cycles"]
        assert all("dur_ms" in c and "steps" in c for c in cycles)

    def test_fur_case_mix_gauges(self):
        obs, _sink = _traced_obs()
        tree = build_fur_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_updates=100)
        snap = obs.registry.snapshot()
        mix = (
            snap.gauges["fur.updates_in_place"]
            + snap.gauges["fur.updates_to_sibling"]
            + snap.gauges["fur.updates_top_down"]
        )
        assert mix == 100
        assert snap.gauges["fur.index_bytes"] > 0

    def test_memo_purge_counters(self):
        obs, _sink = _traced_obs()
        memo = UpdateMemo()
        memo.attach_obs(obs)
        for oid in range(10):
            memo.record_update(oid, oid + 1)
        purged = memo.purge_phantoms(6)
        snap = obs.registry.snapshot()
        assert purged == 5
        assert snap.counters["memo.purge_runs"] == 1
        assert snap.counters["memo.purged_entries"] == 5
        assert snap.gauges["memo.entries"] == 5
        assert snap.gauges["memo.total_n_old"] == 5


class TestMemoOpTallies:
    def test_memo_gauges_track_per_update_probe_mix(self):
        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_updates=200)
        tree.search(Rect(0.0, 0.0, 1.0, 1.0))
        snap = obs.registry.snapshot()
        memo = tree.memo
        # The probe tallies ride plain ints mirrored into gauges; they
        # must agree with the live object and partition lookups >= hits.
        assert snap.gauges["memo.lookups"] == memo.lookup_count
        assert snap.gauges["memo.hits"] == memo.hit_count
        assert memo.lookup_count > 0
        assert 0 <= memo.hit_count <= memo.lookup_count
        assert snap.counters["memo.inserts"] > 0

    def test_memo_mutation_counters_none_when_disabled(self):
        memo = UpdateMemo()
        assert memo._obs_inserts is None
        memo.attach_obs(None)
        assert memo._obs_inserts is None
        memo.record_update(1, 1)
        assert memo.is_obsolete(1, 1) is False
        # Probe tallies are unconditional (both paths pay one int add).
        assert memo.lookup_count == 1
        assert memo.hit_count == 1

    def test_detach_stops_mutation_counters_keeps_tallies(self):
        obs = Observability(level="metrics")
        memo = UpdateMemo()
        memo.attach_obs(obs)
        memo.record_update(1, 1)
        memo.attach_obs(None)
        assert memo._obs_inserts is None
        memo.record_update(2, 2)  # must not raise
        memo.is_obsolete(2, 1)
        assert memo.lookup_count == 1


class TestOpSampling:
    """The adaptive stride keeps full capture off most hot ops while the
    counters/histograms stay exact — pinned here for updates and at the
    query sample boundaries."""

    def test_update_counter_and_histogram_exact_under_sampling(self):
        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_objects=120, n_updates=700)
        snap = obs.registry.snapshot()
        assert snap.counters["tree.updates"] == 820
        assert snap.histograms["tree.update_leaf_io"].count == 820
        # Fast in-memory updates widen the stride toward the cap.
        assert tree._obs_ustride > 1

    def test_trace_level_never_widens_update_stride(self):
        obs = Observability(level="trace")
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_updates=300)
        assert tree._obs_ustride == 1
        assert tree._obs_utick == 0

    def test_query_counter_exact_at_detach(self):
        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_updates=50)
        for _ in range(37):
            tree.search(Rect(0.4, 0.4, 0.6, 0.6))
        tree.attach_obs(None)  # settles the unsampled remainder
        snap = obs.registry.snapshot()
        assert snap.counters["tree.queries"] == 37

    def test_reattach_resets_strides(self):
        obs = Observability(level="metrics")
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_updates=700)
        assert tree._obs_ustride > 1
        tree.attach_obs(Observability(level="metrics"))
        assert tree._obs_ustride == 1
        assert tree._obs_utick == 0
        assert tree._obs_qstride == 1


class TestAttachDetach:
    def test_level_off_runs_uninstrumented_path(self):
        tree = build_rum_tree(
            node_size=2048, obs=Observability.disabled()
        )
        assert tree.obs is None
        assert tree._obs_c_updates is None
        assert tree.buffer._obs_evictions is None
        _run_workload(tree, n_updates=20)  # must not raise

    def test_reattach_none_detaches(self):
        obs, _sink = _traced_obs()
        tree = build_rum_tree(node_size=2048, obs=obs)
        assert tree.obs is obs
        tree.attach_obs(None)
        assert tree.obs is None
        assert tree.buffer._obs_evictions is None
        _run_workload(tree, n_updates=20)

    def test_metrics_level_skips_spans(self):
        sink = ListEventSink()
        obs = Observability(level="metrics", sink=sink)
        tree = build_rum_tree(node_size=2048, obs=obs)
        _run_workload(tree, n_updates=30)
        assert sink.events == []
        # 120 loading inserts + 30 updates, all memo-based operations.
        assert obs.registry.snapshot().counters["tree.updates"] == 150


class TestCliSidecar:
    def test_obs_out_writes_sidecar(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        out = tmp_path / "obs"
        rc = cli_main(["fig15", "--obs-out", str(out)])
        assert rc == 0
        events = [
            json.loads(line)
            for line in (out / "events.jsonl").read_text().splitlines()
        ]
        assert any(e["type"] == "experiment.start" for e in events)
        assert any(e["type"] == "span" for e in events)
        prom = (out / "metrics.prom").read_text()
        assert "repro_tree_updates" in prom
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["counters"]["tree.updates"] > 0
        assert "telemetry sidecar" in capsys.readouterr().out

    def test_default_obs_cleared_after_run(self, tmp_path, monkeypatch):
        from repro.obs import get_default_obs

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        cli_main(["fig15", "--obs-out", str(tmp_path / "obs")])
        assert get_default_obs() is None
