"""Tests for the memo-based B+-tree and grid-file extensions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.btree import BPlusTree, BTreeCodec, BTreeNode, MemoBTree
from repro.extensions.grid import GridFile, MemoGrid

keys_st = st.floats(
    min_value=0.0, max_value=0.999, allow_nan=False, allow_infinity=False
)


class TestBTreeCodec:
    def test_roundtrip_leaf(self):
        codec = BTreeCodec(512, memo_leaves=True)
        node = BTreeNode(3, True)
        node.keys = [0.1, 0.5, 0.9]
        node.oids = [10, 20, 30]
        node.stamps = [1, 2, 3]
        node.prev_leaf, node.next_leaf = 7, 9
        back = codec.decode(3, codec.encode(node))
        assert back.keys == node.keys
        assert back.oids == node.oids
        assert back.stamps == node.stamps
        assert (back.prev_leaf, back.next_leaf) == (7, 9)

    def test_roundtrip_internal(self):
        codec = BTreeCodec(512, memo_leaves=False)
        node = BTreeNode(4, False)
        node.keys = [0.25, 0.75]
        node.children = [11, 12, 13]
        back = codec.decode(4, codec.encode(node))
        assert back.keys == node.keys
        assert back.children == node.children

    def test_classic_layout_drops_stamps(self):
        codec = BTreeCodec(512, memo_leaves=False)
        node = BTreeNode(1, True)
        node.keys, node.oids, node.stamps = [0.5], [7], [99]
        back = codec.decode(1, codec.encode(node))
        assert back.stamps == [0]

    def test_too_small_page(self):
        with pytest.raises(ValueError):
            BTreeCodec(64, memo_leaves=True)


def _drive_btree(tree, n=200, updates=400, seed=160):
    rng = random.Random(seed)
    keys = {}
    for oid in range(n):
        keys[oid] = rng.random()
        tree.insert_object(oid, keys[oid])
    for _ in range(updates):
        oid = rng.randrange(n)
        new = rng.random()
        tree.update_object(oid, keys[oid], new)
        keys[oid] = new
    return keys


class TestBPlusTree:
    def test_range_search_matches_oracle(self):
        tree = BPlusTree(node_size=512)
        keys = _drive_btree(tree)
        rng = random.Random(161)
        for _ in range(30):
            low = rng.random() * 0.8
            high = low + rng.random() * 0.2
            got = sorted(tree.range_search(low, high))
            want = sorted(
                (oid, k) for oid, k in keys.items() if low <= k <= high
            )
            assert got == want

    def test_duplicate_keys(self):
        tree = BPlusTree(node_size=512)
        for oid in range(100):
            tree.insert_object(oid, 0.5)
        assert len(tree.range_search(0.5, 0.5)) == 100

    def test_update_missing_raises(self):
        tree = BPlusTree(node_size=512)
        with pytest.raises(KeyError):
            tree.update_object(1, 0.5, 0.6)

    def test_delete(self):
        tree = BPlusTree(node_size=512)
        tree.insert_object(1, 0.4)
        tree.delete_object(1, 0.4)
        assert tree.range_search(0.0, 1.0) == []
        with pytest.raises(KeyError):
            tree.delete_object(1, 0.4)

    def test_exactly_one_entry_per_object(self):
        tree = BPlusTree(node_size=512)
        _drive_btree(tree)
        assert tree.num_entries() == 200

    def test_tree_grows(self):
        tree = BPlusTree(node_size=512)
        _drive_btree(tree, n=500, updates=0)
        assert tree.height >= 2
        assert tree.num_leaves() > 4


class TestMemoBTree:
    def test_range_search_filters_obsolete(self):
        tree = MemoBTree(node_size=512, inspection_ratio=0.3)
        keys = _drive_btree(tree)
        rng = random.Random(162)
        for _ in range(30):
            low = rng.random() * 0.8
            high = low + rng.random() * 0.2
            got = sorted(tree.range_search(low, high))
            want = sorted(
                (oid, k) for oid, k in keys.items() if low <= k <= high
            )
            assert got == want

    def test_update_does_not_need_old_key(self):
        tree = MemoBTree(node_size=512)
        tree.insert_object(1, 0.3)
        tree.update_object(1, None, 0.8)
        assert tree.range_search(0.0, 0.5) == []
        assert tree.range_search(0.7, 0.9) == [(1, 0.8)]

    def test_delete_is_memo_only(self):
        tree = MemoBTree(node_size=512, inspection_ratio=0.0,
                         clean_upon_touch=False)
        tree.insert_object(1, 0.5)
        before = tree.stats.leaf_reads + tree.stats.leaf_writes
        tree.delete_object(1)
        assert tree.stats.leaf_reads + tree.stats.leaf_writes == before
        assert tree.range_search(0.0, 1.0) == []

    def test_full_cycle_drains_garbage(self):
        tree = MemoBTree(node_size=512, inspection_ratio=0.0,
                         clean_upon_touch=False)
        keys = _drive_btree(tree, n=100, updates=150)
        assert tree.garbage_count() > 0
        tree.run_full_cycle()
        assert tree.garbage_count() == 0
        assert tree.num_entries() == 100
        got = sorted(tree.range_search(0.0, 1.0))
        assert got == sorted(keys.items())

    def test_memo_update_cheaper_than_classic(self):
        classic = BPlusTree(node_size=512)
        memo = MemoBTree(node_size=512, inspection_ratio=0.2)
        _drive_btree(classic, seed=163)
        _drive_btree(memo, seed=163)
        classic_io = classic.stats.leaf_reads + classic.stats.leaf_writes
        memo_io = memo.stats.leaf_reads + memo.stats.leaf_writes
        assert memo_io < classic_io

    @given(st.lists(st.tuples(st.integers(0, 15), keys_st), max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_shadow(self, ops):
        tree = MemoBTree(node_size=512, inspection_ratio=0.25)
        shadow = {}
        for oid, key in ops:
            if oid in shadow:
                tree.update_object(oid, None, key)
            else:
                tree.insert_object(oid, key)
            shadow[oid] = key
        got = sorted(tree.range_search(0.0, 1.0))
        assert got == sorted(shadow.items())


def _drive_grid(grid, n=150, updates=300, seed=164):
    rng = random.Random(seed)
    pos = {}
    for oid in range(n):
        pos[oid] = (rng.random(), rng.random())
        grid.insert_object(oid, *pos[oid])
    for _ in range(updates):
        oid = rng.randrange(n)
        new = (rng.random(), rng.random())
        grid.update_object(oid, pos[oid], new)
        pos[oid] = new
    return pos


class TestGridFile:
    def test_range_search_matches_oracle(self):
        grid = GridFile(side=8, page_size=512)
        pos = _drive_grid(grid)
        rng = random.Random(165)
        for _ in range(30):
            x0, y0 = rng.random() * 0.7, rng.random() * 0.7
            got = sorted(
                oid for oid, _x, _y in grid.range_search(
                    x0, y0, x0 + 0.3, y0 + 0.3
                )
            )
            want = sorted(
                oid
                for oid, (x, y) in pos.items()
                if x0 <= x <= x0 + 0.3 and y0 <= y <= y0 + 0.3
            )
            assert got == want

    def test_update_missing_raises(self):
        grid = GridFile(side=4)
        with pytest.raises(KeyError):
            grid.update_object(1, (0.5, 0.5), (0.6, 0.6))

    def test_delete(self):
        grid = GridFile(side=4)
        grid.insert_object(1, 0.5, 0.5)
        grid.delete_object(1, (0.5, 0.5))
        assert grid.range_search(0, 0, 1, 1) == []

    def test_page_overflow_chains(self):
        grid = GridFile(side=1, page_size=128)  # tiny single-cell grid
        for oid in range(50):
            grid.insert_object(oid, 0.5, 0.5)
        assert grid.num_pages() > 1
        assert grid.num_entries() == 50

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            GridFile(side=0)


class TestMemoGrid:
    def test_range_search_filters_obsolete(self):
        grid = MemoGrid(side=8, page_size=512, inspection_ratio=0.3)
        pos = _drive_grid(grid)
        rng = random.Random(166)
        for _ in range(30):
            x0, y0 = rng.random() * 0.7, rng.random() * 0.7
            got = sorted(
                oid for oid, _x, _y in grid.range_search(
                    x0, y0, x0 + 0.3, y0 + 0.3
                )
            )
            want = sorted(
                oid
                for oid, (x, y) in pos.items()
                if x0 <= x <= x0 + 0.3 and y0 <= y <= y0 + 0.3
            )
            assert got == want

    def test_full_sweep_drains_garbage(self):
        grid = MemoGrid(side=6, inspection_ratio=0.0, clean_upon_touch=False)
        _drive_grid(grid, n=100, updates=200)
        assert grid.garbage_count() > 0
        grid.run_full_sweep()
        assert grid.garbage_count() == 0
        assert grid.num_entries() == 100

    def test_delete_is_memo_only(self):
        grid = MemoGrid(side=4, inspection_ratio=0.0, clean_upon_touch=False)
        grid.insert_object(1, 0.5, 0.5)
        before = grid.stats.leaf_reads + grid.stats.leaf_writes
        grid.delete_object(1)
        assert grid.stats.leaf_reads + grid.stats.leaf_writes == before
        assert grid.range_search(0, 0, 1, 1) == []

    def test_memo_update_cheaper_than_classic(self):
        classic = GridFile(side=8, page_size=512)
        memo = MemoGrid(side=8, page_size=512, inspection_ratio=0.2)
        _drive_grid(classic, seed=167)
        _drive_grid(memo, seed=167)
        classic_io = classic.stats.leaf_reads + classic.stats.leaf_writes
        memo_io = memo.stats.leaf_reads + memo.stats.leaf_writes
        assert memo_io < classic_io

    def test_clean_upon_touch_bounds_garbage(self):
        touch = MemoGrid(side=6, inspection_ratio=0.0, clean_upon_touch=True)
        plain = MemoGrid(side=6, inspection_ratio=0.0, clean_upon_touch=False)
        _drive_grid(touch, seed=168)
        _drive_grid(plain, seed=168)
        assert touch.garbage_count() < plain.garbage_count()
