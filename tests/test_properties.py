"""Property-based end-to-end tests.

The central invariant of the whole system (DESIGN.md invariant 1): after
*any* interleaving of inserts, updates, deletes, token cleaning, crashes and
recoveries, a range query over any tree returns exactly the live objects
whose current MBR intersects the window — verified against a brute-force
shadow dictionary.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.recovery import recover_option_iii
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.rtree.geometry import Rect

coords = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _window(x: float, y: float, side: float) -> Rect:
    return Rect(
        max(0.0, x - side), max(0.0, y - side),
        min(1.0, x + side), min(1.0, y + side),
    )


class _IndexMachine(RuleBasedStateMachine):
    """Drives one index implementation against a shadow oracle."""

    def _build(self):  # overridden per concrete machine
        raise NotImplementedError

    @initialize()
    def setup(self):
        self.tree = self._build()
        self.shadow = {}
        self.next_oid = 0

    @rule(x=coords, y=coords)
    def insert(self, x, y):
        rect = Rect.from_point(x, y)
        self.tree.insert_object(self.next_oid, rect)
        self.shadow[self.next_oid] = rect
        self.next_oid += 1

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False), x=coords, y=coords)
    def update(self, pick, x, y):
        oid = pick.choice(sorted(self.shadow))
        new = Rect.from_point(x, y)
        self.tree.update_object(oid, self.shadow[oid], new)
        self.shadow[oid] = new

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        oid = pick.choice(sorted(self.shadow))
        self.tree.delete_object(oid, self.shadow.pop(oid))

    @rule(x=coords, y=coords, side=st.floats(min_value=0.01, max_value=0.5))
    def query_matches_oracle(self, x, y, side):
        window = _window(x, y, side)
        got = sorted(oid for oid, _rect in self.tree.search(window))
        want = sorted(
            oid
            for oid, rect in self.shadow.items()
            if rect.intersects(window)
        )
        assert got == want

    @invariant()
    def structure_is_sound(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()


class RStarMachine(_IndexMachine):
    def _build(self):
        return build_rstar_tree(node_size=512)


class FURMachine(_IndexMachine):
    def _build(self):
        return build_fur_tree(node_size=512)


class RUMTouchMachine(_IndexMachine):
    def _build(self):
        return build_rum_tree(node_size=512, inspection_ratio=0.3)


class RUMTokenMachine(_IndexMachine):
    def _build(self):
        return build_rum_tree(
            node_size=512, clean_upon_touch=False, inspection_ratio=0.5
        )


class RUMCrashMachine(_IndexMachine):
    """RUM-tree with Option III logging plus crash/recover as a rule."""

    def _build(self):
        return build_rum_tree(
            node_size=512,
            inspection_ratio=0.3,
            recovery_option="III",
            checkpoint_interval=25,
        )

    @rule()
    def crash_and_recover(self):
        self.tree.crash()
        recover_option_iii(self.tree)

    @rule()
    def force_clean_cycle(self):
        self.tree.cleaner.run_full_cycle()


_machine_settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)

TestRStarMachine = RStarMachine.TestCase
TestRStarMachine.settings = _machine_settings
TestFURMachine = FURMachine.TestCase
TestFURMachine.settings = _machine_settings
TestRUMTouchMachine = RUMTouchMachine.TestCase
TestRUMTouchMachine.settings = _machine_settings
TestRUMTokenMachine = RUMTokenMachine.TestCase
TestRUMTokenMachine.settings = _machine_settings
TestRUMCrashMachine = RUMCrashMachine.TestCase
TestRUMCrashMachine.settings = _machine_settings


class TestCrossTreeAgreement:
    """All three trees replaying the same trace answer queries alike."""

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_same_answers(self, seed):
        rng = random.Random(seed)
        trees = [
            build_rstar_tree(node_size=512),
            build_fur_tree(node_size=512),
            build_rum_tree(node_size=512, inspection_ratio=0.4),
        ]
        positions = {}
        for oid in range(60):
            rect = Rect.from_point(rng.random(), rng.random())
            positions[oid] = rect
            for tree in trees:
                tree.insert_object(oid, rect)
        for _ in range(120):
            oid = rng.randrange(60)
            new = Rect.from_point(rng.random(), rng.random())
            for tree in trees:
                tree.update_object(oid, positions[oid], new)
            positions[oid] = new
        for _ in range(15):
            x, y = rng.random(), rng.random()
            window = _window(x, y, 0.2)
            answers = [
                sorted(oid for oid, _r in tree.search(window))
                for tree in trees
            ]
            assert answers[0] == answers[1] == answers[2]
