"""Tests for the road network, moving-object generators, queries, traces."""

import math
import random

import pytest

from repro.rtree.geometry import Rect
from repro.workload.network import RoadNetwork
from repro.workload.objects import (
    NetworkMovingObjects,
    UniformMovingObjects,
    default_network_workload,
)
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import (
    QueryOp,
    UpdateOp,
    mixed_trace,
    query_trace,
    ratio_to_fraction,
    update_trace,
)


class TestRoadNetwork:
    def test_grid_is_connected_and_in_unit_square(self):
        network = RoadNetwork.grid(side=8, seed=1)
        assert network.num_nodes() == 64
        for x, y in network.positions.values():
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_drop_fraction_removes_edges(self):
        full = RoadNetwork.grid(side=8, drop_fraction=0.0, seed=2)
        sparse = RoadNetwork.grid(side=8, drop_fraction=0.3, seed=2)
        assert sparse.num_edges() < full.num_edges()

    def test_point_on_edge_interpolates(self):
        network = RoadNetwork.grid(side=4, jitter=0.0, drop_fraction=0.0)
        u, v = next(iter(network.graph.edges()))
        length = network.edge_length(u, v)
        start = network.point_on_edge(u, v, 0.0)
        end = network.point_on_edge(u, v, length)
        assert start == pytest.approx(network.positions[u])
        assert end == pytest.approx(network.positions[v])
        mid = network.point_on_edge(u, v, length / 2)
        assert mid[0] == pytest.approx((start[0] + end[0]) / 2)

    def test_point_on_edge_clamps(self):
        network = RoadNetwork.grid(side=4)
        u, v = next(iter(network.graph.edges()))
        beyond = network.point_on_edge(u, v, 10.0)
        assert beyond == pytest.approx(network.positions[v])

    def test_random_position_on_some_edge(self):
        network = RoadNetwork.grid(side=6, seed=3)
        rng = random.Random(4)
        for _ in range(20):
            u, v, offset = network.random_position(rng)
            assert network.graph.has_edge(u, v)
            assert 0.0 <= offset <= network.edge_length(u, v) + 1e-12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RoadNetwork.grid(side=1)
        with pytest.raises(ValueError):
            RoadNetwork.grid(side=4, drop_fraction=1.0)


class TestNetworkMovingObjects:
    def test_initial_positions_on_network(self):
        workload = default_network_workload(50, seed=5)
        rects = dict(workload.initial())
        assert len(rects) == 50
        for rect in rects.values():
            assert rect.area() == 0.0  # points by default

    def test_round_robin_updates(self):
        workload = default_network_workload(10, seed=6)
        oids = [oid for oid, _old, _new in workload.updates(20)]
        assert oids == list(range(10)) * 2

    def test_moving_distance_respected(self):
        """Euclidean displacement never exceeds the network distance
        travelled (paths bend), and matches it on straight segments."""
        workload = default_network_workload(
            30, moving_distance=0.05, seed=7
        )
        for oid, old, new in workload.updates(90):
            dx = new.center()[0] - old.center()[0]
            dy = new.center()[1] - old.center()[1]
            assert math.hypot(dx, dy) <= 0.05 + 1e-9

    def test_zero_distance_is_stationary(self):
        workload = default_network_workload(5, moving_distance=0.0, seed=8)
        for _oid, old, new in workload.updates(10):
            assert old == new

    def test_extent_produces_squares(self):
        workload = default_network_workload(20, extent=0.01, seed=9)
        for _oid, rect in workload.initial():
            assert rect.width == pytest.approx(0.01)
            assert rect.height == pytest.approx(0.01)
            assert 0.0 <= rect.xmin and rect.xmax <= 1.0

    def test_determinism(self):
        a = default_network_workload(20, seed=10)
        b = default_network_workload(20, seed=10)
        assert list(a.updates(40)) == list(b.updates(40))

    def test_invalid_parameters(self):
        network = RoadNetwork.grid(side=4)
        with pytest.raises(ValueError):
            NetworkMovingObjects(network, 0)
        with pytest.raises(ValueError):
            NetworkMovingObjects(network, 5, moving_distance=-1)
        with pytest.raises(ValueError):
            NetworkMovingObjects(network, 5, extent=2.0)


class TestUniformMovingObjects:
    def test_walk_stays_in_unit_square(self):
        workload = UniformMovingObjects(20, moving_distance=0.3, seed=11)
        for _oid, _old, new in workload.updates(200):
            assert 0.0 <= new.xmin and new.xmax <= 1.0
            assert 0.0 <= new.ymin and new.ymax <= 1.0

    def test_step_length_exact(self):
        workload = UniformMovingObjects(10, moving_distance=0.05, seed=12)
        for _oid, old, new in workload.updates(30):
            (ox, oy), (nx, ny) = old.center(), new.center()
            # Reflection can shorten the apparent displacement, never
            # lengthen it.
            assert math.hypot(nx - ox, ny - oy) <= 0.05 + 1e-9

    def test_reflect(self):
        assert UniformMovingObjects._reflect(-0.2) == pytest.approx(0.2)
        assert UniformMovingObjects._reflect(1.3) == pytest.approx(0.7)
        assert UniformMovingObjects._reflect(0.5) == 0.5


class TestQueryGenerator:
    def test_windows_are_squares_inside_unit(self):
        generator = RangeQueryGenerator(side=0.05, seed=13)
        for window in generator.queries(100):
            assert window.width == pytest.approx(0.05)
            assert window.height == pytest.approx(0.05)
            assert 0.0 <= window.xmin and window.xmax <= 1.0

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            RangeQueryGenerator(side=0.0)
        with pytest.raises(ValueError):
            RangeQueryGenerator(side=1.5)

    def test_determinism(self):
        a = list(RangeQueryGenerator(seed=14).queries(10))
        b = list(RangeQueryGenerator(seed=14).queries(10))
        assert a == b


class TestTraces:
    def test_ratio_to_fraction(self):
        assert ratio_to_fraction(1, 1) == 0.5
        assert ratio_to_fraction(10000, 1) == pytest.approx(0.9999)
        assert ratio_to_fraction(1, 100) == pytest.approx(1 / 101)
        with pytest.raises(ValueError):
            ratio_to_fraction(0, 0)

    def test_mixed_trace_composition(self):
        objects = UniformMovingObjects(20, seed=15)
        queries = RangeQueryGenerator(seed=16)
        trace = mixed_trace(objects, queries, 100, 0.7, seed=17)
        updates = sum(1 for op in trace if isinstance(op, UpdateOp))
        assert len(trace) == 100
        assert updates == 70

    def test_mixed_trace_bounds(self):
        objects = UniformMovingObjects(5, seed=18)
        queries = RangeQueryGenerator(seed=19)
        assert all(
            isinstance(op, QueryOp)
            for op in mixed_trace(objects, queries, 10, 0.0)
        )
        assert all(
            isinstance(op, UpdateOp)
            for op in mixed_trace(objects, queries, 10, 1.0)
        )
        with pytest.raises(ValueError):
            mixed_trace(objects, queries, 10, 1.5)

    def test_update_and_query_traces(self):
        objects = UniformMovingObjects(5, seed=20)
        ops = list(update_trace(objects, 7))
        assert len(ops) == 7
        assert all(isinstance(op, UpdateOp) for op in ops)
        queries = list(query_trace(RangeQueryGenerator(seed=21), 4))
        assert len(queries) == 4
        assert all(isinstance(op, QueryOp) for op in queries)


class TestDestinationRouting:
    def test_route_mode_respects_distance(self):
        import math

        network = RoadNetwork.grid(side=8, seed=30)
        workload = NetworkMovingObjects(
            network, 20, moving_distance=0.05, seed=31, routing="route"
        )
        for _oid, old, new in workload.updates(200):
            dx = new.center()[0] - old.center()[0]
            dy = new.center()[1] - old.center()[1]
            assert math.hypot(dx, dy) <= 0.05 + 1e-9

    def test_route_mode_deterministic(self):
        network = RoadNetwork.grid(side=6, seed=32)
        a = NetworkMovingObjects(network, 10, seed=33, routing="route")
        b = NetworkMovingObjects(network, 10, seed=33, routing="route")
        assert list(a.updates(60)) == list(b.updates(60))

    def test_route_mode_travels_farther_than_walk(self):
        """Destination routing produces more directed long-range motion
        than an anti-U-turn random walk over many updates."""
        import math

        network = RoadNetwork.grid(side=10, seed=34)
        displacement = {}
        for mode in ("walk", "route"):
            workload = NetworkMovingObjects(
                network, 20, moving_distance=0.04, seed=35, routing=mode
            )
            start = {oid: workload.position(oid) for oid in range(20)}
            for _ in workload.updates(20 * 30):
                pass
            displacement[mode] = sum(
                math.hypot(
                    workload.position(oid)[0] - start[oid][0],
                    workload.position(oid)[1] - start[oid][1],
                )
                for oid in range(20)
            )
        # Not asserted strictly ordered (random walks meander), but both
        # modes must move the population materially.
        assert displacement["walk"] > 0.5
        assert displacement["route"] > 0.5

    def test_unknown_routing_rejected(self):
        network = RoadNetwork.grid(side=4)
        with pytest.raises(ValueError):
            NetworkMovingObjects(network, 5, routing="teleport")
