"""Tests for STR bulk loading across all tree variants."""

import random

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    random_walk,
)
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.rtree.bulk import bulk_load_objects, str_bulk_load
from repro.rtree.geometry import Rect
from repro.rtree.node import LeafEntry


def _pairs(count, seed=170):
    rng = random.Random(seed)
    return {
        oid: Rect.from_point(rng.random(), rng.random())
        for oid in range(count)
    }


@pytest.mark.parametrize(
    "builder", [build_rstar_tree, build_fur_tree, build_rum_tree]
)
class TestBulkLoadAllTrees:
    def test_loaded_tree_answers_queries(self, builder):
        tree = builder(node_size=SMALL_NODE)
        positions = _pairs(300)
        assert bulk_load_objects(tree, positions.items()) == 300
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()

    def test_loaded_tree_accepts_updates(self, builder):
        tree = builder(node_size=SMALL_NODE)
        positions = _pairs(250, seed=171)
        bulk_load_objects(tree, positions.items())
        random_walk(tree, positions, steps=400, seed=172, distance=0.15)
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()

    def test_high_occupancy(self, builder):
        tree = builder(node_size=SMALL_NODE)
        positions = _pairs(400, seed=173)
        bulk_load_objects(tree, positions.items())
        occupancy = tree.num_leaf_entries() / (
            tree.num_leaf_nodes() * tree.leaf_cap
        )
        assert occupancy > 0.85  # packed, unlike incremental loading

    def test_cheaper_than_incremental(self, builder):
        positions = _pairs(300, seed=174)
        bulk = builder(node_size=SMALL_NODE)
        bulk_load_objects(bulk, positions.items())
        incremental = builder(node_size=SMALL_NODE)
        for oid, rect in positions.items():
            incremental.insert_object(oid, rect)
        assert (
            bulk.stats.snapshot().leaf_total
            < incremental.stats.snapshot().leaf_total
        )


class TestBulkLoadEdgeCases:
    def test_empty_load(self, rstar_tree):
        str_bulk_load(rstar_tree, [])
        assert rstar_tree.num_leaf_entries() == 0

    def test_single_leaf_load(self, rstar_tree):
        entries = [
            LeafEntry(Rect.from_point(0.1 * i, 0.1 * i), i) for i in range(5)
        ]
        str_bulk_load(rstar_tree, entries)
        assert rstar_tree.height == 1
        assert rstar_tree.num_leaf_entries() == 5
        rstar_tree.check_invariants()

    def test_non_empty_tree_rejected(self, rstar_tree):
        rstar_tree.insert_object(1, Rect.from_point(0.5, 0.5))
        with pytest.raises(ValueError):
            str_bulk_load(rstar_tree, [LeafEntry(Rect.from_point(0, 0), 2)])

    def test_rum_ring_valid_after_bulk_load(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        positions = _pairs(300, seed=175)
        bulk_load_objects(tree, positions.items())
        tree.check_invariants()  # includes the ring walk
        # The cleaner can run over the packed ring immediately.
        tree.cleaner.run_full_cycle()
        assert_search_matches_oracle(tree, positions)

    def test_fur_index_points_at_real_leaves(self):
        tree = build_fur_tree(node_size=SMALL_NODE)
        positions = _pairs(200, seed=176)
        bulk_load_objects(tree, positions.items())
        for leaf in tree.iter_leaf_nodes():
            for entry in leaf.entries:
                assert tree.index.peek(entry.oid) == leaf.page_id

    def test_rum_entries_are_stamped(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        bulk_load_objects(tree, _pairs(100, seed=177).items())
        stamps = [e.stamp for e in tree.iter_leaf_entries()]
        assert len(set(stamps)) == 100
        assert min(stamps) >= 1
