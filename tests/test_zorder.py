"""Tests for the Z-order partitioning module (``repro.rtree.zorder``).

The serving layer's correctness hangs on two properties checked here:
shard regions tile the unit square exactly, and ``shards_for_window``
never misses the shard a point inside the window routes to — including
at the quantisation-skew boundaries (the grid multiplies by 65535, not
65536, so nominal cell edges are up to ``QUANT_SLACK`` off).
"""

import math
import random

import pytest

from repro import kernels
from repro.kernels import _python as kernels_py
from repro.rtree.geometry import Rect
from repro.rtree.zorder import (
    KEY_BITS,
    QUANT_SLACK,
    ZORDER_BITS,
    morton_key,
    shard_bits,
    shard_for_key,
    shard_for_point,
    shard_region,
    shards_for_window,
    zorder_key,
    zorder_keys,
)


class TestMortonKey:
    def test_origin_and_corner(self):
        assert morton_key(0.0, 0.0) == 0
        assert morton_key(1.0, 1.0) == (1 << KEY_BITS) - 1

    def test_bit_interleaving(self):
        # x fills the even bit positions, y the odd (higher) ones.
        from repro.rtree.zorder import _part1by1

        assert _part1by1(0b1) == 0b01
        assert _part1by1(0b11) == 0b0101
        assert morton_key(1.0, 0.0) == 0x55555555  # all even bits
        assert morton_key(0.0, 1.0) == 0xAAAAAAAA  # all odd bits

    def test_y_owns_the_top_bit(self):
        # The top key bit comes from y, so the first Z-order split is
        # horizontal — shard_region relies on this orientation.
        assert morton_key(1.0, 0.0) >> (KEY_BITS - 1) == 0
        assert morton_key(0.0, 1.0) >> (KEY_BITS - 1) == 1

    def test_key_fits_in_32_bits(self):
        rng = random.Random(7)
        for _ in range(200):
            key = morton_key(rng.random(), rng.random())
            assert 0 <= key < (1 << KEY_BITS)


class TestZorderKeyEdges:
    """The quantiser must cope with every float a workload can produce."""

    def test_exact_zero(self):
        assert zorder_key(Rect(0.0, 0.0, 0.0, 0.0)) == 0

    def test_exact_one(self):
        full = (1 << KEY_BITS) - 1
        assert zorder_key(Rect(1.0, 1.0, 1.0, 1.0)) == full

    def test_denormal_is_clamped_to_zero_cell(self):
        tiny = 5e-324  # smallest positive denormal
        assert zorder_key(Rect(tiny, tiny, tiny, tiny)) == 0

    def test_out_of_range_coordinates_clamp(self):
        full = (1 << KEY_BITS) - 1
        assert zorder_key(Rect(-3.0, -3.0, -3.0, -3.0)) == 0
        assert zorder_key(Rect(2.0, 2.0, 2.0, 2.0)) == full

    def test_nan_does_not_crash(self):
        nan = float("nan")
        key = zorder_key(Rect(nan, nan, nan, nan))
        assert 0 <= key < (1 << KEY_BITS)

    def test_key_uses_rect_centre(self):
        a = zorder_key(Rect(0.2, 0.2, 0.4, 0.4))
        b = zorder_key(Rect(0.3, 0.3, 0.3, 0.3))
        assert a == b


class TestBulkEncoder:
    def _random_rects(self, n, rng):
        rects = []
        for _ in range(n):
            x = rng.uniform(-0.1, 1.1)
            y = rng.uniform(-0.1, 1.1)
            rects.append(Rect(x, y, x + rng.uniform(0, 0.05), y))
        return rects

    def test_bulk_matches_scalar(self):
        rng = random.Random(11)
        rects = self._random_rects(500, rng)
        bulk = zorder_keys(rects)
        assert bulk == [zorder_key(r) for r in rects]

    def test_bulk_matches_pure_python_kernel(self):
        # Whatever backend is active must agree with the reference.
        rng = random.Random(13)
        rects = self._random_rects(300, rng)
        cxs = [(r.xmin + r.xmax) * 0.5 for r in rects]
        cys = [(r.ymin + r.ymax) * 0.5 for r in rects]
        assert kernels.morton_keys(cxs, cys) == kernels_py.morton_keys(
            cxs, cys
        )

    def test_edge_values_in_bulk(self):
        cxs = [0.0, 1.0, 5e-324, -1.0, 2.0]
        cys = [0.0, 1.0, 5e-324, -1.0, 2.0]
        keys = kernels.morton_keys(cxs, cys)
        full = (1 << KEY_BITS) - 1
        assert keys == [0, full, 0, 0, full]

    def test_edge_values_in_large_bulk(self):
        # Over 32 elements the numpy backend leaves its scalar
        # fallback; the edge values must survive the vector path too.
        edge = [0.0, 1.0, 5e-324, -1.0, 2.0, float("nan")]
        cxs = edge * 8
        cys = list(reversed(edge)) * 8
        assert kernels.morton_keys(cxs, cys) == kernels_py.morton_keys(
            cxs, cys
        )

    def test_empty_input(self):
        assert kernels.morton_keys([], []) == []
        assert zorder_keys([]) == []


class TestShardBits:
    def test_powers_of_two(self):
        assert shard_bits(1) == 0
        assert shard_bits(2) == 1
        assert shard_bits(4) == 2
        assert shard_bits(8) == 3
        assert shard_bits(16) == 4

    @pytest.mark.parametrize("bad", [0, -1, 3, 6, 12])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ValueError):
            shard_bits(bad)


class TestShardRegions:
    @pytest.mark.parametrize("bits", [0, 1, 2, 3, 4])
    def test_regions_tile_the_unit_square(self, bits):
        n = 1 << bits
        regions = [shard_region(i, bits) for i in range(n)]
        # Total area is exactly 1 and no two regions overlap (open
        # interiors), so the cells tile the square.
        area = sum((x2 - x1) * (y2 - y1) for x1, y1, x2, y2 in regions)
        assert area == pytest.approx(1.0)
        for i in range(n):
            for j in range(i + 1, n):
                a, b = regions[i], regions[j]
                disjoint = (
                    a[2] <= b[0] or b[2] <= a[0]
                    or a[3] <= b[1] or b[3] <= a[1]
                )
                assert disjoint, (i, j, a, b)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_interior_points_route_to_their_region(self, bits):
        # Sample well inside each cell (clear of quantisation slack):
        # the shard the point routes to must be the cell's own index.
        n = 1 << bits
        for i in range(n):
            x1, y1, x2, y2 = shard_region(i, bits)
            cx, cy = (x1 + x2) * 0.5, (y1 + y2) * 0.5
            assert shard_for_point(cx, cy, bits) == i

    def test_shard_for_key_takes_top_bits(self):
        key = 0b1011 << (KEY_BITS - 4)
        assert shard_for_key(key, 2) == 0b10
        assert shard_for_key(key, 4) == 0b1011
        assert shard_for_key(key, 0) == 0


class TestShardsForWindow:
    @pytest.mark.parametrize("bits", [0, 1, 2, 3, 4])
    def test_point_in_window_never_missed(self, bits):
        """The fan-out safety property: any point inside a window routes
        to a shard the window's fan-out set contains — sampled across
        the quantisation-skew boundaries and out-of-range coordinates.
        """
        rng = random.Random(100 + bits)
        for _ in range(2000):
            x = rng.uniform(-0.2, 1.2)
            y = rng.uniform(-0.2, 1.2)
            side = rng.uniform(0.0, 0.3)
            window = Rect(x, y, x + side, y + side)
            targets = shards_for_window(window, bits)
            # The point itself and the window corners must be covered.
            for px, py in [
                (x, y),
                (x + side, y + side),
                (rng.uniform(x, x + side), rng.uniform(y, y + side)),
            ]:
                assert shard_for_point(px, py, bits) in targets

    def test_cell_boundary_neighbourhood(self):
        # Points within QUANT_SLACK of a nominal boundary are the
        # delicate case: the true quantised edge sits at k/65535-scaled
        # positions, not k/2^16.
        bits = 2
        for k in (1, 2, 3):
            edge = k / 4.0
            for eps in (-QUANT_SLACK, 0.0, QUANT_SLACK):
                p = edge + eps
                window = Rect(p, p, p, p)
                targets = shards_for_window(window, bits)
                assert shard_for_point(p, p, bits) in targets

    def test_whole_square_hits_every_shard(self):
        assert shards_for_window(Rect(0, 0, 1, 1), 2) == [0, 1, 2, 3]

    def test_tiny_window_usually_one_shard(self):
        targets = shards_for_window(Rect(0.1, 0.1, 0.12, 0.12), 2)
        assert targets == [0]

    def test_degenerate_and_inverted_windows(self):
        assert shards_for_window(Rect(0.5, 0.5, 0.5, 0.5), 2)
        # A window entirely outside the square clamps to the border.
        targets = shards_for_window(Rect(1.5, 1.5, 2.0, 2.0), 2)
        assert shard_for_point(1.5, 1.5, 2) in targets


class TestBatchIntegration:
    def test_batch_reexports_zorder(self):
        from repro.core import batch

        assert batch.zorder_key is zorder_key
        assert batch.ZORDER_BITS == ZORDER_BITS
