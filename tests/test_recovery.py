"""Tests for crash recovery of the Update Memo (Section 3.4)."""

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    populate,
    random_walk,
)
from repro.core.recovery import (
    recover_option_i,
    recover_option_ii,
    recover_option_iii,
)
from repro.factory import build_rum_tree
from repro.rtree.geometry import Rect


def _loaded_tree(option, checkpoint_interval=150, seed=110, n=80, steps=300):
    tree = build_rum_tree(
        node_size=SMALL_NODE,
        inspection_ratio=0.2,
        recovery_option=option,
        checkpoint_interval=checkpoint_interval,
    )
    positions = populate(tree, n, seed=seed)
    random_walk(tree, positions, steps=steps, seed=seed + 1, distance=0.15)
    return tree, positions


def _status_map(tree):
    """CheckStatus of every physical leaf entry — the behavioural content
    of the memo."""
    return {
        (e.oid, e.stamp): tree.memo.check_status(e.oid, e.stamp)
        for e in tree.iter_leaf_entries()
    }


class TestCrashModel:
    def test_crash_preserves_tree_loses_memo(self):
        tree, _positions = _loaded_tree(None)
        entries_before = sorted(
            (e.oid, e.stamp) for e in tree.iter_leaf_entries()
        )
        assert len(tree.memo) >= 0
        tree.crash()
        assert len(tree.memo) == 0
        assert tree.stamps.current == 0
        entries_after = sorted(
            (e.oid, e.stamp) for e in tree.iter_leaf_entries()
        )
        assert entries_after == entries_before


class TestOptionI:
    def test_rebuilds_behavioural_memo(self):
        tree, positions = _loaded_tree(None)
        statuses_before = _status_map(tree)
        tree.crash()
        report = recover_option_i(tree)
        assert report.option == "I"
        assert _status_map(tree) == statuses_before
        assert_search_matches_oracle(tree, positions)

    def test_stamp_counter_restored_past_max(self):
        tree, _positions = _loaded_tree(None)
        max_stamp = max(e.stamp for e in tree.iter_leaf_entries())
        tree.crash()
        recover_option_i(tree)
        assert tree.stamps.current == max_stamp + 1

    def test_scan_cost_charged(self):
        tree, _positions = _loaded_tree(None)
        n_leaves = tree.num_leaf_nodes()
        tree.crash()
        report = recover_option_i(tree)
        assert report.io.leaf_reads == n_leaves
        assert report.leaf_entries_scanned == tree.num_leaf_entries()

    def test_spill_accounting(self):
        tree, _positions = _loaded_tree(None)
        tree.crash()
        report = recover_option_i(tree, memory_budget_entries=10)
        assert report.spill_accesses > 0
        assert report.io.index_reads == report.spill_accesses

    def test_no_spill_within_budget(self):
        tree, _positions = _loaded_tree(None)
        tree.crash()
        report = recover_option_i(tree, memory_budget_entries=None)
        assert report.spill_accesses == 0

    def test_pending_deletes_are_lost(self):
        """Documented Option I limitation: memo-based deletes leave no
        trace in the tree, so an unlogged delete resurrects the object."""
        tree = build_rum_tree(node_size=SMALL_NODE, inspection_ratio=0.0)
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        tree.delete_object(1)
        assert tree.search(Rect(0, 0, 1, 1)) == []
        tree.crash()
        recover_option_i(tree)
        assert tree.search(Rect(0, 0, 1, 1)) == [
            (1, Rect.from_point(0.5, 0.5))
        ]

    def test_updates_continue_after_recovery(self):
        tree, positions = _loaded_tree(None)
        tree.crash()
        recover_option_i(tree)
        random_walk(tree, positions, steps=200, seed=111, distance=0.1)
        assert_search_matches_oracle(tree, positions)
        tree.check_invariants()


class TestOptionII:
    def test_superset_recovery_and_correct_queries(self):
        tree, positions = _loaded_tree("II")
        memo_before = {e.oid: e.s_latest for e in tree.memo}
        tree.crash()
        report = recover_option_ii(tree)
        assert report.option == "II"
        # Superset: every pre-crash entry survives with its latest stamp.
        memo_after = {e.oid: e.s_latest for e in tree.memo}
        for oid, s_latest in memo_before.items():
            assert memo_after.get(oid) == s_latest
        assert_search_matches_oracle(tree, positions)

    def test_phantoms_removed_by_cleaning_cycle(self):
        tree, positions = _loaded_tree("II")
        tree.crash()
        recover_option_ii(tree)
        phantom_count = len(tree.memo)
        for _ in range(3):
            tree.cleaner.run_full_cycle()
        # One full cycle cleans all garbage; phantom inspection then purges
        # what is left over.
        assert tree.garbage_count() == 0
        assert len(tree.memo) <= phantom_count
        assert_search_matches_oracle(tree, positions)

    def test_falls_back_to_scan_without_checkpoint(self):
        tree, positions = _loaded_tree("II", checkpoint_interval=10**9)
        tree.crash()
        report = recover_option_ii(tree)
        assert report.option == "II"
        assert report.io.leaf_reads > 0
        assert_search_matches_oracle(tree, positions)

    def test_requires_wal(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        with pytest.raises(ValueError):
            recover_option_ii(tree)

    def test_cheaper_than_option_i_with_spill(self):
        tree, _positions = _loaded_tree("II")
        tree.crash()
        cost_ii = recover_option_ii(tree).disk_accesses
        tree.crash()
        cost_i = recover_option_i(
            tree, memory_budget_entries=5
        ).disk_accesses
        assert cost_ii < cost_i


class TestOptionIII:
    def test_exact_behavioural_recovery_with_deletes(self):
        tree, positions = _loaded_tree("III", checkpoint_interval=100)
        alive = set(positions)
        for oid in (1, 5, 9):
            tree.delete_object(oid)
            alive.discard(oid)
        tree.crash()
        report = recover_option_iii(tree)
        assert report.option == "III"
        # Deletes survive: Option III replays every memo change.
        assert_search_matches_oracle(tree, positions, alive=alive)

    def test_no_leaf_scan(self):
        tree, _positions = _loaded_tree("III")
        tree.crash()
        report = recover_option_iii(tree)
        assert report.io.leaf_reads == 0
        assert report.io.log_reads > 0
        assert report.log_records_replayed > 0

    def test_without_checkpoint_replays_whole_log(self):
        tree, positions = _loaded_tree("III", checkpoint_interval=10**9)
        tree.crash()
        report = recover_option_iii(tree)
        assert report.log_records_replayed >= 300
        assert_search_matches_oracle(tree, positions)

    def test_requires_wal(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        with pytest.raises(ValueError):
            recover_option_iii(tree)

    def test_stamp_counter_restored(self):
        tree, _positions = _loaded_tree("III")
        before = tree.stamps.current
        tree.crash()
        recover_option_iii(tree)
        assert tree.stamps.current >= before - 1


class TestLoggingCosts:
    def test_option_iii_logs_every_update(self):
        tree, _positions = _loaded_tree("III")
        # 80 inserts + 300 updates, each force-logged.
        assert tree.stats.log_writes >= 380

    def test_option_ii_logs_only_checkpoints(self):
        tree, _positions = _loaded_tree("II", checkpoint_interval=100)
        assert 0 < tree.stats.log_writes < 100

    def test_option_none_never_logs(self):
        tree, _positions = _loaded_tree(None)
        assert tree.stats.log_writes == 0


class TestOptionIIDeleteSemantics:
    def test_deletes_after_checkpoint_are_lost(self):
        """Documented Option II limitation: a memo-based delete issued
        after the last checkpoint leaves no trace on disk, so recovery
        resurrects the object (Option III is the fix)."""
        tree = build_rum_tree(
            node_size=SMALL_NODE,
            inspection_ratio=0.0,
            clean_upon_touch=False,
            recovery_option="II",
            checkpoint_interval=10**9,
        )
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        tree.write_checkpoint()
        tree.delete_object(1)  # after the checkpoint, memo-only
        assert tree.search(Rect(0, 0, 1, 1)) == []
        tree.crash()
        recover_option_ii(tree)
        assert tree.search(Rect(0, 0, 1, 1)) == [
            (1, Rect.from_point(0.5, 0.5))
        ]

    def test_deletes_before_checkpoint_survive(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE,
            inspection_ratio=0.0,
            clean_upon_touch=False,
            recovery_option="II",
            checkpoint_interval=10**9,
        )
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        tree.delete_object(1)
        tree.write_checkpoint()  # the delete is inside the snapshot
        tree.crash()
        recover_option_ii(tree)
        assert tree.search(Rect(0, 0, 1, 1)) == []


class TestRestoreLeakRegression:
    """Regression for the ``restore`` zero-count leak across all three
    recovery options: a checkpoint snapshot (or intermediate table) that
    carries an ``n_old <= 0`` entry must not plant an undrainable memo
    entry in the recovered tree."""

    @staticmethod
    def _poison_snapshot(tree):
        real = tree.memo.snapshot

        def poisoned():
            return real() + [(999_999, 10**9, 0), (888_888, 10**9, -2)]

        tree.memo.snapshot = poisoned

    def _assert_clean(self, tree):
        assert tree.memo.get(999_999) is None
        assert tree.memo.get(888_888) is None
        assert all(entry.n_old >= 1 for entry in tree.memo)

    def test_option_i_never_emits_drained_entries(self):
        tree, _positions = _loaded_tree(None)
        tree.crash()
        recover_option_i(tree)
        self._assert_clean(tree)

    def test_option_ii_drops_poisoned_checkpoint_entries(self):
        tree, _positions = _loaded_tree("II", checkpoint_interval=10**9)
        self._poison_snapshot(tree)
        tree.write_checkpoint()
        tree.crash()
        recover_option_ii(tree)
        self._assert_clean(tree)

    def test_option_iii_drops_poisoned_checkpoint_entries(self):
        tree, _positions = _loaded_tree("III", checkpoint_interval=10**9)
        self._poison_snapshot(tree)
        tree.write_checkpoint()
        tree.crash()
        recover_option_iii(tree)
        self._assert_clean(tree)
