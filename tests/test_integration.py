"""Cross-module integration scenarios.

Each test exercises a full slice of the system the way the paper's
experiments do: workload generator → index → queries → metrics, including
crash/recovery mid-stream and the experiment harness itself.
"""

import os

import pytest

from conftest import SMALL_NODE
from repro.core.recovery import recover_option_ii
from repro.experiments.harness import (
    auxiliary_size_bytes,
    load_tree,
    make_tree,
    measure_queries,
    measure_updates,
    run_trace,
    scaled,
)
from repro.factory import build_rum_tree
from repro.rtree.geometry import Rect
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import mixed_trace


def _oracle(workload):
    """Current positions straight from the generator."""
    return {oid: workload.rect(oid) for oid in range(workload.num_objects)}


class TestFullScenario:
    @pytest.mark.parametrize("kind", ["rstar", "fur", "rum_touch", "rum_token"])
    def test_network_workload_end_to_end(self, kind):
        workload = default_network_workload(
            120, moving_distance=0.04, seed=140
        )
        tree = make_tree(kind, node_size=SMALL_NODE)
        assert load_tree(tree, workload.initial()) == 120
        measure_updates(tree, workload, 360)
        # Queries agree with the generator's own positions.
        oracle = _oracle(workload)
        for window in RangeQueryGenerator(side=0.2, seed=141).queries(25):
            got = sorted(oid for oid, _r in tree.search(window))
            want = sorted(
                oid for oid, rect in oracle.items() if rect.intersects(window)
            )
            assert got == want
        tree.check_invariants()

    def test_crash_recover_resume(self):
        """RUM-tree: run, crash, recover (Option II), clean, resume, and
        stay correct throughout."""
        tree = build_rum_tree(
            node_size=SMALL_NODE,
            inspection_ratio=0.2,
            recovery_option="II",
            checkpoint_interval=100,
        )
        workload = default_network_workload(
            100, moving_distance=0.05, seed=142
        )
        load_tree(tree, workload.initial())
        measure_updates(tree, workload, 250)
        tree.crash()
        recover_option_ii(tree)
        tree.cleaner.run_full_cycle()
        measure_updates(tree, workload, 250)
        oracle = _oracle(workload)
        for window in RangeQueryGenerator(side=0.25, seed=143).queries(20):
            got = sorted(oid for oid, _r in tree.search(window))
            want = sorted(
                oid for oid, rect in oracle.items() if rect.intersects(window)
            )
            assert got == want
        tree.check_invariants()

    def test_mixed_trace_measurement(self):
        workload = default_network_workload(80, seed=144)
        tree = make_tree("rum_touch", node_size=SMALL_NODE)
        load_tree(tree, workload.initial())
        trace = mixed_trace(
            workload, RangeQueryGenerator(seed=145), 200, 0.6, seed=146
        )
        cost = run_trace(tree, trace)
        assert cost.operations == 200
        assert cost.updates == 120
        assert cost.queries == 80
        assert cost.io.counted_total > 0
        assert cost.io_per_operation > 0

    def test_query_measurement_counts_results(self):
        workload = default_network_workload(100, seed=147)
        tree = make_tree("rstar", node_size=SMALL_NODE)
        load_tree(tree, workload.initial())
        queries = RangeQueryGenerator(side=0.3, seed=148)
        measurement = measure_queries(tree, queries, 30)
        assert measurement.queries == 30
        assert measurement.results > 0
        assert measurement.io.leaf_writes == 0

    def test_auxiliary_sizes(self):
        rum = make_tree("rum_token", node_size=SMALL_NODE)
        fur = make_tree("fur", node_size=SMALL_NODE)
        rstar = make_tree("rstar", node_size=SMALL_NODE)
        workload = default_network_workload(60, seed=149)
        for tree in (rum, fur, rstar):
            wl = default_network_workload(60, seed=149)
            load_tree(tree, wl.initial())
            measure_updates(tree, wl, 120)
        assert auxiliary_size_bytes(rstar) == 0
        assert auxiliary_size_bytes(fur) == 60 * 16  # one entry per object
        assert auxiliary_size_bytes(rum) == rum.memo_size_bytes()
        del workload


class TestHarnessUtilities:
    def test_make_tree_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_tree("btree")

    def test_scaled_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert scaled(1000) == 500
        monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
        assert scaled(1000) == 1000
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert scaled(100, scale=0.25) == 25
        assert scaled(10, scale=0.1) == 16  # floor of 16

    def test_tree_kinds_all_constructible(self):
        for kind in ("rstar", "fur", "rum_token", "rum_touch"):
            tree = make_tree(kind, node_size=SMALL_NODE)
            tree.insert_object(1, Rect.from_point(0.5, 0.5))
            assert tree.search(Rect(0, 0, 1, 1)) == [
                (1, Rect.from_point(0.5, 0.5))
            ]


class TestExperimentDriversSmoke:
    """Tiny-scale smoke runs of every figure driver (structure only)."""

    @pytest.fixture(autouse=True)
    def _tiny_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")

    def test_fig10(self):
        from repro.experiments import run_fig10

        result = run_fig10(ratios=(0.0, 0.5), updates_per_object=1.0)
        assert len(result.rows) == 4
        assert {"inspection_ratio", "update_io", "garbage_ratio"} <= set(
            result.rows[0]
        )

    def test_fig11(self):
        from repro.experiments import run_fig11

        result = run_fig11(node_sizes=(512, 1024), updates_per_object=1.0)
        assert len(result.rows) == 4
        assert result.rows[0]["update_cpu_ms"] >= 0

    def test_fig12(self):
        from repro.experiments import run_fig12, run_fig12_overall

        result = run_fig12(distances=(0.0, 0.05), node_size=512)
        assert len(result.rows) == 6  # 2 distances x 3 trees
        overall = run_fig12_overall(ratios=((1, 1), (100, 1)), node_size=512)
        assert len(overall.rows) == 6

    def test_fig13(self):
        from repro.experiments import run_fig13

        result = run_fig13(extents=(0.0, 0.01), node_size=512)
        assert len(result.rows) == 6

    def test_fig14(self):
        from repro.experiments import run_fig14

        result = run_fig14(populations=(1000, 2000), node_size=512)
        assert len(result.rows) == 6
        assert result.rows[0]["num_objects"] >= 16

    def test_fig15(self):
        from repro.experiments import run_fig15

        result = run_fig15(node_size=512, updates_per_object=1.0)
        options = [row["option"] for row in result.rows]
        assert options == ["I", "II", "III"]

    def test_table2(self):
        from repro.experiments import run_table2

        result = run_table2(node_size=512, updates_per_object=1.0)
        assert [row["option"] for row in result.rows] == ["I", "II", "III"]
        assert all(row["recovery_io"] >= 0 for row in result.rows)

    def test_fig16(self):
        from repro.experiments import run_fig16

        result = run_fig16(
            num_objects=300,
            total_ops=80,
            n_threads=4,
            io_latency=0.0,
            update_fractions=(0.0, 1.0),
        )
        assert len(result.rows) == 4
        assert all(row["ops_per_s"] > 0 for row in result.rows)

    def test_ablations(self):
        from repro.experiments import (
            run_cost_validation,
            run_structure_ablation,
            run_token_ablation,
        )

        cost = run_cost_validation(node_size=512, updates_per_object=1.0)
        assert len(cost.rows) == 3
        tokens = run_token_ablation(token_counts=(1, 2), node_size=512)
        assert len(tokens.rows) == 2
        structure = run_structure_ablation(node_size=512)
        assert len(structure.rows) == 4

    def test_report_formatting(self):
        from repro.experiments import format_table, print_result, run_fig15
        from repro.experiments.report import rows_by, series_table

        result = run_fig15(node_size=512, updates_per_object=1.0)
        text = format_table(
            ["option", "update_io"],
            [[row["option"], row["update_io"]] for row in result.rows],
        )
        assert "option" in text and "III" in text
        table = series_table(result, "option", "checkpoint_interval", "update_io")
        assert "option" in table
        groups = rows_by(result, "option")
        assert set(groups) == {"I", "II", "III"}
        print_result(result, ["option", "update_io"])


def test_env_scale_restored():
    """Guard: the smoke fixture must not leak the tiny scale."""
    assert os.environ.get("REPRO_BENCH_SCALE") != "0.02"
