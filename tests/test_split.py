"""Tests for the split algorithms and forced-reinsert selection."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtree.geometry import Rect
from repro.rtree.node import LeafEntry
from repro.rtree.split import (
    REINSERT_FRACTION,
    choose_reinsert_entries,
    quadratic_split,
    rstar_split,
)


def _entries(points):
    return [LeafEntry(Rect.from_point(x, y), i) for i, (x, y) in enumerate(points)]


def _random_entries(n, seed=0):
    rng = random.Random(seed)
    return _entries([(rng.random(), rng.random()) for _ in range(n)])


point_lists = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1, allow_nan=False),
        st.floats(min_value=0, max_value=1, allow_nan=False),
    ),
    min_size=6,
    max_size=40,
)


@pytest.mark.parametrize("split_fn", [rstar_split, quadratic_split])
class TestSplitInvariants:
    def test_partition_is_exact(self, split_fn):
        entries = _random_entries(20)
        left, right = split_fn(entries, 4)
        assert sorted(e.oid for e in left + right) == sorted(
            e.oid for e in entries
        )
        assert not set(e.oid for e in left) & set(e.oid for e in right)

    def test_min_fill_respected(self, split_fn):
        entries = _random_entries(25, seed=3)
        left, right = split_fn(entries, 5)
        assert len(left) >= 5
        assert len(right) >= 5

    def test_too_few_entries_rejected(self, split_fn):
        with pytest.raises(ValueError):
            split_fn(_random_entries(5), 3)

    def test_duplicate_points_split(self, split_fn):
        entries = _entries([(0.5, 0.5)] * 12)
        left, right = split_fn(entries, 3)
        assert len(left) + len(right) == 12
        assert len(left) >= 3 and len(right) >= 3


class TestRStarSplitQuality:
    def test_separates_two_clusters(self):
        cluster_a = [(0.1 + 0.01 * i, 0.1) for i in range(6)]
        cluster_b = [(0.8 + 0.01 * i, 0.9) for i in range(6)]
        left, right = rstar_split(_entries(cluster_a + cluster_b), 3)
        mbr_left = Rect.union_all(e.rect for e in left)
        mbr_right = Rect.union_all(e.rect for e in right)
        assert mbr_left.overlap_area(mbr_right) == 0.0

    def test_prefers_low_margin_axis(self):
        # Points on a horizontal line: the split must cut along x.
        entries = _entries([(0.05 * i, 0.5) for i in range(16)])
        left, right = rstar_split(entries, 4)
        mbr_left = Rect.union_all(e.rect for e in left)
        mbr_right = Rect.union_all(e.rect for e in right)
        assert mbr_left.xmax <= mbr_right.xmin or mbr_right.xmax <= mbr_left.xmin

    @given(point_lists)
    def test_property_partition(self, points):
        entries = _entries(points)
        minimum = max(2, len(entries) // 4)
        if len(entries) < 2 * minimum:
            return
        left, right = rstar_split(entries, minimum)
        assert len(left) + len(right) == len(entries)
        assert len(left) >= minimum and len(right) >= minimum


class TestChooseReinsertEntries:
    def test_fraction_and_order(self):
        entries = _entries(
            [(0.5, 0.5)] * 7 + [(0.0, 0.0), (1.0, 1.0), (0.9, 0.1)]
        )
        keep, evicted = choose_reinsert_entries(entries)
        assert len(evicted) == max(1, int(round(len(entries) * REINSERT_FRACTION)))
        assert len(keep) + len(evicted) == len(entries)
        # Evicted entries are the ones farthest from the MBR centre.
        node_mbr = Rect.union_all(e.rect for e in entries)
        max_kept = max(e.rect.center_distance(node_mbr) for e in keep)
        min_evicted = min(e.rect.center_distance(node_mbr) for e in evicted)
        assert min_evicted >= max_kept - 1e-12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            choose_reinsert_entries([])

    def test_custom_fraction(self):
        entries = _random_entries(10)
        keep, evicted = choose_reinsert_entries(entries, fraction=0.5)
        assert len(evicted) == 5
        assert len(keep) == 5
