"""Structural and behavioural tests for the shared R-tree machinery."""

import random

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    brute_force_hits,
    populate,
    random_window,
)
from repro.factory import build_rstar_tree, build_storage
from repro.rtree.base import RTreeBase
from repro.rtree.geometry import Rect


class TestConstruction:
    def test_new_tree_is_single_leaf_root(self, rstar_tree):
        assert rstar_tree.height == 1
        root = rstar_tree._peek_node(rstar_tree.root_id)
        assert root.is_leaf and not root.entries
        # The root leaf's ring points at itself.
        assert root.prev_leaf == root.page_id
        assert root.next_leaf == root.page_id

    def test_bad_split_name_rejected(self):
        with pytest.raises(ValueError):
            RTreeBase(build_storage(SMALL_NODE), split="bogus")

    def test_bad_min_fill_rejected(self):
        with pytest.raises(ValueError):
            RTreeBase(build_storage(SMALL_NODE), min_fill=0.9)

    def test_min_entries_at_most_half_capacity(self, rstar_tree):
        assert rstar_tree.min_leaf <= rstar_tree.leaf_cap // 2
        assert rstar_tree.min_index <= rstar_tree.index_cap // 2


class TestInsertAndSearch:
    def test_empty_tree_search(self, rstar_tree):
        assert rstar_tree.range_search(Rect(0, 0, 1, 1)) == []

    def test_single_insert_found(self, rstar_tree):
        rstar_tree.insert(Rect.from_point(0.5, 0.5), oid=1)
        hits = rstar_tree.range_search(Rect(0.4, 0.4, 0.6, 0.6))
        assert [e.oid for e in hits] == [1]

    def test_search_excludes_non_intersecting(self, rstar_tree):
        rstar_tree.insert(Rect.from_point(0.1, 0.1), oid=1)
        rstar_tree.insert(Rect.from_point(0.9, 0.9), oid=2)
        hits = rstar_tree.range_search(Rect(0.0, 0.0, 0.2, 0.2))
        assert [e.oid for e in hits] == [1]

    @pytest.mark.parametrize("count", [10, 60, 300])
    def test_matches_brute_force(self, rstar_tree, count):
        positions = populate(rstar_tree, count, seed=count)
        assert_search_matches_oracle(rstar_tree, positions)
        rstar_tree.check_invariants()

    def test_tree_grows_in_height(self, rstar_tree):
        populate(rstar_tree, 400, seed=2)
        assert rstar_tree.height >= 3
        rstar_tree.check_invariants()

    def test_all_entries_reachable(self, rstar_tree):
        populate(rstar_tree, 200, seed=3)
        oids = sorted(e.oid for e in rstar_tree.iter_leaf_entries())
        assert oids == list(range(200))

    def test_duplicate_positions_supported(self, rstar_tree):
        for oid in range(50):
            rstar_tree.insert(Rect.from_point(0.5, 0.5), oid)
        hits = rstar_tree.range_search(Rect(0.5, 0.5, 0.5, 0.5))
        assert len(hits) == 50
        rstar_tree.check_invariants()


class TestDelete:
    def test_delete_existing(self, rstar_tree):
        positions = populate(rstar_tree, 100, seed=4)
        victim = positions.pop(42)
        assert rstar_tree.delete(42, victim)
        assert_search_matches_oracle(rstar_tree, positions)
        rstar_tree.check_invariants()

    def test_delete_missing_returns_false(self, rstar_tree):
        populate(rstar_tree, 20, seed=5)
        assert not rstar_tree.delete(999, Rect.from_point(0.5, 0.5))

    def test_delete_wrong_rect_returns_false(self, rstar_tree):
        rstar_tree.insert(Rect.from_point(0.2, 0.2), oid=1)
        assert not rstar_tree.delete(1, Rect.from_point(0.8, 0.8))

    def test_delete_everything(self, rstar_tree):
        positions = populate(rstar_tree, 150, seed=6)
        for oid, rect in list(positions.items()):
            assert rstar_tree.delete(oid, rect)
        assert rstar_tree.range_search(Rect(0, 0, 1, 1)) == []
        rstar_tree.check_invariants()

    def test_delete_shrinks_height(self, rstar_tree):
        positions = populate(rstar_tree, 400, seed=7)
        grown_height = rstar_tree.height
        assert grown_height >= 3
        for oid, rect in list(positions.items())[:380]:
            rstar_tree.delete(oid, rect)
            del positions[oid]
        assert rstar_tree.height < grown_height
        assert_search_matches_oracle(rstar_tree, positions)
        rstar_tree.check_invariants()

    def test_interleaved_insert_delete(self, rstar_tree):
        rng = random.Random(8)
        positions = {}
        next_oid = 0
        for step in range(600):
            if positions and rng.random() < 0.45:
                oid = rng.choice(list(positions))
                assert rstar_tree.delete(oid, positions.pop(oid))
            else:
                rect = Rect.from_point(rng.random(), rng.random())
                rstar_tree.insert(rect, next_oid)
                positions[next_oid] = rect
                next_oid += 1
            if step % 150 == 0:
                rstar_tree.check_invariants()
        assert_search_matches_oracle(rstar_tree, positions)


class TestStructuralInvariants:
    def test_parent_directory_consistent(self, rstar_tree):
        populate(rstar_tree, 250, seed=9)
        # Every non-root node's parent entry points back at it.
        for leaf in rstar_tree.iter_leaf_nodes():
            if leaf.page_id == rstar_tree.root_id:
                continue
            parent_id = rstar_tree.parent[leaf.page_id]
            parent = rstar_tree._peek_node(parent_id)
            parent.find_child_index(leaf.page_id)  # raises if absent

    def test_directory_mbrs_exact(self, rstar_tree):
        populate(rstar_tree, 250, seed=10)
        rstar_tree.check_invariants()  # asserts MBR exactness internally

    def test_fanout_bounds(self, rstar_tree):
        populate(rstar_tree, 300, seed=11)
        for node in rstar_tree.iter_leaf_nodes():
            if node.page_id != rstar_tree.root_id:
                assert (
                    rstar_tree.min_leaf
                    <= len(node.entries)
                    <= rstar_tree.leaf_cap
                )

    def test_leaf_mbr_sides(self, rstar_tree):
        populate(rstar_tree, 120, seed=12)
        sides = rstar_tree.leaf_mbr_sides()
        assert len(sides) == rstar_tree.num_leaf_nodes()
        for width, height in sides:
            assert 0.0 <= width <= 1.0
            assert 0.0 <= height <= 1.0

    def test_num_leaf_entries(self, rstar_tree):
        populate(rstar_tree, 77, seed=13)
        assert rstar_tree.num_leaf_entries() == 77


class TestLeafRing:
    def _ring_tree(self):
        tree = RTreeBase(build_storage(SMALL_NODE), maintain_leaf_ring=True)
        return tree

    def test_ring_covers_all_leaves_after_growth(self):
        tree = self._ring_tree()
        rng = random.Random(14)
        for oid in range(400):
            tree.insert(Rect.from_point(rng.random(), rng.random()), oid)
        tree.check_invariants()  # includes the ring walk
        assert tree.num_leaf_nodes() > 10

    def test_ring_survives_deletes(self):
        tree = self._ring_tree()
        rng = random.Random(15)
        rects = {}
        for oid in range(300):
            rect = Rect.from_point(rng.random(), rng.random())
            rects[oid] = rect
            tree.insert(rect, oid)
        for oid in range(0, 300, 2):
            assert tree.delete(oid, rects[oid])
        tree.check_invariants()

    def test_classic_trees_skip_ring_maintenance(self, rstar_tree):
        populate(rstar_tree, 200, seed=16)
        # Ring never maintained: fresh leaves carry the NO_PAGE sentinel
        # or stale values; the flag must be off.
        assert rstar_tree.maintain_leaf_ring is False


class TestIOAccounting:
    def test_insert_costs_one_read_one_write_steady_state(self, rstar_tree):
        populate(rstar_tree, 120, seed=17)
        stats = rstar_tree.stats
        costs = []
        rng = random.Random(18)
        for oid in range(120, 170):
            before = stats.snapshot()
            rstar_tree.insert(
                Rect.from_point(rng.random(), rng.random()), oid
            )
            delta = stats.snapshot() - before
            costs.append(delta.leaf_total)
        # Most inserts touch exactly one leaf: 1 read + 1 write; splits and
        # reinserts occasionally cost more.
        assert min(costs) == 2
        assert sorted(costs)[len(costs) // 2] == 2

    def test_query_charges_leaf_reads_only(self, rstar_tree):
        populate(rstar_tree, 150, seed=19)
        stats = rstar_tree.stats
        before = stats.snapshot()
        rstar_tree.range_search(Rect(0.2, 0.2, 0.4, 0.4))
        delta = stats.snapshot() - before
        assert delta.leaf_reads >= 1
        assert delta.leaf_writes == 0

    def test_introspection_charges_nothing(self, rstar_tree):
        populate(rstar_tree, 100, seed=20)
        before = rstar_tree.stats.snapshot()
        list(rstar_tree.iter_leaf_entries())
        rstar_tree.num_leaf_nodes()
        rstar_tree.leaf_mbr_sides()
        rstar_tree.check_invariants()
        assert rstar_tree.stats.snapshot() == before


class TestSplitPolicies:
    @pytest.mark.parametrize("split", ["rstar", "quadratic"])
    @pytest.mark.parametrize("forced", [True, False])
    def test_all_policies_correct(self, split, forced):
        tree = RTreeBase(
            build_storage(SMALL_NODE), split=split, forced_reinsert=forced
        )
        rng = random.Random(21)
        positions = {}
        for oid in range(250):
            rect = Rect.from_point(rng.random(), rng.random())
            positions[oid] = rect
            tree.insert(rect, oid)
        tree.check_invariants()
        window = random_window(rng, side=0.3)
        got = sorted(e.oid for e in tree.range_search(window))
        assert got == brute_force_hits(positions, window)
