"""Tests for the read/write locks, granular lock manager, and the
concurrent-throughput harness."""

import threading
import time

import pytest

from repro.concurrency.locks import (
    READ,
    WRITE,
    GranularLockManager,
    ReadWriteLock,
)
from repro.concurrency.throughput import ConcurrentHarness, _cells_for
from repro.factory import build_rstar_tree, build_rum_tree
from repro.rtree.geometry import Rect
from repro.workload.objects import UniformMovingObjects
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import mixed_trace


class TestReadWriteLock:
    def test_multiple_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()  # second reader must not block
        lock.release_read()
        lock.release_read()

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        acquired = []

        def reader():
            lock.acquire_read()
            acquired.append(True)
            lock.release_read()

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        assert not acquired  # blocked while the writer holds the lock
        lock.release_write()
        thread.join(timeout=2)
        assert acquired

    def test_writer_excludes_writer(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        acquired = []

        def writer():
            lock.acquire_write()
            acquired.append(True)
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        assert not acquired
        lock.release_write()
        thread.join(timeout=2)
        assert acquired

    def test_release_without_acquire_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_context_managers(self):
        lock = ReadWriteLock()
        with lock.read():
            pass
        with lock.write():
            pass


class TestGranularLockManager:
    def test_locks_created_on_demand(self):
        manager = GranularLockManager()
        assert manager.num_granules() == 0
        manager.lock_for("a")
        assert manager.num_granules() == 1
        assert manager.lock_for("a") is manager.lock_for("a")

    def test_locked_acquires_and_releases(self):
        manager = GranularLockManager()
        with manager.locked([("a", WRITE), ("b", READ)]):
            pass
        # Everything released: an exclusive re-acquire must not block.
        with manager.locked([("a", WRITE), ("b", WRITE)]):
            pass

    def test_duplicate_granules_coalesced_write_wins(self):
        manager = GranularLockManager()
        with manager.locked([("a", READ), ("a", WRITE)]):
            # If the read lock were acquired separately the write acquire
            # on the same granule would deadlock — reaching here proves
            # the coalescing.
            pass

    def test_unknown_mode_rejected(self):
        manager = GranularLockManager()
        with pytest.raises(ValueError):
            with manager.locked([("a", "exclusive")]):
                pass

    def test_parallel_disjoint_granules(self):
        manager = GranularLockManager()
        order = []

        def worker(name):
            with manager.locked([(name, WRITE)]):
                order.append(name)
                time.sleep(0.02)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in "abcd"
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Disjoint granules run concurrently: far less than serial time.
        assert time.perf_counter() - started < 4 * 0.02 + 0.2
        assert sorted(order) == list("abcd")


class TestCellCover:
    def test_single_cell_for_point(self):
        cells = _cells_for(Rect.from_point(0.55, 0.55), grid=4)
        assert cells == [("cell", 2, 2)]

    def test_window_spans_cells(self):
        cells = _cells_for(Rect(0.0, 0.0, 0.6, 0.3), grid=4)
        assert ("cell", 0, 0) in cells
        assert ("cell", 2, 1) in cells
        assert len(cells) == 6

    def test_padding_widens_cover(self):
        narrow = _cells_for(Rect.from_point(0.5, 0.5), grid=8)
        padded = _cells_for(Rect.from_point(0.5, 0.5), grid=8, pad=0.2)
        assert len(padded) > len(narrow)

    def test_clamped_to_grid(self):
        cells = _cells_for(Rect(0.9, 0.9, 1.0, 1.0), grid=4, pad=0.5)
        for _tag, cx, cy in cells:
            assert 0 <= cx < 4 and 0 <= cy < 4


class TestConcurrentHarness:
    def _workload(self, tree, n_objects=150, ops=60, update_fraction=0.5):
        objects = UniformMovingObjects(
            n_objects, moving_distance=0.05, seed=120
        )
        for oid, rect in objects.initial():
            tree.insert_object(oid, rect)
        return mixed_trace(
            objects,
            RangeQueryGenerator(side=0.1, seed=121),
            ops,
            update_fraction,
            seed=122,
        )

    def test_rum_tree_runs_mixed_workload(self):
        tree = build_rum_tree(node_size=512)
        trace = self._workload(tree)
        harness = ConcurrentHarness(tree, io_latency=0.0)
        outcome = harness.run(trace, n_threads=8)
        assert outcome.operations == len(trace)
        assert outcome.update_fraction == pytest.approx(0.5, abs=0.05)
        tree.check_invariants()

    def test_rstar_tree_runs_mixed_workload(self):
        tree = build_rstar_tree(node_size=512)
        trace = self._workload(tree)
        harness = ConcurrentHarness(tree, io_latency=0.0)
        outcome = harness.run(trace, n_threads=8)
        assert outcome.operations == len(trace)
        tree.check_invariants()

    def test_worker_errors_surface(self):
        tree = build_rstar_tree(node_size=512)
        objects = UniformMovingObjects(10, seed=123)
        # Do NOT load the tree: updates must fail and propagate.
        trace = mixed_trace(
            objects, RangeQueryGenerator(seed=124), 10, 1.0, seed=125
        )
        harness = ConcurrentHarness(tree, io_latency=0.0)
        with pytest.raises(Exception):
            harness.run(trace, n_threads=4)

    def test_invalid_thread_count(self):
        tree = build_rum_tree(node_size=512)
        harness = ConcurrentHarness(tree)
        with pytest.raises(ValueError):
            harness.run([], n_threads=0)

    def test_results_identical_to_sequential(self):
        """Concurrency must not change query answers: replay the same
        trace sequentially and compare final search results."""
        trace = None
        results = {}
        for mode in ("concurrent", "sequential"):
            tree = build_rum_tree(node_size=512)
            if trace is None:
                trace = self._workload(tree, update_fraction=1.0)
            else:
                self._workload(tree, update_fraction=1.0)
            if mode == "concurrent":
                ConcurrentHarness(tree, io_latency=0.0).run(
                    trace, n_threads=8
                )
            else:
                for op in trace:
                    tree.update_object(op.oid, op.old_rect, op.new_rect)
            results[mode] = sorted(tree.search(Rect(0, 0, 1, 1)))
        assert results["concurrent"] == results["sequential"]


class TestLockFootprints:
    """The Section-3.5 asymmetry at the unit level: a memo-based update
    requests far fewer exclusive spatial granules than a top-down one."""

    def _op(self):
        from repro.workload.trace import UpdateOp

        return UpdateOp(
            oid=7,
            old_rect=Rect.from_point(0.5, 0.5),
            new_rect=Rect.from_point(0.52, 0.52),
        )

    def test_rum_update_locks_one_cell(self):
        tree = build_rum_tree(node_size=512)
        harness = ConcurrentHarness(tree)
        cells = [
            granule
            for granule, _mode in harness._update_lock_requests(self._op())
            if isinstance(granule, tuple) and granule[0] == "cell"
        ]
        assert len(cells) == 1

    def test_rstar_update_locks_a_neighbourhood(self):
        rum = ConcurrentHarness(build_rum_tree(node_size=512))
        rstar = ConcurrentHarness(build_rstar_tree(node_size=512))
        op = self._op()
        rum_cells = [
            g for g, _m in rum._update_lock_requests(op)
            if isinstance(g, tuple) and g[0] == "cell"
        ]
        rstar_cells = [
            g for g, _m in rstar._update_lock_requests(op)
            if isinstance(g, tuple) and g[0] == "cell"
        ]
        assert len(rstar_cells) > len(rum_cells)

    def test_rum_brief_latches_exist_and_are_brief(self):
        tree = build_rum_tree(node_size=512)
        harness = ConcurrentHarness(tree)
        brief = harness._update_brief_requests(self._op())
        names = {g if not isinstance(g, tuple) else g[0] for g, _m in brief}
        assert "stamp_counter" in names
        assert "memo_bucket" in names
        # The R*-tree has no in-memory latches to take.
        rstar = ConcurrentHarness(build_rstar_tree(node_size=512))
        assert rstar._update_brief_requests(self._op()) == []


class TestReadReentrancy:
    """Read holds are reentrant even with a writer queued (the classic
    writer-preference self-deadlock, see docs/CONCURRENCY.md)."""

    def test_reentrant_read_with_waiting_writer(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = []

        def writer():
            writer_started.set()
            lock.acquire_write()
            writer_done.append(True)
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        writer_started.wait(timeout=2)
        time.sleep(0.05)  # let the writer reach the preference gate
        # Pre-fix this deadlocked: the second acquire_read queued
        # behind the waiting writer, which waits for the first hold.
        lock.acquire_read()
        lock.release_read()
        assert not writer_done  # writer still excluded by the first hold
        lock.release_read()
        thread.join(timeout=2)
        assert writer_done

    def test_fresh_reader_still_respects_writer_preference(self):
        # Reentrancy is per thread: a *different* thread with no prior
        # hold queues behind the waiting writer, and the writer goes
        # first once the original read hold drains.
        lock = ReadWriteLock()
        lock.acquire_read()
        order = []

        def writer():
            lock.acquire_write()
            order.append("writer")
            lock.release_write()

        def fresh_reader():
            lock.acquire_read()
            order.append("reader")
            lock.release_read()

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # writer reaches the preference gate
        r = threading.Thread(target=fresh_reader)
        r.start()
        time.sleep(0.05)
        assert order == []  # both parked behind the first read hold
        lock.release_read()
        w.join(timeout=2)
        r.join(timeout=2)
        assert order[0] == "writer"

    def test_write_reentrancy_raises(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        with pytest.raises(RuntimeError, match="not reentrant"):
            lock.acquire_write()
        lock.release_write()

    def test_upgrade_raises(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        with pytest.raises(RuntimeError, match="upgrade"):
            lock.acquire_write()
        lock.release_read()

    def test_downgrade_raises(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        with pytest.raises(RuntimeError, match="downgrade"):
            lock.acquire_read()
        lock.release_write()


class TestWriterPreferenceLiveness:
    def test_writer_not_starved_by_reader_stream(self):
        # A continuous stream of new readers must not starve a queued
        # writer: the preference gate parks readers arriving after it.
        lock = ReadWriteLock()
        stop = threading.Event()
        writer_done = threading.Event()

        def reader_stream():
            while not stop.is_set():
                lock.acquire_read()
                time.sleep(0.001)
                lock.release_read()

        readers = [threading.Thread(target=reader_stream) for _ in range(4)]
        for r in readers:
            r.start()
        time.sleep(0.02)

        def writer():
            lock.acquire_write()
            lock.release_write()
            writer_done.set()

        w = threading.Thread(target=writer)
        w.start()
        assert writer_done.wait(timeout=5), "writer starved by readers"
        stop.set()
        w.join(timeout=2)
        for r in readers:
            r.join(timeout=2)

    def test_no_lost_wakeups_under_churn(self):
        # Many writers and readers hammering one lock: every acquire
        # must eventually succeed (a lost wakeup would hang a thread
        # and trip the join timeout), and the write count must be exact.
        lock = ReadWriteLock()
        counter = {"value": 0}
        per_thread = 40

        def writer():
            for _ in range(per_thread):
                lock.acquire_write()
                counter["value"] += 1
                lock.release_write()

        def reader():
            for _ in range(per_thread):
                lock.acquire_read()
                assert counter["value"] >= 0
                lock.release_read()

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "thread hung: lost wakeup"
        assert counter["value"] == 4 * per_thread


class TestLockOrderTotalOrder:
    class _EvilRepr:
        """Adversarial granule: every repr() call differs."""

        _serial = [0]

        def __init__(self):
            self._serial[0] += 1
            self.me = self._serial[0]

        def __repr__(self):
            import random

            return f"evil-{random.random()}"

        def __hash__(self):
            return 0  # force hash collisions too

        def __eq__(self, other):
            return isinstance(other, type(self)) and self.me == other.me

    def test_order_key_is_stable_per_granule(self):
        manager = GranularLockManager()
        granules = [self._EvilRepr() for _ in range(8)]
        first = [manager.order_key(g) for g in granules]
        second = [manager.order_key(g) for g in granules]
        # The repr is captured once at registration: stable thereafter.
        assert first == second
        assert len(set(first)) == len(granules)

    def test_order_key_total_across_types(self):
        manager = GranularLockManager()
        granules = [("cell", 1, 2), "stamp_counter", 7, self._EvilRepr()]
        keys = [manager.order_key(g) for g in granules]
        assert sorted(keys) == sorted(keys, key=lambda k: k)  # comparable
        assert len(set(keys)) == len(granules)

    def test_adversarial_granules_do_not_deadlock(self):
        # Two threads locking the same adversarial pair in opposite
        # request order: the manager's total order must serialise them.
        manager = GranularLockManager()
        a, b = self._EvilRepr(), self._EvilRepr()
        done = []

        def forwards():
            for _ in range(50):
                with manager.locked([(a, WRITE), (b, WRITE)]):
                    done.append("f")

        def backwards():
            for _ in range(50):
                with manager.locked([(b, WRITE), (a, WRITE)]):
                    done.append("b")

        threads = [
            threading.Thread(target=forwards),
            threading.Thread(target=backwards),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "deadlock: total order violated"
        assert len(done) == 100


class TestTwoPhaseLockingHammer:
    def test_multi_granule_2pl_invariant(self):
        # Each op moves one unit from one account-granule to another
        # under both write locks; the grand total is the oracle — any
        # 2PL violation (lock not actually held, partial acquisition)
        # shows up as a lost update.
        manager = GranularLockManager()
        n_accounts = 6
        balances = {i: 100 for i in range(n_accounts)}
        ops_per_thread = 150

        def worker(seed):
            import random

            rng = random.Random(seed)
            for _ in range(ops_per_thread):
                src, dst = rng.sample(range(n_accounts), 2)
                with manager.locked(
                    [(("acct", src), WRITE), (("acct", dst), WRITE)]
                ):
                    take = balances[src]
                    give = balances[dst]
                    balances[src] = take - 1
                    balances[dst] = give + 1

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert sum(balances.values()) == 100 * n_accounts


class TestReadLatchedQueries:
    """Regression tests for the serving-layer fix: queries hold the
    structure latch in *read* mode, so they genuinely overlap — and the
    race detector agrees that doing so is safe."""

    def _query_workload(self, tree, ops=40):
        objects = UniformMovingObjects(120, moving_distance=0.05, seed=220)
        for oid, rect in objects.initial():
            tree.insert_object(oid, rect)
        return mixed_trace(
            objects,
            RangeQueryGenerator(side=0.15, seed=221),
            ops,
            0.25,  # query-heavy: the overlap path dominates
            seed=222,
        )

    def test_two_queries_overlap_inside_search(self):
        """Both workers must be inside ``tree.search`` at the same
        time; under the old write-latched queries the barrier would
        time out (queries serialised) and the run would fail."""
        from repro.workload.trace import QueryOp

        tree = build_rum_tree(node_size=512)
        for oid in range(50):
            tree.insert_object(
                oid, Rect(oid / 50, 0.4, oid / 50 + 0.01, 0.41)
            )
        barrier = threading.Barrier(2, timeout=10)
        original = tree.search

        def synced_search(window):
            barrier.wait()  # releases only if both queries are inside
            return original(window)

        tree.search = synced_search
        harness = ConcurrentHarness(tree, io_latency=0.0)
        ops = [QueryOp(Rect(0, 0, 1, 1)), QueryOp(Rect(0, 0, 1, 1))]
        outcome = harness.run(ops, n_threads=2)
        assert outcome.operations == 2

    def test_query_heavy_run_is_race_free(self):
        """The whole point of the read latch: with the detector on, a
        query-heavy mixed run over one tree reports zero races (the
        shared-access buffer pool serialises its own cache behind its
        guard)."""
        from repro.concurrency import racecheck
        from repro.concurrency.racecheck import RaceChecker

        checker = racecheck.activate(RaceChecker())
        try:
            tree = build_rum_tree(node_size=512)
            trace = self._query_workload(tree)
            harness = ConcurrentHarness(tree, io_latency=0.0)
            assert harness.racecheck is checker
            harness.run(trace, n_threads=8)
            checker.assert_no_races()
        finally:
            racecheck.deactivate()
        tree.check_invariants()


class TestPercentile:
    def test_empty_and_singleton(self):
        from repro.concurrency.throughput import percentile

        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0

    def test_linear_interpolation(self):
        from repro.concurrency.throughput import percentile

        assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        vals = [float(i) for i in range(101)]
        assert percentile(vals, 0.95) == pytest.approx(95.0)
        assert percentile(vals, 0.0) == 0.0
        assert percentile(vals, 1.0) == 100.0


class TestOpenLoopHarness:
    def _factory(self, sink, lock):
        def make(k):
            def execute(op):
                with lock:
                    sink.append((k, op))

            return execute

        return make

    def test_fixed_rate_run(self):
        from repro.concurrency.throughput import OpenLoopHarness

        sink = []
        lock = threading.Lock()
        harness = OpenLoopHarness(self._factory(sink, lock), n_clients=4)
        ops = list(range(120))
        result = harness.run(ops, rate=3000.0)
        assert result.operations == 120
        assert len(result.latencies_ms) == 120
        assert sorted(op for _, op in sink) == ops
        # Round-robin assignment: client k got ops k, k+4, ...
        for k, op in sink:
            assert op % 4 == k
        assert result.latencies_ms == sorted(result.latencies_ms)
        report = result.report()
        assert set(report) == {"p50_ms", "p95_ms", "p99_ms", "max_ms"}
        assert report["p50_ms"] <= report["p95_ms"] <= report["p99_ms"]
        # 120 ops at 3000/s is a 40 ms schedule; generous upper bound.
        assert 0.03 < result.elapsed_seconds < 5.0

    def test_saturation_run(self):
        from repro.concurrency.throughput import OpenLoopHarness

        sink = []
        lock = threading.Lock()
        harness = OpenLoopHarness(self._factory(sink, lock), n_clients=2)
        result = harness.run(list(range(50)), rate=float("inf"))
        assert result.offered_rate == float("inf")
        assert result.achieved_rate > 0
        assert len(sink) == 50

    def test_queueing_charged_to_latency(self):
        """Open-loop semantics: a slow server at an offered rate beyond
        its capacity shows *growing* latency (queueing from the
        scheduled arrival), not the flat service time a closed loop
        would report."""
        from repro.concurrency.throughput import OpenLoopHarness

        service = 0.005

        def factory(k):
            def execute(op):
                time.sleep(service)  # one blocking server per client

            return execute

        harness = OpenLoopHarness(factory, n_clients=1)
        # Offered 1000/s against a 200/s server: op i queues ~i*4ms.
        result = harness.run(list(range(30)), rate=1000.0)
        assert result.percentile_ms(0.99) > 4 * service * 1000
        assert result.percentile_ms(0.99) > 3 * result.percentile_ms(0.05)

    def test_errors_surface(self):
        from repro.concurrency.throughput import OpenLoopHarness

        def factory(k):
            def execute(op):
                if op == 7:
                    raise RuntimeError("injected")

            return execute

        harness = OpenLoopHarness(factory, n_clients=2)
        with pytest.raises(RuntimeError, match="injected"):
            harness.run(list(range(20)), rate=float("inf"))

    def test_invalid_arguments(self):
        from repro.concurrency.throughput import OpenLoopHarness

        with pytest.raises(ValueError):
            OpenLoopHarness(lambda k: (lambda op: None), n_clients=0)
        harness = OpenLoopHarness(lambda k: (lambda op: None), n_clients=1)
        with pytest.raises(ValueError):
            harness.run([1], rate=0.0)

    def test_racecheck_brackets_clients(self):
        from repro.concurrency import racecheck
        from repro.concurrency.racecheck import RaceChecker
        from repro.concurrency.throughput import OpenLoopHarness

        checker = racecheck.activate(RaceChecker())
        try:
            counts = [0, 0]

            def factory(k):
                def execute(op):
                    counts[k] += 1  # disjoint slots: no race

                return execute

            harness = OpenLoopHarness(factory, n_clients=2)
            assert harness.racecheck is checker
            harness.run(list(range(20)), rate=float("inf"))
            checker.assert_no_races()
        finally:
            racecheck.deactivate()
        assert sum(counts) == 20
