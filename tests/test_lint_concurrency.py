"""Tests for the concurrency lint rules (REP011–REP015).

Same fixture discipline as ``test_lint.py``: every rule gets a failing
fixture (the violation the rule was written to catch), a suppression
check, and a negative (compliant code passes).  The last test runs the
five rules over the real source tree — the discipline they enforce must
hold in the code that ships.
"""

from __future__ import annotations

import pathlib
import textwrap

from repro.lint import run_lint

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

CONCURRENCY_RULES = ("REP011", "REP012", "REP013", "REP014", "REP015")


def write(root: pathlib.Path, rel: str, body: str) -> pathlib.Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return path


def lint(root: pathlib.Path, *select: str):
    return run_lint([root], select=list(select) or None)


def rule_ids(diagnostics) -> set:
    return {d.rule_id for d in diagnostics}


class TestReleasePairing:
    """REP011: explicit acquires must be release-paired on all paths."""

    def test_flags_unpaired_acquire(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(lock):
                lock.acquire()
                do_work()
                lock.release()
            """,
        )
        diags = lint(tmp_path, "REP011")
        assert rule_ids(diags) == {"REP011"}
        assert "acquire" in diags[0].message

    def test_flags_unpaired_rw_acquires(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(latch):
                latch.acquire_read()
                read_things()
                latch.release_read()

            def g(latch):
                latch.acquire_write()
                write_things()
                latch.release_write()
            """,
        )
        assert len(lint(tmp_path, "REP011")) == 2

    def test_accepts_following_try_finally(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(lock):
                lock.acquire()
                try:
                    do_work()
                finally:
                    lock.release()
            """,
        )
        assert lint(tmp_path, "REP011") == []

    def test_accepts_enclosing_try_finally(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(locks):
                acquired = []
                try:
                    for lock in locks:
                        lock.acquire_write()
                        acquired.append(lock)
                    work()
                finally:
                    for lock in reversed(acquired):
                        lock.release_write()
            """,
        )
        assert lint(tmp_path, "REP011") == []

    def test_release_of_other_receiver_does_not_pair(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(a, b):
                a.acquire()
                try:
                    work()
                finally:
                    b.release()
            """,
        )
        assert rule_ids(lint(tmp_path, "REP011")) == {"REP011"}

    def test_mismatched_release_kind_does_not_pair(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(latch):
                latch.acquire_write()
                try:
                    work()
                finally:
                    latch.release_read()
            """,
        )
        assert rule_ids(lint(tmp_path, "REP011")) == {"REP011"}

    def test_nested_function_resets_try_scope(self, tmp_path):
        # A finally around a *def* does not run around later calls of
        # the defined function, so it must not pair the inner acquire.
        write(
            tmp_path,
            "core/x.py",
            """
            def f(lock):
                try:
                    def g():
                        lock.acquire()
                        work()
                        lock.release()
                    return g
                finally:
                    lock.release()
            """,
        )
        assert rule_ids(lint(tmp_path, "REP011")) == {"REP011"}

    def test_with_blocks_never_flagged(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(lock):
                with lock:
                    do_work()
            """,
        )
        assert lint(tmp_path, "REP011") == []

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(lock):
                lock.acquire()  # lint: disable=REP011  released by caller
                return lock
            """,
        )
        assert lint(tmp_path, "REP011") == []


class TestLockOrder:
    """REP012: the project-wide lock-order graph must be acyclic."""

    CYCLIC = """
        class Worker:
            def forwards(self):
                with self.memo_lock:
                    with self.stamp_lock:
                        work()

            def backwards(self):
                with self.stamp_lock:
                    with self.memo_lock:
                        work()
    """

    def test_flags_two_lock_cycle(self, tmp_path):
        write(tmp_path, "core/x.py", self.CYCLIC)
        diags = lint(tmp_path, "REP012")
        assert rule_ids(diags) == {"REP012"}
        # Both edges of the cycle are reported, each at its own site.
        assert len(diags) == 2
        assert "cycle" in diags[0].message

    def test_cycle_across_files(self, tmp_path):
        write(
            tmp_path,
            "core/a.py",
            """
            def f(memo_lock, stamp_lock):
                with memo_lock:
                    with stamp_lock:
                        work()
            """,
        )
        write(
            tmp_path,
            "core/b.py",
            """
            def g(memo_lock, stamp_lock):
                with stamp_lock:
                    with memo_lock:
                        work()
            """,
        )
        diags = lint(tmp_path, "REP012")
        assert len(diags) == 2
        assert {d.path.rsplit("/", 1)[-1] for d in diags} == {"a.py", "b.py"}

    def test_three_lock_cycle(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(a_lock, b_lock, c_lock):
                with a_lock:
                    with b_lock:
                        work()

            def g(a_lock, b_lock, c_lock):
                with b_lock:
                    with c_lock:
                        work()

            def h(a_lock, b_lock, c_lock):
                with c_lock:
                    with a_lock:
                        work()
            """,
        )
        diags = lint(tmp_path, "REP012")
        assert len(diags) == 3

    def test_consistent_order_passes(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Worker:
                def one(self):
                    with self.memo_lock:
                        with self.stamp_lock:
                            work()

                def two(self):
                    with self.memo_lock:
                        with self.stamp_lock:
                            other_work()
            """,
        )
        assert lint(tmp_path, "REP012") == []

    def test_non_lock_withs_ignored(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(pool, stamp_lock):
                with pool.operation():
                    with stamp_lock:
                        work()

            def g(pool, stamp_lock):
                with stamp_lock:
                    with pool.operation():
                        work()
            """,
        )
        assert lint(tmp_path, "REP012") == []

    def test_reentrant_same_lock_not_a_cycle(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(latch):
                with latch.read():
                    with latch.read():
                        work()
            """,
        )
        assert lint(tmp_path, "REP012") == []

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Worker:
                def forwards(self):
                    with self.memo_lock:
                        # lint: disable=REP012  intentional for the fixture
                        with self.stamp_lock:
                            work()

                def backwards(self):
                    with self.stamp_lock:
                        # lint: disable=REP012  intentional for the fixture
                        with self.memo_lock:
                            work()
            """,
        )
        assert lint(tmp_path, "REP012") == []


class TestGuardedBy:
    """REP013: guarded attributes only touched under their lock."""

    BAD = """
        class Counter:
            def __init__(self):
                self._value = 0  # guarded-by: _lock
                self._lock = make_lock()

            def unsafe(self):
                return self._value
    """

    def test_flags_unguarded_access(self, tmp_path):
        write(tmp_path, "core/x.py", self.BAD)
        diags = lint(tmp_path, "REP013")
        assert rule_ids(diags) == {"REP013"}
        assert "_value" in diags[0].message
        assert "_lock" in diags[0].message

    def test_with_block_satisfies(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Counter:
                def __init__(self):
                    self._value = 0  # guarded-by: _lock
                    self._lock = make_lock()

                def safe(self):
                    with self._lock:
                        return self._value
            """,
        )
        assert lint(tmp_path, "REP013") == []

    def test_holds_annotation_satisfies(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Memo:
                def __init__(self):
                    self._buckets = []  # guarded-by: bucket_lock

                def _bucket(self, oid):  # holds: bucket_lock
                    return self._buckets[oid % 4]

                # holds: bucket_lock
                def snapshot(self):
                    return list(self._buckets)
            """,
        )
        assert lint(tmp_path, "REP013") == []

    def test_access_after_with_block_flagged(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Counter:
                def __init__(self):
                    self._value = 0  # guarded-by: _lock
                    self._lock = make_lock()

                def leaky(self):
                    with self._lock:
                        snapshot = self._value
                    return snapshot + self._value
            """,
        )
        diags = lint(tmp_path, "REP013")
        assert len(diags) == 1

    def test_constructor_and_cascades_exempt(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Memo:
                def __init__(self):
                    self._runs = []  # guarded-by: latch
                    self._runs.append(0)

                def attach_obs(self, obs):
                    obs.gauge("runs").set_function(lambda: len(self._runs))

                def attach_racecheck(self, checker):
                    self._rc = checker
                    touch(self._runs)
            """,
        )
        assert lint(tmp_path, "REP013") == []

    def test_wrong_lock_does_not_satisfy(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Counter:
                def __init__(self):
                    self._value = 0  # guarded-by: _lock
                    self._lock = make_lock()
                    self._other_mutex = make_lock()

                def wrong(self):
                    with self._other_mutex:
                        return self._value
            """,
        )
        assert rule_ids(lint(tmp_path, "REP013")) == {"REP013"}

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class Counter:
                def __init__(self):
                    self._value = 0  # guarded-by: _lock
                    self._lock = make_lock()

                def racy_by_design(self):
                    return self._value  # lint: disable=REP013  stat probe
            """,
        )
        assert lint(tmp_path, "REP013") == []


class TestStampLockIO:
    """REP014: no blocking I/O under a stamp-counter lock."""

    def test_flags_io_in_stamp_class_lock(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class StampCounter:
                def checkpoint(self, disk):
                    with self._lock:
                        disk.write_page(0, b"checkpoint")
                        return self._value
            """,
        )
        diags = lint(tmp_path, "REP014")
        assert rule_ids(diags) == {"REP014"}
        assert "write_page" in diags[0].message

    def test_flags_io_under_stamp_named_with(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(locks, wal):
                with locks.locked([("stamp_counter", "write")]):
                    wal.append_record(b"x")
            """,
        )
        assert rule_ids(lint(tmp_path, "REP014")) == {"REP014"}

    def test_flags_open_and_fsync(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(stamp_latch):
                with stamp_latch:
                    handle = open("/tmp/x", "wb")
                    handle.fsync()
            """,
        )
        assert len(lint(tmp_path, "REP014")) == 2

    def test_pure_latch_use_passes(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            class StampCounter:
                def next(self):
                    with self._lock:
                        stamp = self._value
                        self._value += 1
                        return stamp
            """,
        )
        assert lint(tmp_path, "REP014") == []

    def test_io_under_other_locks_not_this_rules_business(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(memo_lock, disk):
                with memo_lock:
                    disk.write_page(0, b"fine here")
            """,
        )
        assert lint(tmp_path, "REP014") == []

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(stamp_latch, disk):
                with stamp_latch:
                    disk.flush()  # lint: disable=REP014  recovery path
            """,
        )
        assert lint(tmp_path, "REP014") == []


class TestThreadingPrimitives:
    """REP015: threading primitives built only inside repro.concurrency."""

    def test_flags_direct_construction(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            import threading

            guard = threading.Lock()
            """,
        )
        diags = lint(tmp_path, "REP015")
        assert rule_ids(diags) == {"REP015"}
        assert "make_lock" in diags[0].message

    def test_flags_from_import_and_alias(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            import threading as t
            from threading import Condition as Cond

            a = t.RLock()
            b = Cond()
            """,
        )
        assert len(lint(tmp_path, "REP015")) == 2

    def test_concurrency_package_exempt(self, tmp_path):
        write(
            tmp_path,
            "concurrency/locks.py",
            """
            import threading

            guard = threading.Lock()
            """,
        )
        assert lint(tmp_path, "REP015") == []

    def test_tests_exempt(self, tmp_path):
        write(
            tmp_path,
            "tests/test_x.py",
            """
            import threading

            gate = threading.Event()
            """,
        )
        assert lint(tmp_path, "REP015") == []

    def test_thread_and_local_allowed(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            import threading

            worker = threading.Thread(target=print)
            slot = threading.local()
            """,
        )
        assert lint(tmp_path, "REP015") == []

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            import threading

            guard = threading.Lock()  # lint: disable=REP015  bootstrap
            """,
        )
        assert lint(tmp_path, "REP015") == []


class TestRealTree:
    def test_concurrency_rules_clean_over_src(self):
        assert REPO_SRC.is_dir()
        diags = run_lint([REPO_SRC], select=list(CONCURRENCY_RULES))
        assert diags == []

    def test_lock_order_graph_sees_the_real_edge(self):
        # The harness nests granule locks outside the structure latch;
        # flipping one nesting elsewhere must close a reportable cycle.
        # This guards against the rule silently collecting no edges.
        from repro.lint.concurrency import LockOrderRule
        from repro.lint.engine import load_context

        throughput = (
            REPO_SRC / "repro" / "concurrency" / "throughput.py"
        )
        ctx = load_context(throughput)
        edges = {}
        rule = LockOrderRule()
        rule._collect(ctx.tree, None, [], ctx, edges)
        assert any(
            "locks" in outer and "tree_latch" in inner
            for outer, inner in edges
        )
