"""Shared fixtures and helpers for the test suite.

Tests run against deliberately tiny trees (node sizes of a few hundred
bytes, fanouts of 4–20) so that splits, underflows, reinsertion, cleaning
cycles, and root collapses all occur within a few hundred operations.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest
from hypothesis import HealthCheck, settings

from repro.core.rum import RUMTree
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.rtree.geometry import Rect

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

#: Tiny node size used by most structural tests (classic fanout 11,
#: RUM fanout 8).
SMALL_NODE = 512


@pytest.fixture
def rstar_tree():
    return build_rstar_tree(node_size=SMALL_NODE)


@pytest.fixture
def fur_tree():
    return build_fur_tree(node_size=SMALL_NODE)


@pytest.fixture
def rum_tree() -> RUMTree:
    return build_rum_tree(node_size=SMALL_NODE)


@pytest.fixture
def rum_token_tree() -> RUMTree:
    return build_rum_tree(
        node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.5
    )


def random_point_rect(rng: random.Random) -> Rect:
    return Rect.from_point(rng.random(), rng.random())


def populate(tree, count: int, seed: int = 1) -> Dict[int, Rect]:
    """Insert ``count`` random point objects; returns oid -> rect."""
    rng = random.Random(seed)
    positions: Dict[int, Rect] = {}
    for oid in range(count):
        rect = random_point_rect(rng)
        positions[oid] = rect
        tree.insert_object(oid, rect)
    return positions


def random_window(rng: random.Random, side: float = 0.2) -> Rect:
    x = rng.uniform(0.0, 1.0 - side)
    y = rng.uniform(0.0, 1.0 - side)
    return Rect(x, y, x + side, y + side)


def brute_force_hits(
    positions: Dict[int, Rect], window: Rect, alive: Set[int] = None
) -> List[int]:
    """Oracle: oids whose rect intersects the window."""
    return sorted(
        oid
        for oid, rect in positions.items()
        if (alive is None or oid in alive) and rect.intersects(window)
    )


def assert_search_matches_oracle(
    tree,
    positions: Dict[int, Rect],
    alive: Set[int] = None,
    n_queries: int = 40,
    seed: int = 9,
    side: float = 0.25,
) -> None:
    """Compare tree.search against the brute-force oracle on many windows."""
    rng = random.Random(seed)
    for _ in range(n_queries):
        window = random_window(rng, side=side)
        got = sorted(oid for oid, _rect in tree.search(window))
        want = brute_force_hits(positions, window, alive)
        assert got == want, f"window {window}: got {got}, want {want}"


def random_walk(
    tree,
    positions: Dict[int, Rect],
    steps: int,
    seed: int = 5,
    distance: float = 0.1,
) -> None:
    """Apply ``steps`` random single-object updates through the tree."""
    rng = random.Random(seed)
    oids = list(positions)
    for _ in range(steps):
        oid = rng.choice(oids)
        old = positions[oid]
        x, y = old.center()
        nx = min(max(x + rng.uniform(-distance, distance), 0.0), 1.0)
        ny = min(max(y + rng.uniform(-distance, distance), 0.0), 1.0)
        new = Rect.from_point(nx, ny)
        tree.update_object(oid, old, new)
        positions[oid] = new


def leaf_entry_count(tree) -> int:
    return sum(len(node.entries) for node in tree.iter_leaf_nodes())
