"""Tests for the LSM-tiered disk-resident Update Memo.

Covers the run file format (CRC, fences, Bloom filters), the spill /
probe / compact lifecycle, manifest crash safety under fault injection,
and — the core contract — behavioural equivalence with the pure in-RAM
:class:`~repro.core.memo.UpdateMemo` under arbitrary operation
interleavings, including across a close/reopen cycle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memo import LATEST, OBSOLETE, UpdateMemo
from repro.core.memo_lsm import (
    MANIFEST_FILE,
    MANIFEST_TMP_FILE,
    RUN_SUFFIX,
    MemoCorruptionError,
    SpillingUpdateMemo,
    _Run,
)
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.iostats import IOStats
from repro.storage.wal import UM_ENTRY_BYTES


def tiny_memo(tmp_path, budget_entries=4, threshold=2, **kwargs):
    """A spilling memo whose RAM tier holds ``budget_entries`` entries."""
    return SpillingUpdateMemo(
        tmp_path,
        spill_budget=budget_entries * UM_ENTRY_BYTES,
        compact_threshold=threshold,
        **kwargs,
    )


class TestConstruction:
    def test_rejects_bad_budget_and_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            SpillingUpdateMemo(tmp_path, spill_budget=0)
        with pytest.raises(ValueError):
            SpillingUpdateMemo(tmp_path, compact_threshold=1)

    def test_empty_directory_starts_empty(self, tmp_path):
        memo = tiny_memo(tmp_path)
        assert len(memo) == 0
        assert memo._runs == []
        memo.close()


class TestSpillAndProbe:
    def test_budget_forces_runs_and_bounds_ram(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=4)
        for oid in range(40):
            memo.record_update(oid, oid + 1)
            assert memo.ram_size_bytes() <= 4 * UM_ENTRY_BYTES
        assert len(memo._runs) >= 1
        assert (tmp_path / MANIFEST_FILE).exists()
        memo.close()

    def test_probes_agree_across_tiers(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=4)
        for oid in range(30):
            memo.record_update(oid, oid + 1)
        for oid in range(30):
            assert memo.latest_stamp(oid) == oid + 1
            assert memo.check_status(oid, oid + 1) == LATEST
            assert memo.check_status(oid, 0) == OBSOLETE
            entry = memo.get(oid)
            assert entry.s_latest == oid + 1 and entry.n_old == 1
        assert memo.latest_stamp(999) is None
        memo.close()

    def test_n_old_aggregates_deltas_across_runs(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        for stamp in range(1, 8):
            memo.record_update(5, stamp)
            memo.record_update(100 + stamp, stamp)  # filler forcing spills
        assert len(memo._runs) >= 2
        assert memo.get(5).n_old == 7
        assert memo.get(5).s_latest == 7
        memo.close()

    def test_note_cleaned_drains_through_tombstone(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        memo.record_update(1, 10)
        memo.flush_ram()
        assert memo._runs  # the record now lives on disk
        memo.note_cleaned(1)
        assert memo.get(1) is None  # tombstone masks the spilled record
        assert memo.latest_stamp(1) is None
        with pytest.raises(KeyError):
            memo.note_cleaned(1)
        memo.close()

    def test_purge_phantoms_reaches_spilled_entries(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        for oid in range(10):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        purged = memo.purge_phantoms(6, exclude={2})
        assert purged == 4  # oids 0,1,3,4 (2 shielded, 5..9 recent)
        assert memo.get(0) is None
        assert memo.get(2).s_latest == 3
        assert memo.get(7).s_latest == 8
        memo.close()

    def test_miss_probe_rejected_by_bloom_without_io(self, tmp_path):
        stats = IOStats()
        memo = tiny_memo(tmp_path, budget_entries=4, stats=stats)
        for oid in range(0, 64, 2):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        reads_before = stats.memo_reads
        # Far outside every run's oid range: fence check alone rejects.
        assert memo.latest_stamp(10_000) is None
        assert stats.memo_reads == reads_before
        memo.close()


class TestRunFormat:
    def test_load_roundtrip(self, tmp_path):
        records = [(oid, oid * 7 + 1, 1, 0) for oid in range(500)]
        path = tmp_path / f"run-x{RUN_SUFFIX}"
        path.write_bytes(_Run.encode(records))
        run = _Run.load(path)
        assert run.count == 500
        assert list(run.iter_records()) == records
        for oid in (0, 170, 171, 499):
            assert run.probe_page(oid) == (oid, oid * 7 + 1, 1, 0)
        assert run.probe_page(1_000) is None
        run.close()

    @pytest.mark.parametrize("offset_frac", [0.0, 0.3, 0.6, 0.999])
    def test_any_bitflip_fails_crc(self, tmp_path, offset_frac):
        records = [(oid, oid + 1, 1, 0) for oid in range(300)]
        data = bytearray(_Run.encode(records))
        pos = min(int(len(data) * offset_frac), len(data) - 1)
        data[pos] ^= 0x01
        path = tmp_path / f"run-y{RUN_SUFFIX}"
        path.write_bytes(bytes(data))
        with pytest.raises(MemoCorruptionError):
            _Run.load(path)


class TestCompaction:
    def test_compaction_bounds_run_count(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2, threshold=2)
        for stamp in range(1, 200):
            memo.record_update(stamp % 17, stamp)
        # Size-tiering with threshold 2 keeps at most one run per tier.
        assert len(memo._runs) <= 8
        for oid in range(17):
            assert memo.get(oid) is not None
        memo.close()

    def test_oldest_merge_drops_tombstones(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        memo.record_update(1, 1)
        memo.record_update(2, 2)
        memo.flush_ram()
        memo.note_cleaned(1)  # tombstone over the spilled record
        memo.flush_ram()
        assert len(memo._runs) == 2
        memo._compact(0, len(memo._runs))
        assert len(memo._runs) == 1
        # The tombstone and its victim are both gone from the merged run.
        assert all(
            rec[0] != 1 for rec in memo._runs[0].iter_records()
        )
        assert memo.get(1) is None
        assert memo.get(2).s_latest == 2
        memo.close()


class TestReopen:
    def test_reopen_preserves_spilled_state(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=4)
        for oid in range(30):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()  # push the RAM remainder down before "crash"
        expected = sorted(memo.snapshot())
        memo.close()
        memo2 = tiny_memo(tmp_path, budget_entries=4)
        assert sorted(memo2.snapshot()) == expected
        memo2.close()

    def test_reopen_sweeps_unnamed_runs(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=4)
        for oid in range(20):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        memo.close()
        orphan = tmp_path / f"run-99999999{RUN_SUFFIX}"
        orphan.write_bytes(b"partial garbage never named by the manifest")
        (tmp_path / MANIFEST_TMP_FILE).write_bytes(b"torn manifest temp")
        memo2 = tiny_memo(tmp_path, budget_entries=4)
        assert not orphan.exists()
        assert not (tmp_path / MANIFEST_TMP_FILE).exists()
        memo2.close()

    def test_corrupt_manifest_detected(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2)
        for oid in range(10):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        memo.close()
        manifest = tmp_path / MANIFEST_FILE
        manifest.write_bytes(manifest.read_bytes()[:-5] + b"XXXXX")
        with pytest.raises(MemoCorruptionError):
            tiny_memo(tmp_path, budget_entries=2)

    def test_corrupt_named_run_detected(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        for oid in range(10):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        run_path = memo._runs[0].path
        memo.close()
        data = bytearray(run_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        run_path.write_bytes(bytes(data))
        with pytest.raises(MemoCorruptionError):
            tiny_memo(tmp_path, budget_entries=2, threshold=99)


class TestFaultInjection:
    def _filled(self, tmp_path, injector, threshold=99):
        memo = tiny_memo(
            tmp_path, budget_entries=2, threshold=threshold, faults=injector
        )
        for oid in range(8):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        return memo

    def test_crash_at_run_flush_loses_only_ram(self, tmp_path):
        injector = FaultInjector()
        memo = self._filled(tmp_path, injector)
        durable = sorted(memo.snapshot())
        injector.arm("memo.run_flush")
        memo.record_update(100, 50)
        with pytest.raises(SimulatedCrash):
            memo.flush_ram()
        memo2 = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        assert sorted(memo2.snapshot()) == durable  # oid 100 died in RAM
        memo2.close()

    def test_torn_run_flush_is_swept_orphan(self, tmp_path):
        injector = FaultInjector()
        memo = self._filled(tmp_path, injector)
        durable = sorted(memo.snapshot())
        n_runs = len(memo._runs)
        injector.arm("memo.run_flush", mode="torn")
        memo.record_update(100, 50)
        with pytest.raises(SimulatedCrash):
            memo.flush_ram()
        # The torn image exists but the manifest never named it.
        assert len(list(tmp_path.glob(f"*{RUN_SUFFIX}"))) == n_runs + 1
        memo2 = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        assert len(memo2._runs) == n_runs
        assert len(list(tmp_path.glob(f"*{RUN_SUFFIX}"))) == n_runs
        assert sorted(memo2.snapshot()) == durable
        memo2.close()

    def test_crash_at_manifest_keeps_previous(self, tmp_path):
        injector = FaultInjector()
        memo = self._filled(tmp_path, injector)
        durable = sorted(memo.snapshot())
        injector.arm("memo.manifest")
        memo.record_update(100, 50)
        with pytest.raises(SimulatedCrash):
            memo.flush_ram()
        assert (tmp_path / MANIFEST_TMP_FILE).exists()
        memo2 = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        assert sorted(memo2.snapshot()) == durable
        memo2.close()

    def test_crash_at_compact_keeps_inputs_live(self, tmp_path):
        injector = FaultInjector()
        memo = self._filled(tmp_path, injector, threshold=2)
        durable = sorted(memo.snapshot())
        injector.arm("memo.compact")
        with pytest.raises(SimulatedCrash):
            # Two same-tier runs exist after this flush: compaction runs
            # and dies after writing its output, before the manifest swap.
            memo.record_update(100, 50)
            memo.record_update(101, 51)
            memo.record_update(102, 52)
            memo.flush_ram()
        assert injector.fired == "memo.compact"
        memo2 = tiny_memo(tmp_path, budget_entries=2, threshold=99)
        merged = {oid: (s, n) for oid, s, n in memo2.snapshot()}
        for oid, s, n in durable:
            assert merged[oid] == (s, n)
        memo2.close()

    def test_corrupt_run_flush_detected_at_reopen(self, tmp_path):
        injector = FaultInjector()
        memo = tiny_memo(
            tmp_path, budget_entries=2, threshold=99, faults=injector
        )
        injector.arm("memo.run_flush", mode="corrupt")
        for oid in range(8):
            memo.record_update(oid, oid + 1)
        memo.flush_ram()
        memo.close()
        with pytest.raises(MemoCorruptionError):
            tiny_memo(tmp_path, budget_entries=2, threshold=99)


class TestAccounting:
    def test_run_io_charged_to_stats(self, tmp_path):
        stats = IOStats()
        memo = tiny_memo(tmp_path, budget_entries=2, stats=stats)
        for oid in range(20):
            memo.record_update(oid, oid + 1)
        assert stats.memo_writes > 0
        before = stats.memo_reads
        for oid in range(20):
            memo.latest_stamp(oid)
        assert stats.memo_reads > before
        assert stats.snapshot().memo_total > 0
        memo.close()

    def test_defer_spills_one_run_per_scope(self, tmp_path):
        memo = tiny_memo(tmp_path, budget_entries=2)
        with memo.defer_spills():
            for oid in range(50):
                memo.record_update(oid, oid + 1)
            runs_inside = len(memo._runs)
        assert runs_inside == 0  # nothing spilled mid-scope
        assert len(memo._runs) == 1  # exactly one run at scope exit
        memo.close()


# ---------------------------------------------------------------------------
# Behavioural equivalence with the in-RAM memo
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["update", "clean", "purge", "probe"]),
        st.integers(min_value=0, max_value=24),
    ),
    max_size=150,
)


class TestDifferentialEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ops=_OPS, budget_entries=st.integers(min_value=1, max_value=6))
    def test_spill_probe_compact_recover_equivalence(
        self, tmp_path_factory, ops, budget_entries
    ):
        """Any interleaving of the paper's memo operations produces
        bit-identical behaviour on the spilling memo and the in-RAM
        memo — including CheckStatus on every (oid, stamp) pair seen,
        the full snapshot, and the state after a close/reopen cycle."""
        tmp = tmp_path_factory.mktemp("memolsm")
        spill = SpillingUpdateMemo(
            tmp,
            spill_budget=budget_entries * UM_ENTRY_BYTES,
            compact_threshold=2,
        )
        ram = UpdateMemo()
        stamp = 0
        for kind, oid in ops:
            if kind == "update":
                stamp += 1
                spill.record_update(oid, stamp)
                ram.record_update(oid, stamp)
            elif kind == "clean":
                entry = ram.get(oid)
                if entry is not None:
                    spill.note_cleaned(oid)
                    ram.note_cleaned(oid)
            elif kind == "purge":
                threshold = max(0, stamp - 5)
                assert spill.purge_phantoms(threshold) == ram.purge_phantoms(
                    threshold
                )
            else:
                assert spill.latest_stamp(oid) == ram.latest_stamp(oid)
                assert spill.check_status(oid, stamp) == ram.check_status(
                    oid, stamp
                )
        assert sorted(spill.snapshot()) == sorted(ram.snapshot())
        assert len(spill) == len(ram)
        assert spill.total_n_old() == ram.total_n_old()
        assert spill.size_bytes() == ram.size_bytes()
        for oid in range(25):
            assert spill.latest_stamp(oid) == ram.latest_stamp(oid)
            a, b = spill.get(oid), ram.get(oid)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.s_latest, a.n_old) == (b.s_latest, b.n_old)
        # Crash model: RAM dies, spilled runs survive.  Push RAM down
        # first so the reopened memo must equal the full state.
        spill.flush_ram()
        spill.close()
        reopened = SpillingUpdateMemo(
            tmp,
            spill_budget=budget_entries * UM_ENTRY_BYTES,
            compact_threshold=2,
        )
        assert sorted(reopened.snapshot()) == sorted(ram.snapshot())
        reopened.close()

    @settings(max_examples=20, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),
                st.integers(min_value=1, max_value=10**6),
                st.integers(min_value=-2, max_value=4),
            ),
            max_size=40,
            unique_by=lambda e: e[0],
        )
    )
    def test_restore_matches_in_ram_memo(self, tmp_path_factory, entries):
        tmp = tmp_path_factory.mktemp("memolsm-restore")
        spill = SpillingUpdateMemo(
            tmp, spill_budget=3 * UM_ENTRY_BYTES, compact_threshold=2
        )
        ram = UpdateMemo()
        spill.restore(iter(entries))
        ram.restore(iter(entries))
        assert sorted(spill.snapshot()) == sorted(ram.snapshot())
        assert spill.ram_size_bytes() <= 3 * UM_ENTRY_BYTES
        spill.close()
