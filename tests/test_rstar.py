"""Tests for the R*-tree baseline and its top-down update path."""

import random

import pytest

from conftest import assert_search_matches_oracle, populate, random_walk
from repro.rtree.geometry import Rect
from repro.rtree.rstar import ObjectNotFoundError


class TestObjectProtocol:
    def test_insert_and_search(self, rstar_tree):
        rstar_tree.insert_object(1, Rect.from_point(0.3, 0.3))
        assert rstar_tree.search(Rect(0.2, 0.2, 0.4, 0.4)) == [
            (1, Rect.from_point(0.3, 0.3))
        ]

    def test_update_moves_object(self, rstar_tree):
        old = Rect.from_point(0.1, 0.1)
        new = Rect.from_point(0.9, 0.9)
        rstar_tree.insert_object(1, old)
        rstar_tree.update_object(1, old, new)
        assert rstar_tree.search(Rect(0.0, 0.0, 0.2, 0.2)) == []
        assert rstar_tree.search(Rect(0.8, 0.8, 1.0, 1.0)) == [(1, new)]

    def test_update_missing_raises(self, rstar_tree):
        with pytest.raises(ObjectNotFoundError):
            rstar_tree.update_object(
                99, Rect.from_point(0.5, 0.5), Rect.from_point(0.6, 0.6)
            )

    def test_delete_object(self, rstar_tree):
        rect = Rect.from_point(0.4, 0.4)
        rstar_tree.insert_object(1, rect)
        rstar_tree.delete_object(1, rect)
        assert rstar_tree.search(Rect(0, 0, 1, 1)) == []

    def test_delete_missing_raises(self, rstar_tree):
        with pytest.raises(ObjectNotFoundError):
            rstar_tree.delete_object(1, Rect.from_point(0.5, 0.5))

    def test_lookup(self, rstar_tree):
        rect = Rect.from_point(0.25, 0.75)
        rstar_tree.insert_object(5, rect)
        assert rstar_tree.lookup(5, rect) == rect
        assert rstar_tree.lookup(5, Rect.from_point(0.1, 0.1)) is None


class TestTopDownUpdateWorkload:
    def test_long_random_walk_stays_correct(self, rstar_tree):
        positions = populate(rstar_tree, 150, seed=30)
        random_walk(rstar_tree, positions, steps=800, seed=31, distance=0.15)
        assert_search_matches_oracle(rstar_tree, positions)
        rstar_tree.check_invariants()
        # Exactly one entry per object survives the churn.
        assert rstar_tree.num_leaf_entries() == 150

    def test_update_is_delete_plus_insert_cost(self, rstar_tree):
        """The top-down update pays IO_search + 3 (Section 4.2.1): at
        least one read for the search, one write for the delete, one
        read + one write for the insert."""
        positions = populate(rstar_tree, 200, seed=32)
        stats = rstar_tree.stats
        rng = random.Random(33)
        for oid in list(positions)[:30]:
            old = positions[oid]
            new = Rect.from_point(rng.random(), rng.random())
            before = stats.snapshot()
            rstar_tree.update_object(oid, old, new)
            delta = stats.snapshot() - before
            positions[oid] = new
            assert delta.leaf_reads >= 2  # deletion search + insert read
            assert delta.leaf_writes >= 2  # delete write + insert write

    def test_search_cost_grows_with_extent(self):
        """Wider entry MBRs contain fewer leaf MBRs (Lemma 2), so the
        deletion search must visit more paths as extents grow."""
        from repro.factory import build_rstar_tree

        costs = {}
        for extent in (0.0, 0.05):
            tree = build_rstar_tree(node_size=512)
            rng = random.Random(34)
            positions = {}
            for oid in range(250):
                rect = Rect.from_center(
                    0.1 + 0.8 * rng.random(), 0.1 + 0.8 * rng.random(), extent
                )
                positions[oid] = rect
                tree.insert_object(oid, rect)
            before = tree.stats.snapshot()
            for oid in list(positions)[:60]:
                old = positions[oid]
                new = Rect.from_center(
                    0.1 + 0.8 * rng.random(), 0.1 + 0.8 * rng.random(), extent
                )
                tree.update_object(oid, old, new)
                positions[oid] = new
            costs[extent] = (
                tree.stats.snapshot() - before
            ).leaf_total
        assert costs[0.05] > costs[0.0]
