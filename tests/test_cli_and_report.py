"""Tests for the experiment CLI and the plain-text reporting helpers."""

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.report import (
    format_table,
    format_value,
    print_result,
    rows_by,
    series_table,
)


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.0) == "0"
        assert format_value(0.12345) == "0.123"
        assert format_value(12.345) == "12.3"
        assert format_value(1234.5) == "1,234"

    def test_ints(self):
        assert format_value(7) == "7"
        assert format_value(12345) == "12,345"

    def test_strings(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["a", "bb"], [[1, 2.5], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # Right-aligned: values end at the same column as the header.
        assert lines[0].endswith("bb")

    def test_empty_rows(self):
        text = format_table(["x", "y"], [])
        assert "x" in text and "y" in text


def _result():
    result = ExperimentResult("Exp", "demo")
    result.rows = [
        {"x": 1, "tree": "A", "io": 2.0},
        {"x": 1, "tree": "B", "io": 3.0},
        {"x": 2, "tree": "A", "io": 2.5},
        {"x": 2, "tree": "B", "io": 3.5},
    ]
    return result


class TestSeriesTable:
    def test_pivot_shape(self):
        text = series_table(_result(), "x", "tree", "io")
        lines = text.splitlines()
        assert lines[0].split() == ["x", "A", "B"]
        assert lines[2].split() == ["1", "2.000", "3.000"]
        assert lines[3].split() == ["2", "2.500", "3.500"]

    def test_missing_cells_blank(self):
        result = _result()
        del result.rows[3]
        text = series_table(result, "x", "tree", "io")
        assert "2.500" in text

    def test_rows_by(self):
        grouped = rows_by(_result(), "tree")
        assert set(grouped) == {"A", "B"}
        assert len(grouped["A"]) == 2

    def test_column_accessor(self):
        assert _result().column("io") == [2.0, 3.0, 2.5, 3.5]

    def test_print_result(self, capsys):
        print_result(_result(), ["x", "tree", "io"])
        out = capsys.readouterr().out
        assert "Exp" in out and "demo" in out and "tree" in out


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig10", "fig16", "table2", "extensions"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nope"])

    def test_run_one(self, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "option" in out
        assert "III" in out
        assert "finished" in out

    def test_run_cost(self, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "measured_io" in out
        assert "memo-based" in out
