"""Tests for the project linter (``repro.lint``).

Every rule gets a *positive* fixture (a file arranged in the directory
shape the rule scopes on, containing the violation) and a *suppressed*
or *exempt* negative.  Fixtures live under ``tmp_path`` — the rules
scope by path segment, so ``tmp_path/experiments/x.py`` is treated
exactly like ``src/repro/experiments/x.py``.
"""

from __future__ import annotations

import pathlib
import textwrap

import pytest

from repro.lint import SYNTAX_ERROR_ID, all_rules, run_lint
from repro.lint.cli import main
from repro.lint.rules import rule_catalog

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

ALL_RULE_IDS = (
    "REP001",
    "REP002",
    "REP003",
    "REP004",
    "REP005",
    "REP006",
    "REP007",
    "REP008",
    "REP009",
    "REP010",
    "REP011",
    "REP012",
    "REP013",
    "REP014",
    "REP015",
)


def write(root: pathlib.Path, rel: str, body: str) -> pathlib.Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return path


def lint(root: pathlib.Path, *select: str):
    return run_lint([root], select=list(select) or None)


def rule_ids(diagnostics) -> set:
    return {d.rule_id for d in diagnostics}


class TestRegistry:
    def test_all_rules_registered(self):
        assert tuple(all_rules()) == ALL_RULE_IDS

    def test_catalog_has_summaries(self):
        catalog = rule_catalog()
        assert set(catalog) == set(ALL_RULE_IDS)
        assert all(catalog.values())


class TestBroadExcept:
    BAD = """
        def f():
            try:
                g()
            except BaseException:
                pass
    """

    def test_flags_base_exception(self, tmp_path):
        write(tmp_path, "core/x.py", self.BAD)
        diags = lint(tmp_path, "REP001")
        assert rule_ids(diags) == {"REP001"}

    def test_flags_bare_and_exception_and_tuple(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            try:
                g()
            except:
                pass
            try:
                g()
            except Exception:
                pass
            try:
                g()
            except (ValueError, BaseException):
                pass
            """,
        )
        diags = lint(tmp_path, "REP001")
        assert len(diags) == 3

    def test_crashsim_and_faults_exempt(self, tmp_path):
        write(tmp_path, "crashsim/h.py", self.BAD)
        write(tmp_path, "storage/faults.py", self.BAD)
        assert lint(tmp_path, "REP001") == []

    def test_specific_exceptions_pass(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            try:
                g()
            except ValueError:
                pass
            """,
        )
        assert lint(tmp_path, "REP001") == []

    def test_suppression_comment(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            try:
                g()
            # lint: disable=REP001
            except BaseException:
                raise
            """,
        )
        assert lint(tmp_path, "REP001") == []


class TestBufferBypass:
    BAD = """
        def probe(disk):
            return disk.read_page(0)
    """

    def test_flags_in_tree_code(self, tmp_path):
        write(tmp_path, "rtree/m.py", self.BAD)
        write(tmp_path, "core/n.py", "def f(d):\n    d.write_page(1, b'')\n")
        diags = lint(tmp_path, "REP002")
        assert len(diags) == 2

    def test_storage_and_persistence_exempt(self, tmp_path):
        write(tmp_path, "storage/m.py", self.BAD)
        write(tmp_path, "core/persistence.py", self.BAD)
        write(tmp_path, "crashsim/m.py", self.BAD)
        assert lint(tmp_path, "REP002") == []

    def test_other_packages_not_scoped(self, tmp_path):
        write(tmp_path, "workload/m.py", self.BAD)
        assert lint(tmp_path, "REP002") == []


class TestCodecLayout:
    NODE = """
        NODE_HEADER_BYTES = 32
        INDEX_ENTRY_BYTES = 40
        CLASSIC_LEAF_ENTRY_BYTES = 40
        RUM_LEAF_ENTRY_BYTES = 56
    """

    def test_size_mismatch_flagged(self, tmp_path):
        write(tmp_path, "rtree/node.py", self.NODE)
        # 4d2q = 48 bytes, not the declared 56.
        write(tmp_path, "storage/codec.py", '_RUM_FMT = "4d2q"\n')
        diags = lint(tmp_path, "REP003")
        assert len(diags) == 1
        assert "48" in diags[0].message and "56" in diags[0].message

    def test_field_count_mismatch_flagged(self, tmp_path):
        write(tmp_path, "rtree/node.py", self.NODE)
        # 6d2i packs the right 56 bytes but 8 fields instead of 7.
        write(tmp_path, "storage/codec.py", '_RUM_FMT = "6d2i"\n')
        diags = lint(tmp_path, "REP003")
        assert len(diags) == 1
        assert "fields" in diags[0].message

    def test_invalid_format_flagged(self, tmp_path):
        write(tmp_path, "storage/codec.py", '_INDEX_FMT = "4z"\n')
        diags = lint(tmp_path, "REP003")
        assert len(diags) == 1
        assert "not a valid struct format" in diags[0].message

    def test_correct_layout_passes(self, tmp_path):
        write(tmp_path, "rtree/node.py", self.NODE)
        write(
            tmp_path,
            "storage/codec.py",
            """
            _HEADER_FMT = "BxHxxxxqqI4x"
            _INDEX_FMT = "4dq"
            _CLASSIC_FMT = "4dq"
            _RUM_FMT = "4d3q"
            """,
        )
        assert lint(tmp_path, "REP003") == []

    def test_canonical_fallback_without_node_module(self, tmp_path):
        # No node.py in the fixture: the canonical paper sizes apply.
        write(tmp_path, "storage/codec.py", '_CLASSIC_FMT = "4dqq"\n')
        diags = lint(tmp_path, "REP003")
        assert len(diags) == 1


class TestDeterminism:
    def test_wall_clock_and_unseeded_rng_flagged(self, tmp_path):
        write(
            tmp_path,
            "experiments/exp.py",
            """
            import random
            import time

            def run():
                t = time.time()
                rng = random.Random()
                x = random.random()
                return t, rng, x
            """,
        )
        diags = lint(tmp_path, "REP004")
        assert len(diags) == 3

    def test_from_import_and_datetime_now(self, tmp_path):
        write(
            tmp_path,
            "workload/gen.py",
            """
            import datetime
            from time import time

            def run():
                return time(), datetime.datetime.now()
            """,
        )
        diags = lint(tmp_path, "REP004")
        assert len(diags) == 2

    def test_seeded_rng_and_cpu_clocks_pass(self, tmp_path):
        write(
            tmp_path,
            "experiments/exp.py",
            """
            import random
            import time

            def run(seed):
                rng = random.Random(seed)
                random.seed(0)
                return rng.random(), time.perf_counter()
            """,
        )
        assert lint(tmp_path, "REP004") == []

    def test_outside_scope_not_flagged(self, tmp_path):
        write(tmp_path, "core/x.py", "import time\nt = time.time()\n")
        assert lint(tmp_path, "REP004") == []


class TestMutableDefault:
    def test_flags_literals_and_ctors(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            def f(a=[], b={}, c=dict(), *, d=set()):
                return a, b, c, d
            """,
        )
        diags = lint(tmp_path, "REP005")
        assert len(diags) == 4

    def test_none_default_passes(self, tmp_path):
        write(tmp_path, "core/x.py", "def f(a=None, b=()):\n    return a, b\n")
        assert lint(tmp_path, "REP005") == []

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            "def f(a=[]):  # lint: disable=REP005\n    return a\n",
        )
        assert lint(tmp_path, "REP005") == []


class TestNoPrint:
    def test_flags_library_print(self, tmp_path):
        write(tmp_path, "storage/x.py", "print('hi')\n")
        assert len(lint(tmp_path, "REP006")) == 1

    def test_exempt_locations(self, tmp_path):
        write(tmp_path, "experiments/report.py", "print('table')\n")
        write(tmp_path, "core/__main__.py", "print('usage')\n")
        write(tmp_path, "core/cli.py", "print('usage')\n")
        assert lint(tmp_path, "REP006") == []


class TestObsPropagation:
    def test_flags_missing_attach_obs(self, tmp_path):
        write(
            tmp_path,
            "storage/thing.py",
            """
            class Thing:
                def __init__(self):
                    self._obs_reads = None
            """,
        )
        diags = lint(tmp_path, "REP007")
        assert len(diags) == 1
        assert "attach_obs" in diags[0].message

    def test_attach_obs_satisfies(self, tmp_path):
        write(
            tmp_path,
            "core/thing.py",
            """
            class Thing:
                def __init__(self):
                    self._obs_reads = None

                def attach_obs(self, obs):
                    self._obs_reads = None
            """,
        )
        assert lint(tmp_path, "REP007") == []

    def test_outside_scope_not_flagged(self, tmp_path):
        write(
            tmp_path,
            "workload/thing.py",
            """
            class Thing:
                def __init__(self):
                    self._obs_reads = None
            """,
        )
        assert lint(tmp_path, "REP007") == []


class TestNoAssert:
    def test_flags_runtime_assert(self, tmp_path):
        write(tmp_path, "core/x.py", "def f(x):\n    assert x > 0\n")
        assert len(lint(tmp_path, "REP008")) == 1

    def test_test_files_exempt(self, tmp_path):
        write(tmp_path, "core/test_x.py", "def f(x):\n    assert x > 0\n")
        write(tmp_path, "core/conftest.py", "assert True\n")
        assert lint(tmp_path, "REP008") == []

    def test_file_wide_suppression(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            # lint: disable-file=REP008
            def f(x):
                assert x > 0
                assert x < 9
            """,
        )
        assert lint(tmp_path, "REP008") == []


class TestHotPathKernel:
    HOT_BAD = """
        HOT_PATH = True

        def search(entries, window):
            return [e for e in entries if e.rect.intersects(window)]

        def choose(entries, rect):
            best = None
            for entry in entries:
                delta = entry.rect.enlargement(rect)
                if best is None or delta < best:
                    best = delta
            return best
    """

    def test_flags_predicates_in_loops_on_hot_modules(self, tmp_path):
        write(tmp_path, "rtree/x.py", self.HOT_BAD)
        diags = lint(tmp_path, "REP009")
        assert len(diags) == 2
        assert {"intersects", "enlargement"} == {
            d.message.split("'")[1].strip(".()")
            for d in diags
        }

    def test_storage_scope_and_while_loops(self, tmp_path):
        write(
            tmp_path,
            "storage/x.py",
            """
            HOT_PATH = True

            def drain(queue, window):
                while queue:
                    if queue.pop().contains(window):
                        break
            """,
        )
        assert len(lint(tmp_path, "REP009")) == 1

    def test_unmarked_module_not_flagged(self, tmp_path):
        write(
            tmp_path,
            "rtree/cold.py",
            """
            def search(entries, window):
                return [e for e in entries if e.rect.intersects(window)]
            """,
        )
        assert lint(tmp_path, "REP009") == []

    def test_outside_scope_not_flagged(self, tmp_path):
        write(tmp_path, "experiments/x.py", self.HOT_BAD)
        assert lint(tmp_path, "REP009") == []

    def test_call_outside_loop_allowed(self, tmp_path):
        write(
            tmp_path,
            "rtree/x.py",
            """
            HOT_PATH = True

            def probe(rect, window):
                return rect.intersects(window)
            """,
        )
        assert lint(tmp_path, "REP009") == []

    def test_suppression(self, tmp_path):
        write(
            tmp_path,
            "rtree/x.py",
            """
            HOT_PATH = True

            def one_probe_per_node(nodes, window):
                out = []
                for node in nodes:
                    # One containment probe per *node*, not per entry.
                    if node.mbr.contains(window):  # lint: disable=REP009
                        out.append(node)
                return out
            """,
        )
        assert lint(tmp_path, "REP009") == []


class TestEngine:
    def test_syntax_error_reported_not_crashing(self, tmp_path):
        write(tmp_path, "core/broken.py", "def f(:\n")
        diags = lint(tmp_path)
        assert [d.rule_id for d in diags] == [SYNTAX_ERROR_ID]

    def test_unknown_rule_id_raises(self, tmp_path):
        write(tmp_path, "core/x.py", "x = 1\n")
        with pytest.raises(ValueError, match="REP999"):
            run_lint([tmp_path], select=["REP999"])

    def test_diagnostics_sorted_and_rendered(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            "print('b')\ndef f(x):\n    assert x\n",
        )
        diags = lint(tmp_path)
        assert [d.line for d in diags] == sorted(d.line for d in diags)
        rendered = diags[0].render()
        assert "x.py:1:0: REP006" in rendered

    def test_pycache_skipped(self, tmp_path):
        write(tmp_path, "core/__pycache__/junk.py", "assert False\n")
        assert lint(tmp_path) == []


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "core/x.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_violations_exit_one(self, tmp_path, capsys):
        write(tmp_path, "core/x.py", "def f(x):\n    assert x\n")
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "REP008" in captured.out
        assert "1 problem(s) found" in captured.err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write(tmp_path, "core/x.py", "x = 1\n")
        assert main([str(tmp_path), "--select", "NOPE"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_select_and_ignore(self, tmp_path):
        write(tmp_path, "core/x.py", "def f(x):\n    assert x\nprint(1)\n")
        assert main([str(tmp_path), "--select", "REP006"]) == 1
        assert main([str(tmp_path), "--ignore", "REP006,REP008"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out


class TestObsBoundInstruments:
    def test_flags_registry_call_outside_attach(self, tmp_path):
        write(
            tmp_path,
            "rtree/x.py",
            """
            def hot(self, reg):
                reg.counter("tree.queries").inc()
            """,
        )
        diags = lint(tmp_path, "REP010")
        assert rule_ids(diags) == {"REP010"}

    def test_flags_default_obs_lookup(self, tmp_path):
        write(
            tmp_path,
            "core/x.py",
            """
            from repro.obs import get_default_obs

            def hot(self):
                obs = get_default_obs()
                return obs
            """,
        )
        diags = lint(tmp_path, "REP010")
        assert rule_ids(diags) == {"REP010"}

    def test_attach_obs_binding_is_allowed(self, tmp_path):
        write(
            tmp_path,
            "storage/x.py",
            """
            class Pool:
                def attach_obs(self, obs):
                    reg = obs.registry
                    self._c_reads = reg.counter("disk.page_reads")

                def hot(self):
                    if self._c_reads is not None:
                        self._c_reads.inc()
            """,
        )
        assert lint(tmp_path, "REP010") == []

    def test_other_segments_exempt(self, tmp_path):
        write(
            tmp_path,
            "experiments/x.py",
            """
            def render(reg):
                return reg.counter("tables").value
            """,
        )
        assert lint(tmp_path, "REP010") == []


class TestRealTree:
    def test_project_source_is_clean(self):
        assert REPO_SRC.is_dir()
        assert run_lint([REPO_SRC]) == []
