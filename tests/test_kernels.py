"""Property tests pinning the kernel backends' bit-identical contract.

The numpy backend must reproduce the scalar reference exactly — same
indices, same floats to the last bit — across random geometry and the
degenerate shapes R-trees actually produce (points, zero-width and
zero-height segments, rectangles sharing edges).  Both input
representations are exercised: *entry-born* list-column blocks and
*buffer-born* blocks decoded from a packed page image, including sizes on
both sides of the numpy backend's vectorisation cutoffs (below them the
numpy backend delegates to the scalar code; above them it must vectorise
to the identical answer).

Floats are compared by their IEEE-754 bit patterns (``struct.pack``), not
``==``: the contract is bit-identity, and ``==`` would let ``-0.0`` pass
for ``0.0``.

The final test pins the query mirror (:mod:`repro.rtree.mirror`) to the
tree traversal it replaces: identical result multisets *and* identical
counted leaf I/O on randomised update/query workloads.
"""

from __future__ import annotations

import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kernels._python as pyk
from repro.rtree.geometry import Rect
from repro.rtree.node import LeafEntry

try:
    import repro.kernels._numpy as npk
except ImportError:  # numpy not installed: only the mirror tests run
    npk = None

needs_numpy = pytest.mark.skipif(
    npk is None, reason="numpy backend not importable"
)

# Shared coordinate pool so touching edges, shared corners, and exact
# duplicates occur constantly, mixed with arbitrary finite floats.
_COORD = st.one_of(
    st.sampled_from([-2.0, -1.0, -0.5, -0.0, 0.0, 0.25, 0.5, 1.0, 2.0]),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)

#: (xmin, ymin, xmax, ymax); degenerate (point/segment) rects included.
_RECT = st.tuples(_COORD, _COORD, _COORD, _COORD).map(
    lambda t: (
        min(t[0], t[2]),
        min(t[1], t[3]),
        max(t[0], t[2]),
        max(t[1], t[3]),
    )
)

# Sizes straddle the numpy backend's vectorisation cutoffs (64 for the
# linear split scans, 16 for the quadratic seed search).
_RECTS = st.lists(_RECT, min_size=1, max_size=80)

_HEADER = 32
_STRIDE = 56  # RUM leaf layout: 4 float64 coords + id/stamp words


def _entries(rects):
    return [
        LeafEntry(Rect(x1, y1, x2, y2), oid=i, stamp=i)
        for i, (x1, y1, x2, y2) in enumerate(rects)
    ]


def _page_image(rects) -> bytes:
    """A packed entry region shaped like a real RUM leaf page."""
    parts = [b"\x00" * _HEADER]
    pad = b"\x00" * (_STRIDE - 32)
    for x1, y1, x2, y2 in rects:
        parts.append(struct.pack("<4d", x1, y1, x2, y2) + pad)
    return b"".join(parts)


def _blocks(rects):
    """Every (backend, block) pair that must agree on ``rects``."""
    page = _page_image(rects)
    n = len(rects)
    pairs = [
        (pyk, pyk.block_from_entries(_entries(rects))),
        (pyk, pyk.block_from_buffer(page, _HEADER, n, _STRIDE)),
    ]
    if npk is not None:
        pairs.append((npk, npk.block_from_entries(_entries(rects))))
        pairs.append((npk, npk.block_from_buffer(page, _HEADER, n, _STRIDE)))
    return pairs


def _bits(values):
    """Bit-pattern image of a float list (exact comparison, -0.0 != 0.0)."""
    return [struct.pack("<d", v) for v in values]


def _assert_all_equal(results, label):
    reference = results[0]
    for other in results[1:]:
        assert other == reference, label


@needs_numpy
@given(rects=_RECTS)
@settings(max_examples=60, deadline=None)
def test_block_rows_and_areas_identical(rects):
    rows = [
        [tuple(r) for r in impl.block_rows(block)]
        for impl, block in _blocks(rects)
    ]
    _assert_all_equal(rows, "block_rows")
    gets = [
        [impl.block_get(block, i) for i in range(len(rects))]
        for impl, block in _blocks(rects)
    ]
    _assert_all_equal(gets, "block_get")
    area_bits = [
        _bits(impl.areas(block)) for impl, block in _blocks(rects)
    ]
    _assert_all_equal(area_bits, "areas")


@needs_numpy
@given(rects=_RECTS, window=_RECT)
@settings(max_examples=60, deadline=None)
def test_predicate_masks_identical(rects, window):
    wx1, wy1, wx2, wy2 = window
    inter = [
        impl.intersect_indices(block, wx1, wy1, wx2, wy2)
        for impl, block in _blocks(rects)
    ]
    _assert_all_equal(inter, "intersect_indices")
    contain = [
        impl.contain_indices(block, wx1, wy1, wx2, wy2)
        for impl, block in _blocks(rects)
    ]
    _assert_all_equal(contain, "contain_indices")


@needs_numpy
@given(rects=_RECTS, point=st.tuples(_COORD, _COORD))
@settings(max_examples=60, deadline=None)
def test_min_dist_sq_identical(rects, point):
    x, y = point
    dists = [
        _bits(impl.min_dist_sq(block, x, y))
        for impl, block in _blocks(rects)
    ]
    _assert_all_equal(dists, "min_dist_sq")


@needs_numpy
@given(rects=_RECTS, new=_RECT, data=st.data())
@settings(max_examples=60, deadline=None)
def test_enlargements_and_overlap_delta_identical(rects, new, data):
    rx1, ry1, rx2, ry2 = new
    enl = []
    for impl, block in _blocks(rects):
        e, a = impl.enlargements(block, rx1, ry1, rx2, ry2)
        enl.append((_bits(e), _bits(a)))
    _assert_all_equal(enl, "enlargements")
    i = data.draw(st.integers(min_value=0, max_value=len(rects) - 1))
    ex1, ey1, ex2, ey2 = rects[i]
    nx1, ny1 = min(ex1, rx1), min(ey1, ry1)
    nx2, ny2 = max(ex2, rx2), max(ey2, ry2)
    deltas = [
        _bits([impl.overlap_delta(block, i, nx1, ny1, nx2, ny2)])
        for impl, block in _blocks(rects)
    ]
    _assert_all_equal(deltas, "overlap_delta")


@needs_numpy
@given(rects=st.lists(_RECT, min_size=2, max_size=80), data=st.data())
@settings(max_examples=60, deadline=None)
def test_split_scans_identical(rects, data):
    n = len(rects)
    min_entries = data.draw(st.integers(min_value=1, max_value=n // 2))
    dim = data.draw(st.integers(min_value=0, max_value=3))
    orders = [
        impl.argsort(block, dim) for impl, block in _blocks(rects)
    ]
    _assert_all_equal(orders, "argsort")
    order = orders[0]
    outcomes = []
    for impl, block in _blocks(rects):
        margin, prefix, suffix = impl.split_tables(
            block, order, min_entries
        )
        overlaps, combined = impl.distribution_scan(
            prefix, suffix, min_entries
        )
        outcomes.append(
            (_bits([margin]), _bits(overlaps), _bits(combined))
        )
    _assert_all_equal(outcomes, "split_tables/distribution_scan")


@needs_numpy
@given(rects=st.lists(_RECT, min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_quadratic_seeds_identical(rects):
    seeds = [
        impl.quadratic_seeds(block) for impl, block in _blocks(rects)
    ]
    _assert_all_equal(seeds, "quadratic_seeds")


@needs_numpy
def test_all_ties_degenerate_keeps_historical_seeds():
    # Identical rectangles everywhere: every pairing wastes the same
    # (negative) area, the scalar threshold never fires, and both
    # backends must answer (0, 0) — on both representations, above and
    # below the vectorisation cutoff.
    for n in (3, 32):
        rects = [(0.0, 0.0, 1.0, 1.0)] * n
        for impl, block in _blocks(rects):
            assert impl.quadratic_seeds(block) == (0, 0)


# ---------------------------------------------------------------------------
# Query mirror vs. tree traversal
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 17, 88])
def test_mirror_matches_traversal_results_and_io(seed):
    """The grid mirror must return the same entries as a tree walk and
    charge exactly the same counted leaf reads, query by query."""
    from repro.experiments.harness import make_tree
    from repro.rtree.base import MIRROR_QUERY_STREAK

    rng = random.Random(seed)
    tree = make_tree("rum_touch", node_size=2048)
    rects = {}
    for oid in range(800):
        x, y = rng.random() * 0.99, rng.random() * 0.99
        rects[oid] = Rect(x, y, x + 0.004, y + 0.004)
        tree.insert_object(oid, rects[oid])
    for oid in range(0, 800, 5):
        x, y = rng.random() * 0.99, rng.random() * 0.99
        new = Rect(x, y, x + 0.004, y + 0.004)
        tree.update_object(oid, rects[oid], new)
        rects[oid] = new

    side = 0.02
    windows = [
        Rect(x, y, x + side, y + side)
        for x, y in (
            (rng.random() * (1 - side), rng.random() * (1 - side))
            for _ in range(40)
        )
    ]
    stats = tree.buffer.stats

    def measure(window):
        before = stats.leaf_reads
        found = tree.search(window)
        return sorted(found), stats.leaf_reads - before

    truth = []
    for window in windows:
        tree._mirror = None
        tree._mirror_streak = 0
        tree._mirror_streak_version = -1
        truth.append(measure(window))

    tree._mirror = None
    tree._mirror_streak = 0
    tree._mirror_streak_version = -1
    for window in windows[:MIRROR_QUERY_STREAK]:
        tree.search(window)
    assert tree._mirror is not None, "mirror not built after streak"
    for window, (expect_results, expect_io) in zip(windows, truth):
        got_results, got_io = measure(window)
        assert got_results == expect_results
        assert got_io == expect_io
        assert tree._mirror is not None

    # Any mutation must invalidate the mirror before the next search.
    oid = 1
    x, y = rng.random() * 0.99, rng.random() * 0.99
    tree.update_object(oid, rects[oid], Rect(x, y, x + 0.004, y + 0.004))
    assert tree._mirror.version != tree.buffer.version
    tree.search(windows[0])
    assert tree._mirror is None
