"""Crash-consistency suite: fault injection, the crash matrix, and the
regression tests for the durable-store bugfixes.

The heavyweight pieces live in :mod:`repro.crashsim`; this file (a)
unit-tests the injection machinery and the page checksums, (b) runs the
full crash matrix — every registered fault point crossed with every
recovery option — and (c) pins each fixed bug with a test that fails on
the pre-fix code.
"""

import os
import pathlib

import pytest

from repro.core.recovery import recover_option_ii
from repro.crashsim import (
    FULL_WINDOW,
    CrashScenario,
    WorkloadConfig,
    default_scenarios,
    run_scenario,
    verify_pages,
)
from repro.factory import build_rum_tree
from repro.obs import ListEventSink, Observability
from repro.rtree.geometry import Rect
from repro.storage.codec import (
    CHECKSUM_OFFSET,
    NodeCodec,
    PageChecksumError,
    checksum_ok,
    stamp_checksum,
)
from repro.storage.disk import DiskManager
from repro.storage.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultyDisk,
    SimulatedCrash,
    corrupt_page,
    torn_page,
)
from repro.storage.filedisk import (
    META_FILE,
    META_TMP_FILE,
    FileDiskManager,
)
from repro.storage.iostats import IOStats
from repro.storage.wal import WriteAheadLog


# ---------------------------------------------------------------------------
# Fault-injection machinery
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_unarmed_fire_is_noop(self):
        FaultInjector().fire("disk.page_write")  # must not raise

    def test_skip_countdown_then_crash(self):
        inj = FaultInjector()
        inj.arm("wal.force", skip=2)
        inj.fire("wal.force")
        inj.fire("wal.force")
        with pytest.raises(SimulatedCrash) as exc:
            inj.fire("wal.force")
        assert exc.value.point == "wal.force"
        assert inj.fired == "wal.force"
        inj.fire("wal.force")  # fired faults never re-fire

    def test_other_points_do_not_trigger(self):
        inj = FaultInjector()
        inj.arm("wal.force")
        inj.fire("wal.append")
        inj.fire("disk.sync.data")
        assert inj.fired is None

    def test_disarm(self):
        inj = FaultInjector()
        inj.arm("wal.append")
        inj.disarm()
        inj.fire("wal.append")
        assert inj.fired is None

    def test_unknown_point_and_mode_rejected(self):
        inj = FaultInjector()
        with pytest.raises(ValueError):
            inj.arm("no.such.point")
        with pytest.raises(ValueError):
            inj.arm("wal.force", mode="melt")

    def test_simulated_crash_evades_except_exception(self):
        # The crash models the process dying: ordinary error handling
        # (``except Exception``) must not swallow it.
        assert not issubclass(SimulatedCrash, Exception)
        inj = FaultInjector()
        inj.arm("wal.force")
        with pytest.raises(SimulatedCrash):
            try:
                inj.fire("wal.force")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash was caught as an Exception")

    def test_torn_page_keeps_prefix_of_new(self):
        old, new = b"\xaa" * 64, b"\xbb" * 64
        assert torn_page(old, new, 10) == new[:10] + old[10:]
        half = torn_page(old, new, 0)  # default: half the page survives
        assert half == new[:32] + old[32:]

    def test_corrupt_page_flips_bytes(self):
        data = bytes(range(64))
        bad = corrupt_page(data, 8)
        assert bad != data
        assert len(bad) == 64
        assert sum(a != b for a, b in zip(data, bad)) == 8


class TestFaultyDisk:
    def _stack(self):
        inj = FaultInjector()
        disk = FaultyDisk(DiskManager(128), inj)
        return inj, disk

    def test_delegates_when_unarmed(self):
        _inj, disk = self._stack()
        pid = disk.allocate()
        disk.write_page(pid, b"\x01" * 128)
        assert disk.read_page(pid) == b"\x01" * 128
        assert disk.writes == 1 and disk.reads == 1

    def test_crash_mode_loses_the_write(self):
        inj, disk = self._stack()
        pid = disk.allocate()
        disk.write_page(pid, b"\x01" * 128)
        inj.arm("disk.page_write")
        with pytest.raises(SimulatedCrash):
            disk.write_page(pid, b"\x02" * 128)
        assert disk.peek(pid) == b"\x01" * 128  # old content intact

    def test_torn_mode_persists_a_prefix(self):
        inj, disk = self._stack()
        pid = disk.allocate()
        disk.write_page(pid, b"\x01" * 128)
        inj.arm("disk.page_torn", mode="torn", torn_bytes=16)
        with pytest.raises(SimulatedCrash):
            disk.write_page(pid, b"\x02" * 128)
        assert disk.peek(pid) == b"\x02" * 16 + b"\x01" * 112

    def test_corrupt_mode_is_silent(self):
        inj, disk = self._stack()
        pid = disk.allocate()
        inj.arm("disk.page_write", mode="corrupt", corrupt_bytes=4)
        disk.write_page(pid, b"\x03" * 128)  # no crash
        assert inj.fired == "disk.page_write"
        assert disk.peek(pid) != b"\x03" * 128


# ---------------------------------------------------------------------------
# Page checksums
# ---------------------------------------------------------------------------


class TestPageChecksums:
    def test_stamp_and_verify_roundtrip(self):
        page = stamp_checksum(bytes(512))
        assert checksum_ok(page)
        assert stamp_checksum(page) == page  # idempotent

    def test_flip_detected_anywhere(self):
        page = bytearray(stamp_checksum(bytes(range(256)) * 2))
        page[300] ^= 0xFF
        assert not checksum_ok(bytes(page))

    def test_legacy_zero_crc_passes(self):
        # Pages written before checksums existed verify trivially.
        assert checksum_ok(bytes(512))

    def test_codec_decode_verifies(self):
        codec = NodeCodec(512, rum_leaves=True, checksums=True)
        from repro.rtree.node import LeafEntry, Node

        node = Node(7, is_leaf=True)
        node.entries.append(LeafEntry(Rect.from_point(0.5, 0.5), 1, 1))
        page = codec.encode(node)
        crc = page[CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4]
        assert crc != b"\x00\x00\x00\x00"
        assert codec.decode(7, page).entries  # clean page decodes

        torn = torn_page(bytes(512), page, 40)
        with pytest.raises(PageChecksumError):
            codec.decode(7, torn)
        with pytest.raises(PageChecksumError):
            codec.verify_page(7, torn)

    def test_checksum_free_codec_unaffected(self):
        codec = NodeCodec(512, rum_leaves=True)
        from repro.rtree.node import LeafEntry, Node

        node = Node(3, is_leaf=True)
        node.entries.append(LeafEntry(Rect.from_point(0.1, 0.2), 4, 9))
        page = codec.encode(node)
        assert page[CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4] == b"\x00" * 4
        decoded = codec.decode(3, page)
        assert decoded.entries[0].oid == 4


# ---------------------------------------------------------------------------
# The crash matrix (the tentpole): every fault point x recovery option
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "scenario", default_scenarios(), ids=lambda s: s.name
)
def test_crash_matrix(scenario, tmp_path):
    """run_scenario raises CrashSimError on any violated guarantee."""
    outcome = run_scenario(scenario, tmp_path)
    memo_fault = (scenario.point or "").startswith("memo.")
    if scenario.mode == "crash" and scenario.point is not None:
        assert outcome.crashed and outcome.kind == "recovered"
    if scenario.mode == "torn":
        if memo_fault:
            # A torn memo-run is an unnamed orphan: recovery sweeps it
            # and the full recovered-state oracle applies.
            assert outcome.crashed and outcome.kind == "recovered"
        else:
            assert outcome.kind == "torn-detected" and outcome.damaged_pages
    if scenario.mode == "corrupt":
        if memo_fault:
            assert outcome.kind == "memo-corruption-detected"
        else:
            assert outcome.kind == "corruption-detected"


def test_lost_delete_semantics_across_options(tmp_path):
    """Section 3.4's documented semantics, exactly: Option III recovers
    every delete, Option II only those before the durable checkpoint,
    Option I none (modulo entries already physically garbage-dropped)."""
    live = {}
    for option in ("I", "II", "III"):
        directory = tmp_path / option
        outcome = run_scenario(CrashScenario(option=option), directory)
        live[option] = outcome.live_objects
    assert live["III"] < live["II"] < live["I"]


def test_crash_emits_obs_events(tmp_path):
    sink = ListEventSink()
    obs = Observability(level="trace", sink=sink)
    scenario = CrashScenario(option="III", point="wal.force", skip=5)
    run_scenario(scenario, tmp_path, obs=obs)
    kinds = [e["type"] for e in sink.events]
    assert "crashsim.crash" in kinds
    assert "crashsim.recovered" in kinds
    assert obs.registry.counter("faults.fired").value == 1


def test_workload_config_scales(tmp_path):
    config = WorkloadConfig(n_objects=16, n_updates=40, seed=3)
    outcome = run_scenario(
        CrashScenario(option="III"), tmp_path, config=config
    )
    assert outcome.kind == "recovered"
    assert outcome.live_objects <= 16


# ---------------------------------------------------------------------------
# Satellite 1 regression: FileDiskManager.sync metadata atomicity
# ---------------------------------------------------------------------------


class TestSyncAtomicity:
    def test_sync_replaces_metadata_atomically(self, tmp_path, monkeypatch):
        """The metadata must go live via fsync + os.replace of a temp
        file — the pre-fix code rewrote disk.json in place, un-fsynced,
        so a crash mid-write could tear it."""
        replaced = []
        real_replace = os.replace

        def spying_replace(src, dst):
            replaced.append((pathlib.Path(src).name, pathlib.Path(dst).name))
            return real_replace(src, dst)

        monkeypatch.setattr(
            "repro.storage.filedisk.os.replace", spying_replace
        )
        disk = FileDiskManager(128, tmp_path)
        disk.allocate()
        disk.sync()
        assert (META_TMP_FILE, META_FILE) in replaced
        assert not (tmp_path / META_TMP_FILE).exists()

    def test_crash_before_replace_keeps_previous_metadata(self, tmp_path):
        inj = FaultInjector()
        disk = FileDiskManager(128, tmp_path, faults=inj)
        first = disk.allocate()
        disk.sync()
        disk.allocate()
        inj.arm("disk.meta.tmp")
        with pytest.raises(SimulatedCrash):
            disk.sync()
        # The new metadata was fully written but never went live.
        assert (tmp_path / META_TMP_FILE).exists()
        reopened = FileDiskManager.open(tmp_path)
        assert list(reopened.page_ids()) == [first]
        # The stale temp file is cleaned up by open().
        assert not (tmp_path / META_TMP_FILE).exists()
        reopened._file.close()

    def test_crash_after_data_fsync_keeps_previous_metadata(self, tmp_path):
        inj = FaultInjector()
        disk = FileDiskManager(128, tmp_path, faults=inj)
        first = disk.allocate()
        disk.sync()
        disk.allocate()
        inj.arm("disk.sync.data")
        with pytest.raises(SimulatedCrash):
            disk.sync()
        reopened = FileDiskManager.open(tmp_path)
        assert list(reopened.page_ids()) == [first]
        reopened._file.close()


# ---------------------------------------------------------------------------
# Satellite 3 regression: Option II charged the whole log tail
# ---------------------------------------------------------------------------


def test_option_ii_charges_only_the_checkpoint_record():
    """Option II recovery reads the checkpoint record, nothing else —
    the pre-fix code billed every log page from the checkpoint's LSN to
    the end of the log, including memo-change records it never replays."""
    tree = build_rum_tree(
        node_size=512,
        recovery_option="II",
        inspection_ratio=0.0,
        clean_upon_touch=False,
        checkpoint_interval=10**9,
    )
    for oid in range(40):
        tree.insert_object(oid, Rect.from_point(oid / 50, oid / 50))
    tree.write_checkpoint()
    checkpoint = tree.wal.last_checkpoint()
    # A long post-checkpoint tail (as an Option III logger would leave).
    for oid in range(200):
        tree.wal.append_memo_change(oid, 10_000 + oid, force=False)

    tree.crash()
    report = recover_option_ii(tree)
    checkpoint_pages = -(-checkpoint.nbytes // 512)
    tail_pages = -(-200 * 24 // 512)
    assert report.io.log_reads == checkpoint_pages
    assert report.io.log_reads < checkpoint_pages + tail_pages


# ---------------------------------------------------------------------------
# End-to-end: torn page detected through a persisted store
# ---------------------------------------------------------------------------


def test_verify_pages_flags_exactly_the_damaged_page(tmp_path):
    codec = NodeCodec(256, rum_leaves=True, checksums=True)
    disk = FileDiskManager(256, tmp_path)
    from repro.rtree.node import LeafEntry, Node

    pids = []
    for i in range(4):
        pid = disk.allocate()
        node = Node(pid, is_leaf=True)
        node.entries.append(LeafEntry(Rect.from_point(0.1 * i, 0.1), i, i + 1))
        disk.write_page(pid, codec.encode(node))
        pids.append(pid)
    assert verify_pages(disk, codec) == []

    victim = pids[2]
    page = bytearray(disk.peek(victim))
    page[100] ^= 0x40
    disk._write_raw(victim, bytes(page))
    assert verify_pages(disk, codec) == [victim]
    disk._file.close()
