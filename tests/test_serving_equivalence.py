"""Shard-vs-single-tree equivalence property (hypothesis).

The sharded router is a pure serving-layer optimisation: for any
sequence of upserts and deletes, a 1-shard router, a 4-shard router,
and a bare RUM-tree must return identical range-query and kNN answers,
and the router's routing directory must conserve the live-object count.
This is the test the CI racecheck job also runs with ``REPRO_RACECHECK=1``
so migrations execute under the detector.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factory import build_rum_tree
from repro.rtree.geometry import Rect
from repro.serving import ShardRouter

coords = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

# An op is ("upsert", oid, x, y) or ("delete", oid); few distinct oids
# so deletes hit and objects migrate repeatedly.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("upsert"), st.integers(0, 15), coords, coords
        ),
        st.tuples(st.just("delete"), st.integers(0, 15)),
    ),
    min_size=1,
    max_size=60,
)

HALF = 0.01


def _rect(x: float, y: float) -> Rect:
    return Rect(x - HALF, y - HALF, x + HALF, y + HALF)


def _apply_to_router(router, ops):
    live = {}
    for op in ops:
        if op[0] == "upsert":
            _, oid, x, y = op
            router.upsert(oid, _rect(x, y))
            live[oid] = (x, y)
        else:
            _, oid = op
            existed = router.delete(oid)
            assert existed == (oid in live)
            live.pop(oid, None)
    return live


def _apply_to_tree(tree, ops):
    live = set()
    for op in ops:
        if op[0] == "upsert":
            _, oid, x, y = op
            tree.update_object(oid, None, _rect(x, y))
            live.add(oid)
        elif op[1] in live:
            tree.delete_object(op[1])
            live.discard(op[1])


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy, qx=coords, qy=coords)
def test_routers_equivalent_to_bare_tree(ops, qx, qy):
    tree = build_rum_tree(node_size=512)
    _apply_to_tree(tree, ops)
    windows = [
        Rect(0.0, 0.0, 1.0, 1.0),
        Rect(max(0.0, qx - 0.15), max(0.0, qy - 0.15),
             min(1.0, qx + 0.15), min(1.0, qy + 0.15)),
    ]
    with ShardRouter(1, node_size=512) as single, ShardRouter(
        4, node_size=512
    ) as sharded:
        live = _apply_to_router(single, ops)
        assert _apply_to_router(sharded, ops) == live

        # Count conservation: the routing directory, the per-shard
        # balance, and the full-square query all agree on liveness.
        for router in (single, sharded):
            assert router.count_objects() == len(live)
            assert sum(router.shard_object_counts()) == len(live)

        for window in windows:
            expected = sorted(oid for oid, _ in tree.search(window))
            for router in (single, sharded):
                got = router.query(window)
                assert [oid for oid, _ in got] == expected
                # Rectangles match the live positions exactly.
                for oid, rect in got:
                    x, y = live[oid]
                    assert rect == _rect(x, y)

        # kNN equivalence between the two routers (the bare tree's
        # iterator is their shared substrate, checked per shard).
        for k in (1, 5):
            assert single.nearest_neighbors(qx, qy, k) == (
                sharded.nearest_neighbors(qx, qy, k)
            )

        for shard in sharded.shards:
            shard.tree.check_invariants()
