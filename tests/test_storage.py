"""Tests for the disk manager, I/O counters, buffer pool, and WAL."""

import pytest

from repro.rtree.geometry import Rect
from repro.rtree.node import LeafEntry
from repro.storage.buffer import BufferPool
from repro.storage.codec import NodeCodec
from repro.storage.disk import DiskManager, PageNotAllocatedError
from repro.storage.iostats import IOSnapshot, IOStats
from repro.storage.wal import (
    CHECKPOINT_HEADER_BYTES,
    UM_ENTRY_BYTES,
    WriteAheadLog,
)


class TestDiskManager:
    def test_allocate_read_write(self):
        disk = DiskManager(128)
        pid = disk.allocate()
        assert disk.is_allocated(pid)
        assert disk.read_page(pid) == b"\x00" * 128
        disk.write_page(pid, b"\x01" * 128)
        assert disk.read_page(pid) == b"\x01" * 128

    def test_free_and_reuse(self):
        disk = DiskManager(128)
        a = disk.allocate()
        disk.free(a)
        assert not disk.is_allocated(a)
        b = disk.allocate()
        assert b == a  # freed ids are recycled

    def test_read_unallocated_raises(self):
        disk = DiskManager(128)
        with pytest.raises(PageNotAllocatedError):
            disk.read_page(0)
        with pytest.raises(PageNotAllocatedError):
            disk.write_page(0, b"\x00" * 128)
        with pytest.raises(PageNotAllocatedError):
            disk.free(0)

    def test_wrong_write_size_raises(self):
        disk = DiskManager(128)
        pid = disk.allocate()
        with pytest.raises(ValueError):
            disk.write_page(pid, b"\x00" * 127)

    def test_counters_and_introspection(self):
        disk = DiskManager(128)
        pids = [disk.allocate() for _ in range(3)]
        for pid in pids:
            disk.read_page(pid)
        assert disk.reads == 3
        assert disk.num_pages() == 3
        assert disk.total_bytes() == 3 * 128
        assert list(disk.page_ids()) == sorted(pids)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            DiskManager(0)


class TestIOStats:
    def test_snapshot_delta(self):
        stats = IOStats()
        stats.record_read(is_leaf=True)
        before = stats.snapshot()
        stats.record_read(is_leaf=True)
        stats.record_write(is_leaf=False)
        stats.index_reads += 2
        delta = stats.snapshot() - before
        assert delta.leaf_reads == 1
        assert delta.internal_writes == 1
        assert delta.index_reads == 2
        assert delta.leaf_total == 1
        assert delta.counted_total == 3
        assert delta.grand_total == 4

    def test_snapshot_addition(self):
        a = IOSnapshot(leaf_reads=1, log_writes=2)
        b = IOSnapshot(leaf_reads=3, index_writes=4)
        c = a + b
        assert c.leaf_reads == 4
        assert c.log_writes == 2
        assert c.index_writes == 4

    def test_reset(self):
        stats = IOStats()
        stats.record_write(is_leaf=True)
        stats.reset()
        assert stats.snapshot() == IOSnapshot()


def _stack(node_size=512, rum=False):
    stats = IOStats()
    disk = DiskManager(node_size)
    codec = NodeCodec(node_size, rum_leaves=rum)
    return BufferPool(disk, codec, stats), stats


class TestBufferPool:
    def test_one_read_per_leaf_per_operation(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        pid = leaf.page_id
        assert stats.leaf_writes == 1

        with buffer.operation():
            a = buffer.get_node(pid)
            b = buffer.get_node(pid)
            assert a is b
        assert stats.leaf_reads == 1  # second access was free

    def test_one_write_per_leaf_per_operation(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        pid = leaf.page_id
        stats.reset()
        with buffer.operation():
            node = buffer.get_node(pid)
            node.entries.append(LeafEntry(Rect.from_point(0.5, 0.5), 1))
            buffer.mark_dirty(node)
            node.entries.append(LeafEntry(Rect.from_point(0.6, 0.6), 2))
            buffer.mark_dirty(node)
        assert stats.leaf_writes == 1  # both dirties coalesced
        assert stats.leaf_reads == 1

    def test_nested_operations_flatten(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        stats.reset()
        with buffer.operation():
            with buffer.operation():
                node = buffer.get_node(leaf.page_id)
                buffer.mark_dirty(node)
            # Inner exit must NOT flush: same op continues.
            assert stats.leaf_writes == 0
        assert stats.leaf_writes == 1

    def test_internal_nodes_cached_and_lazy(self):
        buffer, stats = _stack()
        internal = buffer.new_node(is_leaf=False)
        buffer.flush()
        buffer.drop_volatile()
        stats.reset()
        a = buffer.get_node(internal.page_id)
        b = buffer.get_node(internal.page_id)
        assert a is b
        assert stats.internal_reads == 1
        assert stats.leaf_reads == 0

    def test_write_through_outside_operation(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        stats.reset()
        node = buffer.get_node(leaf.page_id)  # uncached single access
        assert stats.leaf_reads == 1
        node.entries.append(LeafEntry(Rect.from_point(0.2, 0.2), 9))
        buffer.mark_dirty(node)
        assert stats.leaf_writes == 1  # immediate write-through

    def test_dirty_data_reaches_disk(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
            leaf.entries.append(LeafEntry(Rect.from_point(0.3, 0.3), 5))
            buffer.mark_dirty(leaf)
        buffer.drop_volatile()
        with buffer.operation():
            back = buffer.get_node(leaf.page_id)
            assert back.entries[0].oid == 5

    def test_flush_writes_dirty_internal(self):
        buffer, stats = _stack()
        node = buffer.new_node(is_leaf=False)
        assert stats.internal_writes == 0
        buffer.flush()
        assert stats.internal_writes == 1
        buffer.flush()  # now clean: no extra write
        assert stats.internal_writes == 1

    def test_flush_inside_operation_rejected(self):
        buffer, _stats = _stack()
        with buffer.operation():
            with pytest.raises(RuntimeError):
                buffer.flush()

    def test_free_node_discards_dirty_state(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
            buffer.free_node(leaf)
        # Freed before the op ended: nothing to write.
        assert stats.leaf_writes == 0
        assert not buffer.disk.is_allocated(leaf.page_id)

    def test_crash_model_flush_then_drop(self):
        buffer, _stats = _stack()
        internal = buffer.new_node(is_leaf=False)
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        buffer.flush()
        buffer.drop_volatile()
        assert buffer.cached_internal_nodes() == 0
        # Both survive on disk.
        assert buffer.get_node(internal.page_id).page_id == internal.page_id
        assert buffer.get_node(leaf.page_id).page_id == leaf.page_id


class TestWriteAheadLog:
    def test_page_fill_accounting(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        wal.append("memo", None, 60)
        assert stats.log_writes == 0  # page not yet full
        wal.append("memo", None, 60)  # crosses the page boundary
        assert stats.log_writes == 1

    def test_force_flush(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        wal.append("memo", None, 10, force=True)
        assert stats.log_writes == 1
        wal.append("memo", None, 10, force=True)
        assert stats.log_writes == 2  # forcing the same page costs again

    def test_large_record_spans_pages(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        wal.append("checkpoint", None, 250)
        assert stats.log_writes == 2  # two full pages, one partial open

    def test_checkpoint_sizing(self):
        stats = IOStats()
        wal = WriteAheadLog(4096, stats)
        snapshot = [(i, i, 1) for i in range(10)]
        record = wal.append_checkpoint(snapshot, 99)
        assert record.nbytes == CHECKPOINT_HEADER_BYTES + 10 * UM_ENTRY_BYTES
        assert wal.last_checkpoint() is record
        assert record.payload == (99, snapshot)

    def test_last_checkpoint_none(self):
        wal = WriteAheadLog(4096, IOStats())
        assert wal.last_checkpoint() is None

    def test_read_from_charges_pages(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        for i in range(10):
            wal.append_memo_change(i, i, force=False)
        stats.reset()
        records = wal.read_from(0)
        assert len(records) == 10
        assert stats.log_reads == -(-10 * 24 // 100)

    def test_read_from_lsn_filters(self):
        wal = WriteAheadLog(1000, IOStats())
        first = wal.append_memo_change(1, 1)
        second = wal.append_memo_change(2, 2)
        assert [r.lsn for r in wal.read_from(second.lsn)] == [second.lsn]
        assert len(wal.read_from(first.lsn)) == 2

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WriteAheadLog(0, IOStats())
        wal = WriteAheadLog(100, IOStats())
        with pytest.raises(ValueError):
            wal.append("memo", None, 0)

    def test_total_bytes_and_len(self):
        wal = WriteAheadLog(1000, IOStats())
        wal.append("memo", None, 24)
        wal.append("memo", None, 24)
        assert len(wal) == 2
        assert wal.total_bytes() == 48

    # -- page-accounting edge cases and the durable prefix ---------------

    def test_record_exactly_filling_a_page(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        wal.append("memo", None, 100)
        assert stats.log_writes == 1
        # The record ended exactly on the page boundary, so the page
        # write already made it durable.
        assert wal.durable_records() == 1
        assert wal.crash_truncate() == 0

    def test_force_on_exactly_full_page_charges_no_extra_write(self):
        from repro.obs import Observability

        obs = Observability(level="metrics")
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        wal.attach_obs(obs)
        wal.append("memo", None, 100, force=True)
        # The page-boundary write already flushed everything: forcing
        # again would be a lie in the I/O ledger...
        assert stats.log_writes == 1
        # ...but the caller still demanded durability, so the forced-
        # flush telemetry counts it (it used to be skipped).
        assert obs.registry.counter("wal.forced_flushes").value == 1
        assert wal.durable_records() == 1

    def test_multi_page_checkpoint_write_and_read_charges(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        snapshot = [(i, i, 1) for i in range(12)]  # 32 + 288 bytes
        record = wal.append_checkpoint(snapshot, 99)
        assert record.nbytes == 320
        # Three pages filled plus the forced flush of the open tail.
        assert stats.log_writes == 4
        stats.reset()
        wal.read_record(record)
        assert stats.log_reads == -(-record.nbytes // 100)
        stats.reset()
        assert wal.read_from(0) == [record]
        assert stats.log_reads == -(-record.nbytes // 100)

    def test_unforced_tail_dies_in_a_crash(self):
        stats = IOStats()
        wal = WriteAheadLog(100, stats)
        wal.append("memo", "durable", 60)
        wal.append("memo", "also-durable", 60)  # fills page one
        wal.append("memo", "volatile", 10)
        assert wal.durable_records() == 1
        assert wal.crash_truncate() == 2
        assert [r.payload for r in wal.read_from(0)] == ["durable"]
        # The open page's fill is recomputed from the surviving bytes,
        # so post-crash appends account correctly.
        stats.reset()
        wal.append("memo", None, 40)
        assert stats.log_writes == 1  # 60 + 40 closes the page

    def test_force_makes_everything_durable(self):
        wal = WriteAheadLog(100, IOStats())
        wal.append("memo", None, 30)
        wal.append("memo", None, 30, force=True)
        assert wal.durable_records() == 2
        assert wal.crash_truncate() == 0
        assert len(wal) == 2

    def test_checkpoint_count(self):
        wal = WriteAheadLog(1000, IOStats())
        assert wal.checkpoint_count() == 0
        wal.append_memo_change(1, 1)
        wal.append_checkpoint([], 5)
        wal.append_checkpoint([], 9)
        assert wal.checkpoint_count() == 2


class TestResidentLeafLRU:
    """The optional cross-operation leaf cache (buffer ablation)."""

    def _stack_with_cache(self, pages):
        stats = IOStats()
        disk = DiskManager(512)
        codec = NodeCodec(512)
        return BufferPool(disk, codec, stats, leaf_cache_pages=pages), stats

    def test_negative_cache_rejected(self):
        with pytest.raises(ValueError):
            self._stack_with_cache(-1)

    def test_repeated_access_hits_cache(self):
        buffer, stats = self._stack_with_cache(4)
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        stats.reset()
        for _ in range(5):
            with buffer.operation():
                buffer.get_node(leaf.page_id)
        assert stats.leaf_reads == 0  # resident since creation

    def test_dirty_page_written_once_on_eviction(self):
        buffer, stats = self._stack_with_cache(2)
        pages = []
        for _ in range(2):
            with buffer.operation():
                node = buffer.new_node(is_leaf=True)
                node.entries.append(LeafEntry(Rect.from_point(0.5, 0.5), 1))
                buffer.mark_dirty(node)
            pages.append(node.page_id)
        assert stats.leaf_writes == 0  # both still resident, nothing flushed
        # Two more pages evict the first two (LRU), writing them back.
        for _ in range(2):
            with buffer.operation():
                buffer.new_node(is_leaf=True)
        assert stats.leaf_writes == 2

    def test_flush_writes_dirty_resident_pages(self):
        buffer, stats = self._stack_with_cache(8)
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            node.entries.append(LeafEntry(Rect.from_point(0.1, 0.1), 7))
            buffer.mark_dirty(node)
        assert stats.leaf_writes == 0
        buffer.flush()
        assert stats.leaf_writes == 1
        buffer.flush()  # clean now
        assert stats.leaf_writes == 1
        # The flushed content is durable.
        buffer.drop_volatile()
        back = buffer.get_node(node.page_id)
        assert back.entries[0].oid == 7

    def test_dirty_flag_carried_into_operation(self):
        buffer, stats = self._stack_with_cache(8)
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            node.entries.append(LeafEntry(Rect.from_point(0.2, 0.2), 1))
            buffer.mark_dirty(node)
        # Resident and dirty; a new operation pulls it back in and must
        # not lose the pending write.
        with buffer.operation():
            same = buffer.get_node(node.page_id)
            assert same is node
        buffer.flush()
        buffer.drop_volatile()
        assert buffer.get_node(node.page_id).entries[0].oid == 1

    def test_free_node_discards_resident_dirty_page(self):
        buffer, stats = self._stack_with_cache(8)
        with buffer.operation():
            node = buffer.new_node(is_leaf=True)
            buffer.mark_dirty(node)
        buffer.free_node(node)
        buffer.flush()
        assert stats.leaf_writes == 0  # never written: it was freed

    def test_default_has_no_resident_cache(self):
        buffer, stats = _stack()
        with buffer.operation():
            leaf = buffer.new_node(is_leaf=True)
        stats.reset()
        with buffer.operation():
            buffer.get_node(leaf.page_id)
        assert stats.leaf_reads == 1  # paper model: re-read every op
