"""Tests for the Section-4 cost model and the memo-size bounds."""

import random

import pytest

from conftest import SMALL_NODE, populate, random_walk
from repro.analysis.bounds import (
    avg_obsolete_entries,
    garbage_ratio_average,
    garbage_ratio_upper_bound,
    max_obsolete_entries,
    um_size_average,
    um_size_upper_bound,
)
from repro.analysis.cost_model import (
    BOTTOM_UP_IN_PLACE_IO,
    BOTTOM_UP_SIBLING_IO,
    BOTTOM_UP_TOP_DOWN_IO,
    expected_bottomup_update_io,
    expected_memo_update_io,
    expected_topdown_search_io,
    expected_topdown_update_io,
    logging_io_per_update_option_ii,
    logging_io_per_update_option_iii,
)
from repro.factory import build_rstar_tree, build_rum_tree
from repro.rtree.geometry import Rect
from repro.storage.wal import UM_ENTRY_BYTES


class TestTopDownModel:
    def test_zero_for_empty_leaf_list(self):
        assert expected_topdown_search_io([]) == 0.0
        assert expected_topdown_update_io([]) == 3.0

    def test_point_entry_search(self):
        # Two leaves of 0.2x0.1: qualifying probability sum = 2*0.02,
        # halved for the expected stop-early position.
        sides = [(0.2, 0.1), (0.2, 0.1)]
        assert expected_topdown_search_io(sides) == pytest.approx(0.02)

    def test_wide_entries_prune_leaves(self):
        sides = [(0.2, 0.2)] * 10
        point_cost = expected_topdown_search_io(sides, 0.0, 0.0)
        wide_cost = expected_topdown_search_io(sides, 0.15, 0.15)
        assert wide_cost < point_cost
        none_cost = expected_topdown_search_io(sides, 0.3, 0.3)
        assert none_cost == 0.0

    def test_estimator_tracks_measurement(self):
        """End-to-end: predictions from real leaf MBRs track measured
        deletion-search costs within a small factor."""
        tree = build_rstar_tree(node_size=SMALL_NODE)
        positions = populate(tree, 300, seed=130)
        predicted = expected_topdown_update_io(tree.leaf_mbr_sides())
        stats = tree.stats
        rng = random.Random(131)
        before = stats.snapshot()
        count = 60
        for oid in list(positions)[:count]:
            new = Rect.from_point(rng.random(), rng.random())
            tree.update_object(oid, positions[oid], new)
            positions[oid] = new
        measured = (stats.snapshot() - before).leaf_total / count
        assert measured == pytest.approx(predicted, rel=0.6)


class TestBottomUpModel:
    def test_pure_cases(self):
        assert expected_bottomup_update_io(1.0, 0.0) == BOTTOM_UP_IN_PLACE_IO
        assert expected_bottomup_update_io(0.0, 1.0) == BOTTOM_UP_SIBLING_IO
        assert expected_bottomup_update_io(0.0, 0.0) == BOTTOM_UP_TOP_DOWN_IO

    def test_mix(self):
        assert expected_bottomup_update_io(0.5, 0.25) == pytest.approx(
            0.5 * 3 + 0.25 * 6 + 0.25 * 7
        )

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            expected_bottomup_update_io(-0.1, 0.0)
        with pytest.raises(ValueError):
            expected_bottomup_update_io(0.8, 0.4)


class TestMemoModel:
    def test_formula(self):
        assert expected_memo_update_io(0.0) == 2.0
        assert expected_memo_update_io(0.2) == pytest.approx(2.4)
        assert expected_memo_update_io(1.0) == 4.0
        with pytest.raises(ValueError):
            expected_memo_update_io(-0.2)

    def test_logging_surcharges(self):
        base = logging_io_per_update_option_ii(
            n_leaves=100,
            inspection_ratio=0.2,
            page_size=8192,
            checkpoint_interval=10000,
        )
        assert base == pytest.approx(
            100 * UM_ENTRY_BYTES / 0.2 / (8192 * 10000)
        )
        assert logging_io_per_update_option_iii(
            100, 0.2, 8192, 10000
        ) == pytest.approx(base + 1.0)
        with pytest.raises(ValueError):
            logging_io_per_update_option_ii(100, 0.0, 8192, 100)


class TestBounds:
    def test_formulae(self):
        assert max_obsolete_entries(100, 0.2) == 500
        assert avg_obsolete_entries(100, 0.2) == 250
        assert garbage_ratio_upper_bound(100, 0.2, 10000) == pytest.approx(
            0.05
        )
        assert garbage_ratio_average(100, 0.2, 10000) == pytest.approx(0.025)
        assert um_size_upper_bound(100, 0.2) == 500 * UM_ENTRY_BYTES
        assert um_size_average(100, 0.2) == 250 * UM_ENTRY_BYTES

    def test_zero_ratio_unbounded(self):
        assert max_obsolete_entries(100, 0.0) == float("inf")

    def test_invalid_objects(self):
        with pytest.raises(ValueError):
            garbage_ratio_upper_bound(100, 0.2, 0)

    def test_bounds_hold_in_steady_state(self):
        """Drive a token-only RUM-tree to steady state and verify the
        Section-4.1 bounds on garbage and memo size."""
        tree = build_rum_tree(
            node_size=SMALL_NODE,
            clean_upon_touch=False,
            inspection_ratio=0.5,
        )
        positions = populate(tree, 200, seed=132)
        random_walk(tree, positions, steps=1500, seed=133, distance=0.1)
        n_leaves = tree.num_leaf_nodes()
        assert tree.garbage_count() <= max_obsolete_entries(n_leaves, 0.5)
        assert tree.memo_size_bytes() <= um_size_upper_bound(n_leaves, 0.5)
