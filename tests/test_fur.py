"""Tests for the FUR-tree (bottom-up updates) and its secondary index."""

import random

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    populate,
    random_walk,
)
from repro.factory import build_fur_tree
from repro.rtree.geometry import Rect
from repro.rtree.rstar import ObjectNotFoundError


class TestSecondaryIndexConsistency:
    def _index_matches_tree(self, tree) -> None:
        """Every object's index entry points at the leaf really holding it."""
        location = {}
        for leaf in tree.iter_leaf_nodes():
            for entry in leaf.entries:
                location[entry.oid] = leaf.page_id
        for oid, leaf_page in location.items():
            assert tree.index.peek(oid) == leaf_page, f"oid {oid} stale"
        assert tree.index.num_entries() == len(location)

    def test_after_inserts(self, fur_tree):
        populate(fur_tree, 200, seed=40)
        self._index_matches_tree(fur_tree)

    def test_after_updates(self, fur_tree):
        positions = populate(fur_tree, 150, seed=41)
        random_walk(fur_tree, positions, steps=600, seed=42, distance=0.2)
        self._index_matches_tree(fur_tree)
        assert_search_matches_oracle(fur_tree, positions)
        fur_tree.check_invariants()

    def test_after_deletes(self, fur_tree):
        positions = populate(fur_tree, 120, seed=43)
        for oid in list(positions)[:60]:
            fur_tree.delete_object(oid, positions.pop(oid))
        self._index_matches_tree(fur_tree)
        assert_search_matches_oracle(fur_tree, positions)


class TestUpdateCases:
    def test_small_moves_stay_in_place(self):
        tree = build_fur_tree(node_size=SMALL_NODE, extension=0.05)
        positions = populate(tree, 150, seed=44)
        random_walk(tree, positions, steps=300, seed=45, distance=0.005)
        in_place, sibling, top_down = tree.update_case_mix()
        assert in_place > 0.8 * (in_place + sibling + top_down)

    def test_large_moves_fall_back_to_top_down(self):
        tree = build_fur_tree(node_size=SMALL_NODE, extension=0.0)
        positions = populate(tree, 150, seed=46)
        rng = random.Random(47)
        for oid in list(positions)[:100]:
            old = positions[oid]
            # Jump to the opposite corner: no in-place, rarely a sibling.
            x, y = old.center()
            new = Rect.from_point(1.0 - x, 1.0 - y)
            tree.update_object(oid, old, new)
            positions[oid] = new
        in_place, sibling, top_down = tree.update_case_mix()
        assert top_down + sibling > in_place
        assert_search_matches_oracle(tree, positions)

    def test_case_mix_accumulates(self, fur_tree):
        positions = populate(fur_tree, 100, seed=48)
        random_walk(fur_tree, positions, steps=200, seed=49)
        assert sum(fur_tree.update_case_mix()) == 200

    def test_update_missing_raises(self, fur_tree):
        with pytest.raises(ObjectNotFoundError):
            fur_tree.update_object(
                5, Rect.from_point(0.5, 0.5), Rect.from_point(0.6, 0.6)
            )

    def test_delete_missing_raises(self, fur_tree):
        with pytest.raises(ObjectNotFoundError):
            fur_tree.delete_object(5, Rect.from_point(0.5, 0.5))


class TestIOAccounting:
    def test_in_place_update_costs_three(self):
        """Paper Section 4.2.2: in-place = index read + leaf read+write."""
        tree = build_fur_tree(node_size=SMALL_NODE, extension=0.2)
        positions = populate(tree, 60, seed=50)
        # Warm up so the structure is stable, then measure tiny moves.
        stats = tree.stats
        found_in_place = 0
        rng = random.Random(51)
        for oid in list(positions)[:30]:
            old = positions[oid]
            x, y = old.center()
            new = Rect.from_point(
                min(max(x + rng.uniform(-0.001, 0.001), 0), 1), y
            )
            cases_before = tree.updates_in_place
            before = stats.snapshot()
            tree.update_object(oid, old, new)
            delta = stats.snapshot() - before
            positions[oid] = new
            if tree.updates_in_place > cases_before:
                found_in_place += 1
                assert delta.index_reads == 1
                assert delta.index_writes == 0
                assert delta.leaf_reads == 1
                assert delta.leaf_writes == 1
        assert found_in_place > 0

    def test_update_cheaper_than_top_down_for_small_moves(self):
        from repro.factory import build_rstar_tree

        fur = build_fur_tree(node_size=SMALL_NODE, extension=0.05)
        rstar = build_rstar_tree(node_size=SMALL_NODE)
        pos_fur = populate(fur, 200, seed=52)
        pos_rstar = populate(rstar, 200, seed=52)
        fur_before = fur.stats.snapshot()
        rstar_before = rstar.stats.snapshot()
        random_walk(fur, pos_fur, steps=300, seed=53, distance=0.01)
        random_walk(rstar, pos_rstar, steps=300, seed=53, distance=0.01)
        fur_cost = (fur.stats.snapshot() - fur_before).counted_total
        rstar_cost = (rstar.stats.snapshot() - rstar_before).counted_total
        assert fur_cost < rstar_cost


class TestSecondaryIndexUnit:
    def test_lookup_assign_remove_counting(self):
        from repro.rtree.secondary_index import SecondaryIndex
        from repro.storage.iostats import IOStats

        stats = IOStats()
        index = SecondaryIndex(stats, page_size=256, n_buckets=8)
        assert index.lookup(1) is None
        assert stats.index_reads == 1
        index.assign(1, 77)
        assert stats.index_reads == 2 and stats.index_writes == 1
        assert index.lookup(1) == 77
        index.assign(1, 99, bucket_in_hand=True)
        assert stats.index_reads == 3  # no extra read charged
        index.remove(1)
        assert index.peek(1) is None

    def test_assign_many_batches_by_bucket(self):
        from repro.rtree.secondary_index import SecondaryIndex
        from repro.storage.iostats import IOStats

        stats = IOStats()
        index = SecondaryIndex(stats, page_size=256, n_buckets=4)
        # 8 oids over 4 buckets: exactly 4 bucket pages touched.
        index.assign_many((oid, 123) for oid in range(8))
        assert stats.index_writes == 4
        assert index.num_entries() == 8

    def test_overflowing_bucket_charges_chain(self):
        from repro.rtree.secondary_index import SecondaryIndex
        from repro.storage.iostats import IOStats

        stats = IOStats()
        # 16-byte entries, 32-byte pages: 2 entries per bucket page.
        index = SecondaryIndex(stats, page_size=32, n_buckets=1)
        for oid in range(6):
            index.assign(oid, oid)
        stats.reset()
        index.lookup(0)
        assert stats.index_reads == 3  # 6 entries / 2 per page

    def test_size_bytes(self):
        from repro.rtree.secondary_index import SecondaryIndex
        from repro.storage.iostats import IOStats

        index = SecondaryIndex(IOStats(), page_size=256)
        for oid in range(10):
            index.assign(oid, 1)
        assert index.size_bytes() == 160
