"""Tests for the runtime structural validator (``repro.lint.invariants``).

Healthy trees of every kind must pass :func:`check_tree`; each invariant
class is then exercised by deliberately corrupting a tree and asserting
the validator catches exactly that corruption.
"""

from __future__ import annotations

import pytest

from conftest import SMALL_NODE, populate
from repro.factory import build_rstar_tree, build_rum_tree
from repro.lint.invariants import InvariantViolation, check_tree
from repro.rtree.geometry import Rect


def corrupt_leaf(tree, mutate):
    """Apply ``mutate`` to the first non-root leaf and persist it."""
    for node in tree.iter_leaf_nodes():
        if node.page_id != tree.root_id:
            mutate(node)
            tree.buffer.mark_dirty(node)
            return node
    raise RuntimeError("tree has no non-root leaf; populate it more")


@pytest.fixture
def deep_rstar():
    tree = build_rstar_tree(node_size=SMALL_NODE)
    populate(tree, 200)
    assert tree.height >= 2
    return tree


@pytest.fixture
def deep_rum():
    tree = build_rum_tree(node_size=SMALL_NODE)
    populate(tree, 200)
    assert tree.height >= 2
    return tree


@pytest.fixture
def dirty_rum():
    """A RUM tree with one object carrying an obsolete leaf entry."""
    tree = build_rum_tree(
        node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.0
    )
    tree.insert_object(1, Rect.from_point(0.1, 0.1))
    tree.update_object(1, None, Rect.from_point(0.9, 0.9))
    return tree


class TestHealthyTrees:
    def test_classic_tree_passes(self, deep_rstar):
        check_tree(deep_rstar)

    def test_rum_tree_passes(self, deep_rum):
        check_tree(deep_rum)

    def test_rum_tree_with_obsolete_entries_passes(self, dirty_rum):
        check_tree(dirty_rum)

    def test_empty_tree_passes(self):
        check_tree(build_rstar_tree(node_size=SMALL_NODE))
        check_tree(build_rum_tree(node_size=SMALL_NODE))

    def test_violation_is_assertion_error(self):
        # Pre-validator call sites catch AssertionError; keep that true.
        assert issubclass(InvariantViolation, AssertionError)

    def test_check_invariants_delegates(self, deep_rstar):
        deep_rstar.check_invariants()
        corrupt_leaf(deep_rstar, lambda node: node.entries.__setitem__(
            slice(None), node.entries[:1]
        ))
        with pytest.raises(InvariantViolation):
            deep_rstar.check_invariants()


class TestStructuralCorruption:
    def test_fanout_underflow_caught(self, deep_rstar):
        corrupt_leaf(deep_rstar, lambda node: node.entries.__setitem__(
            slice(None), node.entries[:1]
        ))
        with pytest.raises(InvariantViolation, match="outside"):
            check_tree(deep_rstar)

    def test_stale_directory_mbr_caught(self, deep_rstar):
        def shift(node):
            node.entries[0].rect = Rect(5.0, 5.0, 6.0, 6.0)

        corrupt_leaf(deep_rstar, shift)
        with pytest.raises(InvariantViolation, match="stale"):
            check_tree(deep_rstar)

    def test_stale_parent_directory_caught(self, deep_rstar):
        root = deep_rstar._peek_node(deep_rstar.root_id)
        child_id = root.entries[0].child_id
        deep_rstar.parent[child_id] = 999_999
        with pytest.raises(InvariantViolation, match="parent directory"):
            check_tree(deep_rstar)


class TestRingCorruption:
    def test_broken_ring_pointer_caught(self, deep_rum):
        assert deep_rum.maintain_leaf_ring
        corrupted = corrupt_leaf(
            deep_rum, lambda node: setattr(node, "next_leaf", node.page_id)
        )
        assert corrupted.next_leaf == corrupted.page_id
        with pytest.raises(InvariantViolation, match="ring"):
            check_tree(deep_rum)


class TestMemoCorruption:
    def test_n_old_underflow_caught(self, dirty_rum):
        um = dirty_rum.memo.get(1)
        um.n_old = 0
        with pytest.raises(InvariantViolation, match="N_old"):
            check_tree(dirty_rum)

    def test_multiple_latest_caught(self, dirty_rum):
        # Dropping the memo entry reclassifies both physical entries of
        # oid 1 as LATEST — queries would return duplicates.
        dirty_rum.memo._bucket(1).pop(1)
        with pytest.raises(InvariantViolation, match="LATEST"):
            check_tree(dirty_rum)

    def test_leaf_newer_than_s_latest_caught(self, dirty_rum):
        um = dirty_rum.memo.get(1)
        um.s_latest = 0
        with pytest.raises(InvariantViolation, match="S_latest"):
            check_tree(dirty_rum)

    def test_stamp_at_or_above_counter_caught(self, dirty_rum):
        dirty_rum.stamps.restore(1)
        with pytest.raises(InvariantViolation, match="next stamp"):
            check_tree(dirty_rum)
