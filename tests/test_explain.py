"""EXPLAIN/ANALYZE tests — the reconciliation contract.

The defining invariant of ``explain_query`` / ``explain_knn`` /
``explain_update`` is that the reported trace accounts for the
operation's I/O *exactly*: per-visit deltas plus per-phase residuals sum
to the global :class:`IOStats` delta measured across the call.  These
tests pin that equality for all three tree variants, with and without
observability attached (EXPLAIN needs no obs — it is a property of the
tree, not of the telemetry layer).
"""

import pytest

from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.obs import Observability
from repro.obs.explain import SCHEMA
from repro.rtree.geometry import Rect
from repro.storage.iostats import IOSnapshot
from repro.workload.objects import default_network_workload

BUILDERS = [build_rstar_tree, build_fur_tree, build_rum_tree]
IDS = ["rstar", "fur", "rum"]


def _loaded(build, n=150, obs=None, **kwargs):
    tree = build(node_size=2048, obs=obs, **kwargs)
    w = default_network_workload(n, moving_distance=0.02, seed=5)
    for oid, rect in w.initial():
        tree.insert_object(oid, rect)
    return tree, w


class TestQueryReconciliation:
    @pytest.mark.parametrize("build", BUILDERS, ids=IDS)
    def test_trace_reconciles_exactly_with_iostats(self, build):
        tree, _ = _loaded(build)
        window = Rect(0.2, 0.2, 0.6, 0.6)
        before = tree.stats.snapshot()
        report = tree.explain_query(window)
        delta = tree.stats.snapshot() - before
        assert report.io_delta == delta
        assert report.reconciles()
        assert report.accounted_io() == delta
        assert report.visits  # at least the root was inspected

    @pytest.mark.parametrize("build", BUILDERS, ids=IDS)
    def test_results_match_live_search(self, build):
        tree, _ = _loaded(build)
        window = Rect(0.1, 0.1, 0.9, 0.9)
        report = tree.explain_query(window)
        assert report.results == len(tree.search(window))

    def test_levels_and_leaf_flags_consistent(self):
        tree, _ = _loaded(build_rum_tree, n=400)
        report = tree.explain_query(Rect(0.0, 0.0, 1.0, 1.0))
        for v in report.visits:
            assert v.is_leaf == (v.level == 0)
            assert v.residency in ("internal", "op", "lru", "disk")
            assert 0 <= v.entries_matched <= v.entries_tested
        levels = report.nodes_per_level()
        assert max(levels) == tree.height - 1
        assert levels[max(levels)] == 1  # exactly one root visit

    def test_rum_memo_block_partitions_inspections(self):
        tree, w = _loaded(build_rum_tree)
        for oid, old, new in w.updates(200):
            tree.update_object(oid, old, new)
        report = tree.explain_query(Rect(0.0, 0.0, 1.0, 1.0))
        memo = report.memo
        assert memo["inspections"] == memo["latest"] + memo["obsolete"]
        assert report.results == memo["latest"]

    def test_serving_decision_reported(self):
        tree, _ = _loaded(build_rum_tree)
        report = tree.explain_query(Rect(0.2, 0.2, 0.4, 0.4))
        assert report.served_by in ("mirror", "traversal")
        if report.served_by == "mirror":
            assert report.mirror is not None

    def test_as_dict_schema_and_render(self):
        tree, _ = _loaded(build_rum_tree)
        report = tree.explain_query(Rect(0.2, 0.2, 0.6, 0.6))
        d = report.as_dict()
        assert d["schema"] == SCHEMA
        assert d["reconciles"] is True
        text = report.render()
        assert "EXPLAIN ANALYZE query" in text
        assert "reconciles with IOStats delta: True" in text


class TestKnnReconciliation:
    @pytest.mark.parametrize("build", BUILDERS, ids=IDS)
    def test_trace_reconciles_and_returns_k(self, build):
        tree, _ = _loaded(build)
        before = tree.stats.snapshot()
        report = tree.explain_knn(0.5, 0.5, 5)
        delta = tree.stats.snapshot() - before
        assert report.io_delta == delta
        assert report.reconciles()
        assert report.results == 5
        live = tree.nearest_neighbors(0.5, 0.5, 5)
        assert len(live) == 5

    def test_rum_knn_filters_obsolete_through_memo(self):
        tree, w = _loaded(build_rum_tree)
        for oid, old, new in w.updates(300):
            tree.update_object(oid, old, new)
        report = tree.explain_knn(0.5, 0.5, 8)
        assert report.results == 8
        memo = report.memo
        assert memo["inspections"] == memo["latest"] + memo["obsolete"]
        # kNN stops once k latest entries surfaced, so latest >= k.
        assert memo["latest"] >= 8


class TestUpdateReconciliation:
    @pytest.mark.parametrize(
        "build", [build_rstar_tree, build_fur_tree], ids=["rstar", "fur"]
    )
    def test_baseline_update_reconciles_via_phase(self, build):
        tree, w = _loaded(build)
        oid, old, new = next(iter(w.updates(1)))
        before = tree.stats.snapshot()
        report = tree.explain_update(oid, new, old_rect=old)
        delta = tree.stats.snapshot() - before
        assert report.io_delta == delta
        assert report.reconciles()
        assert set(report.phases) == {"update"}
        # The mutation really happened: the new rect is indexed.
        assert (oid, new) in tree.search(new)

    @pytest.mark.parametrize(
        "build", [build_rstar_tree, build_fur_tree], ids=["rstar", "fur"]
    )
    def test_baseline_update_requires_old_rect(self, build):
        tree, w = _loaded(build)
        oid, _old, new = next(iter(w.updates(1)))
        with pytest.raises(ValueError):
            tree.explain_update(oid, new)

    def test_rum_update_attributes_all_three_phases(self):
        tree, w = _loaded(build_rum_tree)
        for oid, old, new in w.updates(100):
            tree.update_object(oid, old, new)
        oid, _old, new = next(iter(w.updates(1)))
        before = tree.stats.snapshot()
        report = tree.explain_update(oid, new)  # old_rect not needed
        delta = tree.stats.snapshot() - before
        assert report.io_delta == delta
        assert report.reconciles()
        assert set(report.phases) == {"memo", "insert", "clean"}
        total = IOSnapshot()
        for io in report.phases.values():
            total = total + io
        assert total == delta  # visits carry zero I/O (pre-walked peeks)
        assert report.memo["stamp"] > 0
        # The descent trace ends at a leaf.
        assert report.visits[-1].is_leaf

    def test_rum_update_reconciles_with_wal_logging(self):
        tree, w = _loaded(build_rum_tree, recovery_option="III")
        oid, _old, new = next(iter(w.updates(1)))
        before = tree.stats.snapshot()
        report = tree.explain_update(oid, new)
        delta = tree.stats.snapshot() - before
        assert report.reconciles()
        assert report.io_delta == delta
        # Option III forces the memo-change log write into the memo phase.
        assert report.phases["memo"].log_writes >= 1


class TestExplainWithObsAttached:
    """EXPLAIN runs must not corrupt the live telemetry counters."""

    def test_explain_query_does_not_count_as_live_query(self):
        obs = Observability(level="metrics")
        tree, _ = _loaded(build_rum_tree, obs=obs)
        q0 = obs.registry.snapshot().counters.get("tree.queries", 0)
        report = tree.explain_query(Rect(0.2, 0.2, 0.6, 0.6))
        assert report.reconciles()
        assert obs.registry.snapshot().counters.get("tree.queries", 0) == q0

    def test_explain_update_reconciles_under_metrics(self):
        obs = Observability(level="metrics")
        tree, w = _loaded(build_rum_tree, obs=obs)
        oid, _old, new = next(iter(w.updates(1)))
        report = tree.explain_update(oid, new)
        assert report.reconciles()
