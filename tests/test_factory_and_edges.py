"""Factory wiring and assorted edge-case tests across modules."""

import random

import pytest

from conftest import SMALL_NODE, populate, random_walk
from repro.factory import (
    DEFAULT_NODE_SIZE,
    build_fur_tree,
    build_rstar_tree,
    build_rum_tree,
    build_storage,
)
from repro.rtree.geometry import Rect
from repro.storage.codec import NodeCodec
from repro.storage.iostats import IOStats


class TestFactory:
    def test_default_node_size_is_papers(self):
        assert DEFAULT_NODE_SIZE == 8192

    def test_storage_stack_shares_stats(self):
        stats = IOStats()
        buffer = build_storage(1024, stats=stats)
        assert buffer.stats is stats
        assert buffer.disk.page_size == 1024
        assert buffer.codec.node_size == 1024

    def test_rum_tree_gets_rum_codec(self):
        tree = build_rum_tree(node_size=1024)
        assert tree.buffer.codec.rum_leaves is True

    def test_baselines_get_classic_codec(self):
        assert build_rstar_tree(node_size=1024).buffer.codec.rum_leaves is False
        assert build_fur_tree(node_size=1024).buffer.codec.rum_leaves is False

    def test_wal_attached_only_when_needed(self):
        assert build_rum_tree(node_size=1024).wal is None
        assert build_rum_tree(node_size=1024, recovery_option="I").wal is None
        tree = build_rum_tree(node_size=1024, recovery_option="III")
        assert tree.wal is not None
        assert tree.wal.page_size == 1024

    def test_independent_stacks(self):
        a = build_rum_tree(node_size=SMALL_NODE)
        b = build_rum_tree(node_size=SMALL_NODE)
        a.insert_object(1, Rect.from_point(0.5, 0.5))
        assert b.stats.snapshot().leaf_total <= 1  # only its root write
        assert b.search(Rect(0, 0, 1, 1)) == []


class TestCodecEdges:
    def test_coordinates_outside_unit_square(self):
        codec = NodeCodec(512, rum_leaves=True)
        from repro.rtree.node import LeafEntry, Node

        entry = LeafEntry(Rect(-5.0, -2.5, 17.25, 100.0), 1, 2)
        node = Node(0, True, [entry])
        back = codec.decode(0, codec.encode(node))
        assert back.entries[0].rect == entry.rect

    def test_full_node_roundtrip(self):
        codec = NodeCodec(512, rum_leaves=True)
        from repro.rtree.node import LeafEntry, Node

        entries = [
            LeafEntry(Rect.from_point(i / 10.0, i / 10.0), i, i + 100)
            for i in range(codec.leaf_cap)
        ]
        node = Node(0, True, entries)
        back = codec.decode(0, codec.encode(node))
        assert back.entries == entries


class TestFURExtensionParameter:
    def test_larger_extension_more_in_place(self):
        mixes = {}
        for extension in (0.0, 0.1):
            tree = build_fur_tree(node_size=SMALL_NODE, extension=extension)
            positions = populate(tree, 150, seed=200)
            random_walk(tree, positions, steps=300, seed=201, distance=0.03)
            in_place, _sibling, _top = tree.update_case_mix()
            mixes[extension] = in_place
        assert mixes[0.1] > mixes[0.0]

    def test_negative_extension_rejected(self):
        with pytest.raises(ValueError):
            build_fur_tree(node_size=SMALL_NODE, extension=-0.1)


class TestStampAcrossRecovery:
    def test_no_stamp_reuse_after_option_iii_recovery(self):
        from repro.core.recovery import recover_option_iii

        tree = build_rum_tree(
            node_size=SMALL_NODE,
            recovery_option="III",
            checkpoint_interval=50,
        )
        positions = populate(tree, 50, seed=202)
        random_walk(tree, positions, steps=120, seed=203)
        stamps_before = {e.stamp for e in tree.iter_leaf_entries()}
        tree.crash()
        recover_option_iii(tree)
        random_walk(tree, positions, steps=50, seed=204)
        new_stamps = {
            e.stamp for e in tree.iter_leaf_entries()
        } - stamps_before
        # Fresh stamps never collide with surviving pre-crash stamps.
        assert all(s > max(stamps_before) for s in new_stamps)


class TestMemoBuckets:
    def test_custom_bucket_count(self):
        tree = build_rum_tree(node_size=SMALL_NODE, memo_buckets=7)
        assert tree.memo.n_buckets == 7
        populate(tree, 40, seed=205)
        assert len(tree.memo) >= 0  # operations work with odd bucket count

    def test_search_empty_window_far_away(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        populate(tree, 30, seed=206)
        # Degenerate (point) query window.
        hits = tree.search(Rect.from_point(2.0, 2.0))
        assert hits == []


class TestDegenerateWorkloads:
    def test_all_objects_identical_position(self):
        tree = build_rum_tree(node_size=SMALL_NODE, inspection_ratio=0.5)
        rect = Rect.from_point(0.5, 0.5)
        for oid in range(100):
            tree.insert_object(oid, rect)
        for oid in range(100):
            tree.update_object(oid, None, rect)
        hits = tree.search(Rect(0.5, 0.5, 0.5, 0.5))
        assert sorted(oid for oid, _r in hits) == list(range(100))
        tree.check_invariants()

    def test_single_object_many_updates(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.2
        )
        rng = random.Random(207)
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        last = None
        for _ in range(300):
            last = Rect.from_point(rng.random(), rng.random())
            tree.update_object(1, None, last)
        assert tree.search(Rect(0, 0, 1, 1)) == [(1, last)]
        tree.check_invariants()

    def test_objects_on_unit_square_border(self):
        tree = build_rstar_tree(node_size=SMALL_NODE)
        corners = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
        for oid, (x, y) in enumerate(corners):
            tree.insert_object(oid, Rect.from_point(x, y))
        assert len(tree.search(Rect(0, 0, 1, 1))) == 4
        assert len(tree.search(Rect(0, 0, 0, 0))) == 1
