"""Unit and property tests for the rectangle algebra."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rtree.geometry import (
    Rect,
    UNIT_SQUARE,
    clamp_to_unit,
    containment_probability,
    rects_mbr,
)

coords = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw) -> Rect:
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


class TestConstruction:
    def test_basic_fields(self):
        r = Rect(0.1, 0.2, 0.3, 0.4)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (0.1, 0.2, 0.3, 0.4)

    def test_invalid_extent_raises(self):
        with pytest.raises(ValueError):
            Rect(0.5, 0.0, 0.4, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 0.5, 1.0, 0.4)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(0.5, 0.7)
        assert r.area() == 0.0
        assert r.xmin == r.xmax == 0.5
        assert r.ymin == r.ymax == 0.7

    def test_from_center(self):
        r = Rect.from_center(0.5, 0.5, 0.2)
        assert r.xmin == pytest.approx(0.4)
        assert r.xmax == pytest.approx(0.6)
        assert r.width == pytest.approx(0.2)
        assert r.height == pytest.approx(0.2)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_all([])

    def test_union_all_single(self):
        r = Rect(0.1, 0.1, 0.2, 0.2)
        assert Rect.union_all([r]) == r

    def test_rects_mbr_alias(self):
        a = Rect(0.0, 0.0, 0.1, 0.1)
        b = Rect(0.5, 0.5, 0.9, 0.9)
        assert rects_mbr([a, b]) == Rect(0.0, 0.0, 0.9, 0.9)


class TestMeasures:
    def test_area_and_margin(self):
        r = Rect(0.0, 0.0, 0.5, 0.25)
        assert r.area() == pytest.approx(0.125)
        assert r.margin() == pytest.approx(0.75)

    def test_center(self):
        assert Rect(0.0, 0.0, 1.0, 0.5).center() == (0.5, 0.25)

    def test_center_distance(self):
        a = Rect.from_point(0.0, 0.0)
        b = Rect.from_point(0.3, 0.4)
        assert a.center_distance(b) == pytest.approx(0.5)


class TestPredicates:
    def test_intersects_touching_edges(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.5, 0.0, 1.0, 0.5)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = Rect(0.0, 0.0, 0.4, 0.4)
        b = Rect(0.5, 0.5, 1.0, 1.0)
        assert not a.intersects(b)

    def test_contains(self):
        outer = Rect(0.0, 0.0, 1.0, 1.0)
        inner = Rect(0.2, 0.2, 0.8, 0.8)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_contains_point(self):
        r = Rect(0.25, 0.25, 0.75, 0.75)
        assert r.contains_point(0.5, 0.5)
        assert r.contains_point(0.25, 0.75)  # border inclusive
        assert not r.contains_point(0.1, 0.5)


class TestCombinations:
    def test_union(self):
        a = Rect(0.0, 0.0, 0.3, 0.3)
        b = Rect(0.2, 0.2, 0.8, 0.6)
        assert a.union(b) == Rect(0.0, 0.0, 0.8, 0.6)

    def test_enlargement_zero_when_contained(self):
        outer = Rect(0.0, 0.0, 1.0, 1.0)
        inner = Rect(0.2, 0.2, 0.4, 0.4)
        assert outer.enlargement(inner) == pytest.approx(0.0)

    def test_enlargement_positive(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.6, 0.6, 1.0, 1.0)
        assert a.enlargement(b) == pytest.approx(1.0 - 0.25)

    def test_overlap_area(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.25, 0.25, 0.75, 0.75)
        assert a.overlap_area(b) == pytest.approx(0.0625)
        c = Rect(0.6, 0.6, 1.0, 1.0)
        assert a.overlap_area(c) == 0.0

    def test_expanded(self):
        r = Rect(0.4, 0.4, 0.6, 0.6).expanded(0.1)
        assert r.as_tuple() == pytest.approx((0.3, 0.3, 0.7, 0.7))
        with pytest.raises(ValueError):
            Rect(0.0, 0.0, 1.0, 1.0).expanded(-0.1)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Rect(0.1, 0.2, 0.3, 0.4)
        b = Rect(0.1, 0.2, 0.3, 0.4)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_iter_and_tuple(self):
        r = Rect(0.1, 0.2, 0.3, 0.4)
        assert tuple(r) == r.as_tuple() == (0.1, 0.2, 0.3, 0.4)

    def test_not_equal_other_type(self):
        assert Rect(0, 0, 1, 1) != "rect"


class TestProperties:
    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(rects(), rects())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects(), rects())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-12

    @given(rects(), rects())
    def test_overlap_symmetric_and_bounded(self, a, b):
        o1 = a.overlap_area(b)
        o2 = b.overlap_area(a)
        assert o1 == pytest.approx(o2)
        assert o1 <= min(a.area(), b.area()) + 1e-12

    @given(rects(), rects())
    def test_contains_implies_intersects(self, a, b):
        if a.contains(b):
            assert a.intersects(b)

    @given(rects())
    def test_union_with_self_identity(self, a):
        assert a.union(a) == a

    @given(rects(), rects())
    def test_overlap_positive_iff_interior_intersection(self, a, b):
        if a.overlap_area(b) > 0:
            assert a.intersects(b)


class TestLemma2:
    def test_formula_cases(self):
        # Outer 0.5x0.5 containing a point: probability 0.25.
        assert containment_probability(0.5, 0.5, 0.0, 0.0) == pytest.approx(
            0.25
        )
        # Inner larger than outer on one axis: zero.
        assert containment_probability(0.5, 0.5, 0.6, 0.1) == 0.0
        assert containment_probability(0.3, 0.3, 0.3, 0.3) == 0.0

    def test_monte_carlo_agreement(self):
        """Lemma 2 against direct simulation in the unit square."""
        rng = random.Random(123)
        w_out, h_out, w_in, h_in = 0.4, 0.3, 0.1, 0.05
        trials = 20000
        hits = 0
        for _ in range(trials):
            ox = rng.uniform(0, 1 - w_out)
            oy = rng.uniform(0, 1 - h_out)
            ix = rng.uniform(0, 1 - w_in)
            iy = rng.uniform(0, 1 - h_in)
            outer = Rect(ox, oy, ox + w_out, oy + h_out)
            inner = Rect(ix, iy, ix + w_in, iy + h_in)
            if outer.contains(inner):
                hits += 1
        expected = containment_probability(w_out, h_out, w_in, h_in)
        assert hits / trials == pytest.approx(expected, abs=0.02)


def test_clamp_to_unit():
    assert clamp_to_unit(-0.5, 1.7) == (0.0, 1.0)
    assert clamp_to_unit(0.3, 0.6) == (0.3, 0.6)


def test_unit_square_constant():
    assert UNIT_SQUARE.area() == 1.0
    assert UNIT_SQUARE.contains(Rect(0.2, 0.2, 0.8, 0.8))


def test_width_height():
    r = Rect(0.1, 0.2, 0.4, 0.8)
    assert r.width == pytest.approx(0.3)
    assert r.height == pytest.approx(0.6)
    assert math.isclose(r.margin(), r.width + r.height)
