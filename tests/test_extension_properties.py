"""Stateful property tests for the extension structures.

The same oracle discipline as the R-tree machines: arbitrary interleavings
of inserts, updates, deletes and forced cleaning against a shadow dict.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro.extensions.btree import MemoBTree
from repro.extensions.grid import MemoGrid
from repro.extensions.quadtree import MemoQuadtree

coords = st.floats(
    min_value=0.0, max_value=0.999, allow_nan=False, allow_infinity=False
)


class MemoBTreeMachine(RuleBasedStateMachine):
    """Memo-based B+-tree vs shadow dict."""

    @initialize()
    def setup(self):
        self.tree = MemoBTree(node_size=512, inspection_ratio=0.3)
        self.shadow = {}
        self.next_oid = 0

    @rule(key=coords)
    def insert(self, key):
        self.tree.insert_object(self.next_oid, key)
        self.shadow[self.next_oid] = key
        self.next_oid += 1

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False), key=coords)
    def update(self, pick, key):
        oid = pick.choice(sorted(self.shadow))
        self.tree.update_object(oid, None, key)
        self.shadow[oid] = key

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        oid = pick.choice(sorted(self.shadow))
        del self.shadow[oid]
        self.tree.delete_object(oid)

    @rule()
    def clean(self):
        self.tree.run_full_cycle()

    @rule(low=coords, width=st.floats(min_value=0.01, max_value=0.5))
    def query_matches_oracle(self, low, width):
        high = min(0.999, low + width)
        got = sorted(self.tree.range_search(low, high))
        want = sorted(
            (oid, key)
            for oid, key in self.shadow.items()
            if low <= key <= high
        )
        assert got == want


class MemoGridMachine(RuleBasedStateMachine):
    """Memo-based grid file vs shadow dict."""

    @initialize()
    def setup(self):
        self.grid = MemoGrid(side=6, page_size=512, inspection_ratio=0.3)
        self.shadow = {}
        self.next_oid = 0

    @rule(x=coords, y=coords)
    def insert(self, x, y):
        self.grid.insert_object(self.next_oid, x, y)
        self.shadow[self.next_oid] = (x, y)
        self.next_oid += 1

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False), x=coords, y=coords)
    def update(self, pick, x, y):
        oid = pick.choice(sorted(self.shadow))
        self.grid.update_object(oid, None, (x, y))
        self.shadow[oid] = (x, y)

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        oid = pick.choice(sorted(self.shadow))
        del self.shadow[oid]
        self.grid.delete_object(oid)

    @rule()
    def sweep(self):
        self.grid.run_full_sweep()

    @rule(x=coords, y=coords, side=st.floats(min_value=0.05, max_value=0.5))
    def query_matches_oracle(self, x, y, side):
        x1, y1 = min(0.999, x + side), min(0.999, y + side)
        got = sorted(
            oid for oid, _x, _y in self.grid.range_search(x, y, x1, y1)
        )
        want = sorted(
            oid
            for oid, (px, py) in self.shadow.items()
            if x <= px <= x1 and y <= py <= y1
        )
        assert got == want


class MemoQuadtreeMachine(RuleBasedStateMachine):
    """Memo-based quadtree vs shadow dict."""

    @initialize()
    def setup(self):
        self.tree = MemoQuadtree(page_size=512, inspection_ratio=0.3)
        self.shadow = {}
        self.next_oid = 0

    @rule(x=coords, y=coords)
    def insert(self, x, y):
        self.tree.insert_object(self.next_oid, x, y)
        self.shadow[self.next_oid] = (x, y)
        self.next_oid += 1

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False), x=coords, y=coords)
    def update(self, pick, x, y):
        oid = pick.choice(sorted(self.shadow))
        self.tree.update_object(oid, None, (x, y))
        self.shadow[oid] = (x, y)

    @precondition(lambda self: self.shadow)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        oid = pick.choice(sorted(self.shadow))
        del self.shadow[oid]
        self.tree.delete_object(oid)

    @rule()
    def sweep(self):
        self.tree.run_full_sweep()

    @rule(x=coords, y=coords, side=st.floats(min_value=0.05, max_value=0.5))
    def query_matches_oracle(self, x, y, side):
        x1, y1 = min(0.999, x + side), min(0.999, y + side)
        got = sorted(
            oid for oid, _x, _y in self.tree.range_search(x, y, x1, y1)
        )
        want = sorted(
            oid
            for oid, (px, py) in self.shadow.items()
            if x <= px <= x1 and y <= py <= y1
        )
        assert got == want


_machine_settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)

TestMemoBTreeMachine = MemoBTreeMachine.TestCase
TestMemoBTreeMachine.settings = _machine_settings
TestMemoGridMachine = MemoGridMachine.TestCase
TestMemoGridMachine.settings = _machine_settings
TestMemoQuadtreeMachine = MemoQuadtreeMachine.TestCase
TestMemoQuadtreeMachine.settings = _machine_settings
