"""Tests for the file-backed disk and index save/load."""

import random

import pytest

from conftest import (
    SMALL_NODE,
    assert_search_matches_oracle,
    populate,
    random_walk,
)
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.persistence import load_tree, save_tree
from repro.rtree.geometry import Rect
from repro.storage.disk import PageNotAllocatedError
from repro.storage.filedisk import FileDiskManager


class TestFileDiskManager:
    def test_roundtrip(self, tmp_path):
        disk = FileDiskManager(128, tmp_path)
        pid = disk.allocate()
        disk.write_page(pid, b"\xab" * 128)
        assert disk.read_page(pid) == b"\xab" * 128
        assert disk.peek(pid) == b"\xab" * 128
        disk.close()

    def test_reopen_preserves_pages_and_allocation(self, tmp_path):
        disk = FileDiskManager(128, tmp_path)
        a = disk.allocate()
        b = disk.allocate()
        disk.write_page(a, b"\x01" * 128)
        disk.write_page(b, b"\x02" * 128)
        disk.free(b)
        disk.close()

        reopened = FileDiskManager.open(tmp_path)
        assert reopened.page_size == 128
        assert reopened.is_allocated(a)
        assert not reopened.is_allocated(b)
        assert reopened.read_page(a) == b"\x01" * 128
        assert reopened.allocate() == b  # free list survived
        reopened.close()

    def test_unallocated_access_raises(self, tmp_path):
        disk = FileDiskManager(128, tmp_path)
        with pytest.raises(PageNotAllocatedError):
            disk.read_page(5)
        with pytest.raises(PageNotAllocatedError):
            disk.write_page(5, b"\x00" * 128)
        with pytest.raises(PageNotAllocatedError):
            disk.free(5)
        disk.close()

    def test_counters(self, tmp_path):
        disk = FileDiskManager(128, tmp_path)
        pid = disk.allocate()
        disk.read_page(pid)
        disk.write_page(pid, b"\x00" * 128)
        disk.peek(pid)  # uncounted
        assert disk.reads == 1
        assert disk.writes == 1
        disk.close()

    def test_invalid_page_size(self, tmp_path):
        with pytest.raises(ValueError):
            FileDiskManager(0, tmp_path)


@pytest.mark.parametrize(
    "builder", [build_rstar_tree, build_fur_tree, build_rum_tree]
)
class TestSaveLoadAllTrees:
    def test_roundtrip_preserves_answers(self, builder, tmp_path):
        tree = build_and_walk(builder)
        positions = tree._test_positions
        save_tree(tree, tmp_path)
        loaded = load_tree(tmp_path)
        assert_search_matches_oracle(loaded, positions)
        loaded.check_invariants()

    def test_loaded_tree_accepts_further_updates(self, builder, tmp_path):
        tree = build_and_walk(builder)
        positions = tree._test_positions
        save_tree(tree, tmp_path)
        loaded = load_tree(tmp_path)
        random_walk(loaded, positions, steps=150, seed=222, distance=0.1)
        assert_search_matches_oracle(loaded, positions)
        loaded.check_invariants()


def build_and_walk(builder):
    tree = builder(node_size=SMALL_NODE)
    positions = populate(tree, 120, seed=220)
    random_walk(tree, positions, steps=300, seed=221, distance=0.1)
    tree._test_positions = positions
    return tree


class TestRUMSpecifics:
    def test_memo_and_stamps_survive(self, tmp_path):
        tree = build_rum_tree(
            node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.2
        )
        positions = populate(tree, 80, seed=223)
        random_walk(tree, positions, steps=200, seed=224)
        memo_before = {e.oid: e.as_tuple() for e in tree.memo}
        stamp_before = tree.stamps.current
        save_tree(tree, tmp_path)

        loaded = load_tree(tmp_path)
        assert {e.oid: e.as_tuple() for e in loaded.memo} == memo_before
        assert loaded.stamps.current == stamp_before
        assert loaded.clean_upon_touch is False
        assert loaded.cleaner.inspection_ratio == pytest.approx(0.2)
        # No stale duplicates after reload + cleaning.
        loaded.cleaner.run_full_cycle()
        assert_search_matches_oracle(loaded, positions)

    def test_deleted_objects_stay_deleted(self, tmp_path):
        tree = build_rum_tree(node_size=SMALL_NODE)
        tree.insert_object(1, Rect.from_point(0.5, 0.5))
        tree.insert_object(2, Rect.from_point(0.6, 0.6))
        tree.delete_object(1)
        save_tree(tree, tmp_path)
        loaded = load_tree(tmp_path)
        # Unlike crash recovery Option I, a clean save persists the memo,
        # so memo-based deletes survive.
        assert sorted(oid for oid, _r in loaded.search(Rect(0, 0, 1, 1))) == [2]


class TestFURSpecifics:
    def test_secondary_index_rebuilt(self, tmp_path):
        tree = build_fur_tree(node_size=SMALL_NODE)
        positions = populate(tree, 100, seed=225)
        save_tree(tree, tmp_path)
        loaded = load_tree(tmp_path)
        for leaf in loaded.iter_leaf_nodes():
            for entry in leaf.entries:
                assert loaded.index.peek(entry.oid) == leaf.page_id
        random_walk(loaded, positions, steps=100, seed=226)
        assert_search_matches_oracle(loaded, positions)


class TestAllocationState:
    def test_free_list_survives_save_load(self, tmp_path):
        """save_tree used to drop the source disk's free list, leaking
        every freed page id forever across save/load cycles."""
        tree = build_rstar_tree(node_size=SMALL_NODE)
        positions = populate(tree, 150, seed=230)
        # Physically delete most objects: leaf condensation frees pages.
        for oid in sorted(positions)[:120]:
            tree.delete_object(oid, positions.pop(oid))
        source = tree.buffer.disk
        assert source._free, "workload must free pages for this test"
        free_before = sorted(source._free)
        next_before = source._next_id

        save_tree(tree, tmp_path)
        loaded = load_tree(tmp_path)
        disk = loaded.buffer.disk
        assert sorted(disk._free) == free_before
        assert disk._next_id == next_before
        # A fresh allocation recycles a freed id instead of growing the
        # page file past ids that were already handed out once.
        assert disk.allocate() in free_before

    def test_saved_pages_carry_checksums(self, tmp_path):
        from repro.crashsim import verify_pages
        from repro.storage.codec import CHECKSUM_OFFSET, NodeCodec

        tree = build_rum_tree(node_size=SMALL_NODE)
        populate(tree, 60, seed=231)
        save_tree(tree, tmp_path)
        disk = FileDiskManager.open(tmp_path)
        codec = NodeCodec(SMALL_NODE, rum_leaves=True, checksums=True)
        assert verify_pages(disk, codec) == []
        for page_id in disk.page_ids():
            crc = disk.peek(page_id)[CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4]
            assert crc != b"\x00" * 4
        disk._file.close()

    def test_flipped_byte_detected_on_reload(self, tmp_path):
        from repro.storage.codec import PageChecksumError

        tree = build_rum_tree(node_size=SMALL_NODE)
        positions = populate(tree, 60, seed=232)
        save_tree(tree, tmp_path)

        disk = FileDiskManager.open(tmp_path)
        victim = next(iter(disk.page_ids()))
        page = bytearray(disk.peek(victim))
        page[SMALL_NODE // 2] ^= 0x01
        disk._write_raw(victim, bytes(page))
        disk._file.flush()
        disk._file.close()

        loaded = load_tree(tmp_path)
        with pytest.raises(PageChecksumError):
            loaded.search(Rect(0.0, 0.0, 1.0, 1.0))
            for _ in loaded.iter_leaf_entries():
                pass


class TestErrors:
    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_tree(object(), tmp_path)
