"""Tests for the Update Memo, the stamp counter, and CheckStatus."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.memo import LATEST, OBSOLETE, UpdateMemo
from repro.core.stamp import StampCounter
from repro.obs import Observability
from repro.storage.wal import UM_ENTRY_BYTES


class TestStampCounter:
    def test_monotonic_unique(self):
        counter = StampCounter()
        stamps = [counter.next() for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_current_is_next_unconsumed(self):
        counter = StampCounter(start=5)
        assert counter.current == 5
        assert counter.next() == 5
        assert counter.current == 6

    def test_restore(self):
        counter = StampCounter()
        counter.next()
        counter.restore(1000)
        assert counter.next() == 1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StampCounter(start=-1)
        with pytest.raises(ValueError):
            StampCounter().restore(-5)

    def test_thread_safety(self):
        counter = StampCounter()
        results = []
        lock = threading.Lock()

        def worker():
            local = [counter.next() for _ in range(500)]
            with lock:
                results.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(results)) == 8 * 500  # all unique


class TestUpdateMemoBasics:
    def test_new_object_gets_entry_with_n_old_one(self):
        """Figure 4: a fresh UM entry always starts at N_old = 1 — even a
        first insert, which is what creates phantom entries (footnote 1)."""
        memo = UpdateMemo()
        memo.record_update(7, 100)
        entry = memo.get(7)
        assert entry.s_latest == 100
        assert entry.n_old == 1

    def test_update_bumps_latest_and_n_old(self):
        memo = UpdateMemo()
        memo.record_update(7, 100)
        memo.record_update(7, 200)
        entry = memo.get(7)
        assert entry.s_latest == 200
        assert entry.n_old == 2

    def test_check_status(self):
        memo = UpdateMemo()
        assert memo.check_status(7, 50) == LATEST  # no entry -> latest
        memo.record_update(7, 100)
        assert memo.check_status(7, 100) == LATEST
        assert memo.check_status(7, 99) == OBSOLETE
        assert memo.is_obsolete(7, 99)
        assert not memo.is_obsolete(7, 100)
        assert not memo.is_obsolete(8, 1)

    def test_note_cleaned_decrements_and_drops(self):
        memo = UpdateMemo()
        memo.record_update(7, 100)
        memo.record_update(7, 200)
        memo.note_cleaned(7)
        assert memo.get(7).n_old == 1
        memo.note_cleaned(7)
        assert memo.get(7) is None  # N_old reached zero: entry removed

    def test_note_cleaned_without_entry_raises(self):
        memo = UpdateMemo()
        with pytest.raises(KeyError):
            memo.note_cleaned(7)

    def test_note_cleaned_counter_not_bumped_on_missing_entry(self):
        """Regression: ``memo.cleaned`` used to increment *before* the
        entry-existence check, so a rejected clean (KeyError) still moved
        the counter and it no longer reconciled against the cleaner's
        actual removal count."""
        obs = Observability(level="metrics")
        memo = UpdateMemo()
        memo.attach_obs(obs)
        memo.record_update(1, 10)
        memo.note_cleaned(1)
        with pytest.raises(KeyError):
            memo.note_cleaned(99)  # no entry: must not count
        snap = obs.registry.snapshot()
        assert snap.counters["memo.cleaned"] == 1

    def test_no_entry_with_zero_n_old_exists(self):
        """Invariant from Section 3.1: "no UM entry has N_old equivalent
        to zero"."""
        memo = UpdateMemo()
        for oid in range(20):
            memo.record_update(oid, oid + 1)
        for oid in range(0, 20, 2):
            memo.note_cleaned(oid)
        for entry in memo:
            assert entry.n_old >= 1


class TestPhantomPurge:
    def test_purges_only_older_than_threshold(self):
        memo = UpdateMemo()
        memo.record_update(1, 10)
        memo.record_update(2, 20)
        memo.record_update(3, 30)
        purged = memo.purge_phantoms(21)
        assert purged == 2
        assert memo.get(1) is None
        assert memo.get(2) is None
        assert memo.get(3) is not None

    def test_purge_empty(self):
        memo = UpdateMemo()
        assert memo.purge_phantoms(100) == 0


class TestSnapshotRestore:
    def test_roundtrip(self):
        memo = UpdateMemo(n_buckets=4)
        for oid in range(50):
            memo.record_update(oid, oid * 10 + 1)
        snapshot = memo.snapshot()
        other = UpdateMemo(n_buckets=16)  # different bucket count is fine
        other.restore(iter(snapshot))
        assert len(other) == 50
        for oid in range(50):
            assert other.get(oid).s_latest == oid * 10 + 1

    def test_restore_clears_previous(self):
        memo = UpdateMemo()
        memo.record_update(1, 1)
        memo.restore(iter([(2, 5, 1)]))
        assert memo.get(1) is None
        assert memo.get(2).s_latest == 5

    def test_restore_drops_nonpositive_counts(self):
        """Regression: restore used to accept ``n_old <= 0`` entries.
        ``note_cleaned`` deletes at zero and never goes below, and
        ``purge_phantoms`` spares any entry with a recent stamp — so a
        restored zero-count entry could never drain and leaked forever.
        "No obsolete entries" must round-trip as *absence* (Section 3.1).
        """
        memo = UpdateMemo()
        memo.restore(iter([(1, 5, 0), (2, 6, -3), (3, 7, 2)]))
        assert memo.get(1) is None
        assert memo.get(2) is None
        assert memo.get(3).n_old == 2
        assert len(memo) == 1
        # The invariant the leak violated: every entry counts >= 1.
        assert all(entry.n_old >= 1 for entry in memo)

    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=10**6),
                st.integers(min_value=-3, max_value=5),
            ),
            max_size=60,
            unique_by=lambda e: e[0],
        ),
        src_buckets=st.integers(min_value=1, max_value=17),
        dst_buckets=st.integers(min_value=1, max_value=17),
    )
    def test_snapshot_restore_roundtrip_across_bucket_counts(
        self, entries, src_buckets, dst_buckets
    ):
        """snapshot() -> restore() preserves exactly the valid entries,
        whatever the bucket counts on either side; a second round-trip
        is the identity."""
        memo = UpdateMemo(n_buckets=src_buckets)
        memo.restore(iter(entries))
        expected = sorted(e for e in entries if e[2] > 0)
        assert sorted(memo.snapshot()) == expected

        other = UpdateMemo(n_buckets=dst_buckets)
        other.restore(iter(memo.snapshot()))
        assert sorted(other.snapshot()) == expected
        for oid, s_latest, n_old in expected:
            entry = other.get(oid)
            assert entry.s_latest == s_latest and entry.n_old == n_old


class TestSizeMetrics:
    def test_len_and_bytes(self):
        memo = UpdateMemo()
        for oid in range(10):
            memo.record_update(oid, oid + 1)
        assert len(memo) == 10
        assert memo.size_bytes() == 10 * UM_ENTRY_BYTES

    def test_total_n_old(self):
        memo = UpdateMemo()
        memo.record_update(1, 1)
        memo.record_update(1, 2)
        memo.record_update(2, 3)
        assert memo.total_n_old() == 3

    def test_size_tracks_record_clean_purge_cycle(self):
        """size_bytes/total_n_old stay consistent through the full entry
        lifecycle: records grow them, cleans shrink them, purges drop
        whole entries."""
        memo = UpdateMemo()
        for oid in range(8):
            memo.record_update(oid, oid + 1)       # N_old = 1 each
        for oid in range(4):
            memo.record_update(oid, 100 + oid)     # N_old = 2 for 0..3
        assert memo.size_bytes() == 8 * UM_ENTRY_BYTES
        assert memo.total_n_old() == 12

        memo.note_cleaned(0)                       # 0 back to N_old = 1
        memo.note_cleaned(7)                       # 7 drops out entirely
        assert len(memo) == 7
        assert memo.size_bytes() == 7 * UM_ENTRY_BYTES
        assert memo.total_n_old() == 10

        # Stamps 1..8 are below 100: purge everything not re-updated.
        purged = memo.purge_phantoms(100)
        assert purged == 3                         # oids 4, 5, 6
        assert len(memo) == 4
        assert memo.size_bytes() == 4 * UM_ENTRY_BYTES
        assert memo.total_n_old() == 7  # oid 0 at 1, oids 1-3 at 2

    def test_empty_memo_reports_zero(self):
        memo = UpdateMemo()
        assert memo.size_bytes() == 0
        assert memo.total_n_old() == 0

    def test_bucket_lock_accessible(self):
        memo = UpdateMemo(n_buckets=8)
        lock = memo.bucket_lock(13)
        assert lock is memo.bucket_locks[13 % 8]

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            UpdateMemo(n_buckets=0)


class TestMemoProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.sampled_from(["update", "clean"]),
            ),
            max_size=200,
        )
    )
    def test_n_old_tracks_operations(self, ops):
        """N_old equals (updates so far) - (cleans so far) for each oid,
        and the entry exists iff that number is positive."""
        memo = UpdateMemo(n_buckets=4)
        counter = StampCounter()
        balance = {}
        for oid, kind in ops:
            if kind == "update":
                memo.record_update(oid, counter.next())
                balance[oid] = balance.get(oid, 0) + 1
            else:
                if balance.get(oid, 0) > 0:
                    memo.note_cleaned(oid)
                    balance[oid] -= 1
        for oid, count in balance.items():
            entry = memo.get(oid)
            if count > 0:
                assert entry is not None and entry.n_old == count
            else:
                assert entry is None
