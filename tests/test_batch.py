"""Tests for the batched update ingestion pipeline.

Covers the four layers the pipeline spans: the pure batch planner
(``repro.core.batch``), the buffer pool's batch scope, the WAL's group
commit (including its crash semantics), and ``apply_batch`` on both the
RUM-tree (memo-native path) and the top-down baselines (generic path).
The centrepiece is the equivalence property: applying a batch must be
observably identical to applying the same operations sequentially.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from conftest import SMALL_NODE, populate, random_window
from repro.core.batch import plan_batch, zorder_key
from repro.factory import build_rstar_tree, build_rum_tree
from repro.lint.invariants import check_tree
from repro.rtree.geometry import Rect
from repro.storage.faults import FaultInjector, SimulatedCrash
from repro.storage.iostats import IOStats
from repro.storage.wal import WriteAheadLog


def _rect(x: float, y: float) -> Rect:
    return Rect.from_point(x, y)


# ---------------------------------------------------------------------------
# Batch planning: dedup fold and Z-order
# ---------------------------------------------------------------------------


class TestPlanBatch:
    def test_empty_batch(self):
        plan = plan_batch([])
        assert plan.total_ops == 0
        assert plan.surviving == 0
        assert plan.dedup_ratio == 0.0

    def test_distinct_oids_all_survive(self):
        plan = plan_batch(
            [("insert", i, _rect(i / 10, 0.5)) for i in range(5)]
        )
        assert plan.total_ops == 5
        assert len(plan.upserts) == 5
        assert plan.deduped == 0

    def test_update_chain_keeps_last_rect_and_first_old_rect(self):
        first_old = _rect(0.1, 0.1)
        plan = plan_batch(
            [
                ("update", 7, _rect(0.2, 0.2), first_old),
                ("update", 7, _rect(0.3, 0.3), _rect(0.2, 0.2)),
                ("update", 7, _rect(0.4, 0.4), _rect(0.3, 0.3)),
            ]
        )
        assert plan.total_ops == 3
        assert plan.deduped == 2
        (up,) = plan.upserts
        assert up.rect == _rect(0.4, 0.4)
        # A top-down consumer must delete the entry that is physically
        # stored, which is the old_rect of the FIRST folded operation.
        assert up.old_rect == first_old

    def test_insert_then_delete_is_noop(self):
        plan = plan_batch(
            [("insert", 1, _rect(0.5, 0.5)), ("delete", 1)]
        )
        assert plan.surviving == 0
        assert plan.deduped == 2

    def test_insert_update_delete_is_noop(self):
        plan = plan_batch(
            [
                ("insert", 1, _rect(0.5, 0.5)),
                ("update", 1, _rect(0.6, 0.6), _rect(0.5, 0.5)),
                ("delete", 1),
            ]
        )
        assert plan.surviving == 0

    def test_delete_then_insert_becomes_update(self):
        stored = _rect(0.2, 0.2)
        plan = plan_batch(
            [("delete", 3, stored), ("insert", 3, _rect(0.8, 0.8))]
        )
        assert not plan.deletes
        (up,) = plan.upserts
        assert up.rect == _rect(0.8, 0.8)
        assert up.old_rect == stored

    def test_noop_then_insert_is_fresh_insert(self):
        plan = plan_batch(
            [
                ("insert", 1, _rect(0.1, 0.1)),
                ("delete", 1),
                ("insert", 1, _rect(0.9, 0.9)),
            ]
        )
        (up,) = plan.upserts
        assert up.rect == _rect(0.9, 0.9)
        assert up.old_rect is None

    def test_update_then_delete_keeps_first_old_rect(self):
        stored = _rect(0.3, 0.3)
        plan = plan_batch(
            [
                ("update", 5, _rect(0.4, 0.4), stored),
                ("delete", 5),
            ]
        )
        assert not plan.upserts
        (dl,) = plan.deletes
        assert dl.oid == 5
        assert dl.old_rect == stored

    def test_upserts_sorted_by_zorder(self):
        rng = random.Random(42)
        ops = [
            ("insert", i, _rect(rng.random(), rng.random()))
            for i in range(50)
        ]
        plan = plan_batch(ops)
        keys = [zorder_key(u.rect) for u in plan.upserts]
        assert keys == sorted(keys)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            plan_batch([("teleport", 1, _rect(0.5, 0.5))])
        with pytest.raises(ValueError):
            plan_batch([()])
        with pytest.raises(ValueError):
            plan_batch([("insert", 1)])  # missing rect
        with pytest.raises(ValueError):
            plan_batch([("delete", 1, _rect(0.1, 0.1), _rect(0.2, 0.2))])
        with pytest.raises(TypeError):
            plan_batch([("insert", "oid", _rect(0.5, 0.5))])
        with pytest.raises(TypeError):
            plan_batch([("insert", 1, (0.5, 0.5, 0.6, 0.6))])

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "delete"]),
                st.integers(min_value=0, max_value=5),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            max_size=30,
        )
    )
    def test_fold_survivors_match_sequential_simulation(self, raw_ops):
        """The fold's surviving op per oid equals a naive replay's final
        visible state (exists where? / gone?)."""
        ops = []
        visible = {}
        for kind, oid, coord in raw_ops:
            if kind == "delete":
                ops.append(("delete", oid))
                visible.pop(oid, None)
            else:
                rect = _rect(coord, coord)
                ops.append((kind, oid, rect))
                visible[oid] = rect
        plan = plan_batch(ops)
        planned = {u.oid: u.rect for u in plan.upserts}
        # Deletes in the plan must not overlap the upserts, and nothing
        # visible may be missing from the upserts.
        assert set(planned) == set(visible)
        for oid, rect in visible.items():
            assert planned[oid] == rect
        for d in plan.deletes:
            assert d.oid not in visible


class TestZOrder:
    def test_locality_of_nearby_points(self):
        # Morton keys are discontinuous across power-of-two cell
        # boundaries, so pick a "near" pair inside one cell.
        base = zorder_key(_rect(0.3, 0.3))
        near = zorder_key(_rect(0.3001, 0.3001))
        far = zorder_key(_rect(0.9, 0.1))
        assert abs(base - near) < abs(base - far)

    def test_clamps_out_of_range_coordinates(self):
        lo = zorder_key(Rect(-5.0, -5.0, -4.0, -4.0))
        hi = zorder_key(Rect(4.0, 4.0, 5.0, 5.0))
        assert lo == zorder_key(_rect(0.0, 0.0))
        assert hi == zorder_key(_rect(1.0, 1.0))

    def test_interleaving_is_exact_on_grid_corners(self):
        assert zorder_key(_rect(0.0, 0.0)) == 0
        # x contributes the even bits, y the odd bits.
        x_only = zorder_key(_rect(1.0, 0.0))
        y_only = zorder_key(_rect(0.0, 1.0))
        assert x_only & y_only == 0
        assert x_only | y_only == zorder_key(_rect(1.0, 1.0))


# ---------------------------------------------------------------------------
# Equivalence: apply_batch vs sequential application
# ---------------------------------------------------------------------------


def _make_ops(rng: random.Random, positions, n_ops: int):
    """A mixed op stream over existing and fresh oids, tracking the
    expected final visible state."""
    ops = []
    alive = dict(positions)
    next_oid = max(alive) + 1 if alive else 0
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.2 or not alive:
            oid, rect = next_oid, _rect(rng.random(), rng.random())
            next_oid += 1
            ops.append(("insert", oid, rect))
            alive[oid] = rect
        elif roll < 0.85:
            oid = rng.choice(list(alive))
            rect = _rect(rng.random(), rng.random())
            ops.append(("update", oid, rect, alive[oid]))
            alive[oid] = rect
        else:
            oid = rng.choice(list(alive))
            ops.append(("delete", oid, alive.pop(oid)))
    return ops, alive


def _apply_sequentially(tree, ops):
    for op in ops:
        if op[0] == "insert":
            tree.insert_object(op[1], op[2])
        elif op[0] == "update":
            tree.update_object(op[1], op[3] if len(op) > 3 else None, op[2])
        else:
            tree.delete_object(
                op[1], op[2] if len(op) > 2 else None
            )


class TestBatchSequentialEquivalence:
    def _pair(self, **kwargs):
        trees = []
        for _ in range(2):
            tree = build_rum_tree(
                node_size=SMALL_NODE, inspection_ratio=0.2, **kwargs
            )
            populate(tree, 60, seed=9)
            trees.append(tree)
        return trees

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rum_batch_equals_sequential(self, seed):
        seq_tree, batch_tree = self._pair()
        rng = random.Random(seed)
        # Derive the true positions from the populated tree.
        positions = {
            oid: rect for oid, rect in seq_tree.search(Rect(0, 0, 1, 1))
        }
        ops, alive = _make_ops(rng, positions, 200)

        _apply_sequentially(seq_tree, ops)
        result = batch_tree.apply_batch(ops)
        assert result.total_ops == 200

        # Same answer for every query in a window grid...
        wrng = random.Random(seed + 100)
        for _ in range(25):
            window = random_window(wrng)
            assert sorted(batch_tree.search(window)) == sorted(
                seq_tree.search(window)
            )
        # ...and for nearest-neighbour queries.
        for _ in range(10):
            x, y = wrng.random(), wrng.random()
            assert {o for o, _ in batch_tree.nearest_neighbors(x, y, 5)} == {
                o for o, _ in seq_tree.nearest_neighbors(x, y, 5)
            }
        # The final visible state is exactly the tracked oracle.
        assert {
            oid for oid, _ in batch_tree.search(Rect(0, 0, 1, 1))
        } == set(alive)

        # Structural and memo invariants hold on both trees.
        check_tree(seq_tree)
        check_tree(batch_tree)

        # Dedup can only ever *reduce* garbage: superseded in-batch
        # versions are never physically inserted.
        assert batch_tree.garbage_count() <= seq_tree.garbage_count()

    def test_batch_on_rstar_baseline_matches_sequential(self):
        seq_tree = build_rstar_tree(node_size=SMALL_NODE)
        batch_tree = build_rstar_tree(node_size=SMALL_NODE)
        positions = populate(seq_tree, 40, seed=21)
        populate(batch_tree, 40, seed=21)
        rng = random.Random(5)
        ops, alive = _make_ops(rng, positions, 120)

        _apply_sequentially(seq_tree, ops)
        result = batch_tree.apply_batch(ops)
        assert result.applied == result.inserts + result.deletes

        wrng = random.Random(6)
        for _ in range(20):
            window = random_window(wrng)
            assert sorted(batch_tree.search(window)) == sorted(
                seq_tree.search(window)
            )
        check_tree(seq_tree)
        check_tree(batch_tree)

    def test_batch_coalesces_writes(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        populate(tree, 80, seed=31)
        rng = random.Random(32)
        ops = [
            ("update", oid, _rect(rng.random(), rng.random()))
            for oid in range(80)
        ]
        result = tree.apply_batch(ops)
        # 80 updates dirty far fewer distinct pages than they mark.
        assert result.write_marks >= result.pages_written
        assert result.coalesced_writes > 0

    def test_batch_writes_leaves_in_ascending_page_order(self):
        tree = build_rum_tree(node_size=SMALL_NODE)
        populate(tree, 80, seed=41)
        disk = tree.buffer.disk
        written = []
        original = disk.write_page

        def recording_write(page_id, data):
            written.append(page_id)
            return original(page_id, data)

        disk.write_page = recording_write
        rng = random.Random(42)
        try:
            tree.apply_batch(
                [
                    ("update", oid, _rect(rng.random(), rng.random()))
                    for oid in range(80)
                ]
            )
        finally:
            disk.write_page = original
        # Every write inside the batch comes from the scope-exit flush,
        # which sweeps dirty leaves in ascending page-id order.
        assert written
        assert written == sorted(written)

    def test_rum_update_ignores_missing_old_rect(self):
        # The memo path never needs old_rect; a batch built without it
        # must work on a RUM-tree.
        tree = build_rum_tree(node_size=SMALL_NODE)
        populate(tree, 20, seed=51)
        result = tree.apply_batch(
            [("update", oid, _rect(0.5, 0.5)) for oid in range(20)]
        )
        assert result.applied == 20
        assert len(tree.search(Rect(0.49, 0.49, 0.51, 0.51))) == 20


# ---------------------------------------------------------------------------
# Amortised cleaning and checkpointing
# ---------------------------------------------------------------------------


class TestBatchAmortisation:
    def test_cleaner_steps_match_sequential(self):
        seq_tree = build_rum_tree(
            node_size=SMALL_NODE, inspection_ratio=0.3
        )
        batch_tree = build_rum_tree(
            node_size=SMALL_NODE, inspection_ratio=0.3
        )
        populate(seq_tree, 100, seed=61)
        populate(batch_tree, 100, seed=61)
        rng = random.Random(62)
        # Distinct oids: with nothing to dedup, the batch accounts the
        # full op count to the cleaner, exactly like sequential mode.
        ops = [
            ("update", oid, _rect(rng.random(), rng.random()))
            for oid in range(100)
        ]
        _apply_sequentially(seq_tree, ops)
        batch_tree.apply_batch(ops)
        # Same surviving update count -> same accrued step credit ->
        # same number of token inspections, executed at batch end (one
        # step of slack: the batch accrues credit in a single exact
        # multiply, sequential mode in n float additions).
        assert (
            batch_tree.cleaner.updates_seen == seq_tree.cleaner.updates_seen
        )
        assert (
            abs(
                batch_tree.cleaner.leaves_inspected
                - seq_tree.cleaner.leaves_inspected
            )
            <= 1
        )

    def test_deduped_ops_do_not_step_the_cleaner(self):
        tree = build_rum_tree(node_size=SMALL_NODE, inspection_ratio=0.3)
        populate(tree, 50, seed=63)
        seen_before = tree.cleaner.updates_seen
        rng = random.Random(64)
        # Each oid twice: only the 50 surviving ops reach the cleaner —
        # folded-away ops never insert garbage, so stepping for them
        # would over-clean relative to the work actually done.
        tree.apply_batch(
            [
                ("update", oid % 50, _rect(rng.random(), rng.random()))
                for oid in range(100)
            ]
        )
        assert tree.cleaner.updates_seen == seen_before + 50

    def test_at_most_one_checkpoint_per_batch(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE,
            recovery_option="II",
            checkpoint_interval=10,
        )
        populate(tree, 30, seed=71)
        checkpoints_before = tree.wal.checkpoint_count()
        rng = random.Random(72)
        # 40 surviving updates with interval 10: sequentially this would
        # write 4 checkpoints; the batch amortises to exactly one.
        tree.apply_batch(
            [
                ("update", oid % 30, _rect(rng.random(), rng.random()))
                for oid in range(40)
            ]
        )
        assert tree.wal.checkpoint_count() == checkpoints_before + 1
        assert tree._updates_since_checkpoint == 0


# ---------------------------------------------------------------------------
# WAL group commit
# ---------------------------------------------------------------------------


class TestWalGroupCommit:
    def test_forces_once_per_group(self):
        stats = IOStats()
        wal = WriteAheadLog(4096, stats)
        with wal.group_commit():
            for i in range(10):
                wal.append_memo_change(i, i + 1)  # force=True, deferred
            assert wal.durable_records() == 0
        assert wal.durable_records() == 10
        # One forced flush for the whole group (no page ever filled).
        assert stats.log_writes == 1

    def test_without_group_each_append_forces(self):
        stats = IOStats()
        wal = WriteAheadLog(4096, stats)
        for i in range(10):
            wal.append_memo_change(i, i + 1)
        assert stats.log_writes == 10

    def test_no_pending_force_means_no_flush(self):
        stats = IOStats()
        wal = WriteAheadLog(4096, stats)
        with wal.group_commit():
            wal.append("memo", None, 24, force=False)
        assert stats.log_writes == 0
        assert wal.durable_records() == 0

    def test_nested_groups_flatten(self):
        stats = IOStats()
        wal = WriteAheadLog(4096, stats)
        with wal.group_commit():
            wal.append_memo_change(1, 1)
            with wal.group_commit():
                wal.append_memo_change(2, 2)
            # Inner exit must not force: the outer scope owns it.
            assert wal.durable_records() == 0
        assert wal.durable_records() == 2
        assert stats.log_writes == 1

    def test_page_boundary_inside_group_still_advances_durability(self):
        stats = IOStats()
        wal = WriteAheadLog(48, stats)  # two 24-byte records per page
        with wal.group_commit():
            wal.append_memo_change(1, 1)
            wal.append_memo_change(2, 2)  # fills the page
            assert wal.durable_records() == 2
            wal.append_memo_change(3, 3)
            assert wal.durable_records() == 2
        assert wal.durable_records() == 3

    def test_exception_inside_group_leaves_tail_undurable(self):
        wal = WriteAheadLog(4096, IOStats())
        with pytest.raises(RuntimeError):
            with wal.group_commit():
                wal.append_memo_change(1, 1)
                raise RuntimeError("boom")
        assert wal.durable_records() == 0
        assert wal.crash_truncate() == 1
        assert len(wal) == 0

    def test_crash_mid_group_loses_undurable_records(self):
        inj = FaultInjector()
        wal = WriteAheadLog(4096, IOStats(), faults=inj)
        wal.append_memo_change(0, 1)  # durable before the batch
        inj.arm("wal.append", skip=2)
        with pytest.raises(SimulatedCrash):
            with wal.group_commit():
                wal.append_memo_change(1, 2)
                wal.append_memo_change(2, 3)
                wal.append_memo_change(3, 4)  # crashes here
        assert wal.durable_records() == 1
        lost = wal.crash_truncate()
        assert lost == 2
        assert [r.payload for r in wal.read_from(0)] == [(0, 1)]
        assert not wal.in_group_commit  # crash reset the group state

    def test_crash_at_group_commit_force_loses_batch(self):
        inj = FaultInjector()
        wal = WriteAheadLog(4096, IOStats(), faults=inj)
        inj.arm("wal.force")
        with pytest.raises(SimulatedCrash):
            with wal.group_commit():
                wal.append_memo_change(1, 1)
                wal.append_memo_change(2, 2)
        # The closing force crashed before flushing: the whole batch is
        # volatile, exactly like a crash an instant before the force.
        assert wal.durable_records() == 0
        assert wal.crash_truncate() == 2


class TestBatchCrashRecovery:
    def _tree_with_faults(self):
        tree = build_rum_tree(
            node_size=SMALL_NODE,
            recovery_option="III",
            checkpoint_interval=1_000,
        )
        inj = FaultInjector()
        tree.wal.faults = inj
        return tree, inj

    def test_crash_at_closing_force_keeps_inserted_entries(self):
        from repro.core.recovery import recover_option_iii

        tree, inj = self._tree_with_faults()
        populate(tree, 30, seed=81)
        tree.write_checkpoint()
        stamps_at_checkpoint = tree.stamps.current

        # Crash on the group-commit force at batch end (skip=1 lets the
        # stamp lease's immediate force through first).  Every insertion
        # of the batch already reached the (durable) tree; only the memo
        # records' tail dies.
        inj.arm("wal.force", skip=1)
        rng = random.Random(82)
        ops = [
            ("update", oid, _rect(rng.random(), rng.random()))
            for oid in range(10)
        ]
        with pytest.raises(SimulatedCrash):
            tree.apply_batch(ops)
        stamps_attempted = tree.stamps.current
        assert stamps_attempted == stamps_at_checkpoint + 10

        lost = tree.wal.crash_truncate()
        assert lost > 0  # the undurable tail of the batch died
        tree.crash()
        inj.disarm()
        report = recover_option_iii(tree)

        # The stamp lease survived (forced before the batch body), so
        # the recovered counter dominates every stamp the batch handed
        # out — none can be reissued onto an orphaned tree entry.
        assert tree.stamps.current == stamps_attempted
        # The lease's range is not covered by durable records, so the
        # recovery detected the torn batch and paid the leaf scan.
        assert report.leaf_entries_scanned > 0
        check_tree(tree)

        # Torn-batch contract: an operation counts as applied iff its
        # entry reached the tree or its record became durable.  Here
        # every insertion ran before the crashing force, so all ten
        # updates are visible despite their lost records.
        expected = {op[1]: op[2] for op in ops}
        results = dict(tree.search(Rect(0, 0, 1, 1)))
        for oid, rect in expected.items():
            assert results[oid] == rect
        assert len(results) == 30

    def test_crash_mid_batch_applies_physical_prefix_only(self):
        from repro.core.recovery import recover_option_iii

        tree, inj = self._tree_with_faults()
        positions = populate(tree, 30, seed=83)
        tree.write_checkpoint()

        # skip=5 lets the stamp lease's append plus four memo appends
        # through, then crashes while appending the fifth memo record:
        # four operations fully applied (record + insert), the rest
        # never happened.
        inj.arm("wal.append", skip=5)
        rng = random.Random(84)
        ops = [
            ("update", oid, _rect(rng.random(), rng.random()))
            for oid in range(10)
        ]
        with pytest.raises(SimulatedCrash):
            tree.apply_batch(ops)

        tree.wal.crash_truncate()
        tree.crash()
        inj.disarm()
        recover_option_iii(tree)
        check_tree(tree)

        # The batch plan Z-orders the upserts, so "the first four" are
        # the first four of the plan, not of the input batch.
        from repro.core.batch import plan_batch

        applied = {u.oid: u.rect for u in plan_batch(ops).upserts[:4]}
        expected = dict(positions)
        expected.update(applied)
        assert dict(tree.search(Rect(0, 0, 1, 1))) == expected

    def test_sequential_updates_after_recovered_batch_crash(self):
        from repro.core.recovery import recover_option_iii

        tree, inj = self._tree_with_faults()
        populate(tree, 30, seed=85)
        tree.write_checkpoint()
        inj.arm("wal.force", skip=1)
        rng = random.Random(86)
        with pytest.raises(SimulatedCrash):
            tree.apply_batch(
                [
                    ("update", oid, _rect(rng.random(), rng.random()))
                    for oid in range(10)
                ]
            )
        tree.wal.crash_truncate()
        tree.crash()
        inj.disarm()
        recover_option_iii(tree)

        # Life goes on: stamps issued after recovery never collide with
        # the crashed batch's orphans, and the tree stays consistent.
        for oid in range(30):
            tree.update_object(oid, None, _rect(rng.random(), rng.random()))
        check_tree(tree)
        assert len(tree.search(Rect(0, 0, 1, 1))) == 30

    def test_committed_batch_survives_crash(self):
        from repro.core.recovery import recover_option_iii

        tree, inj = self._tree_with_faults()
        populate(tree, 30, seed=91)
        tree.write_checkpoint()
        rng = random.Random(92)
        ops = [
            ("update", oid, _rect(rng.random(), rng.random()))
            for oid in range(10)
        ]
        result = tree.apply_batch(ops)
        assert result.applied == 10
        expected = sorted(tree.search(Rect(0, 0, 1, 1)))
        stamp_after = tree.stamps.current

        # Crash *after* the batch committed: everything must survive.
        tree.wal.crash_truncate()
        tree.crash()
        recover_option_iii(tree)
        assert tree.stamps.current == stamp_after
        assert sorted(tree.search(Rect(0, 0, 1, 1))) == expected
        check_tree(tree)


# ---------------------------------------------------------------------------
# Observability wiring
# ---------------------------------------------------------------------------


class TestBatchObservability:
    def test_batch_counters_and_span(self):
        from repro.obs import ListEventSink, Observability

        sink = ListEventSink()
        obs = Observability(level="trace", sink=sink)
        tree = build_rum_tree(node_size=SMALL_NODE, obs=obs)
        populate(tree, 20, seed=101)
        sink.events.clear()
        ops = [("update", 1, _rect(0.5, 0.5))] * 3 + [
            ("update", 2, _rect(0.6, 0.6))
        ]
        tree.apply_batch(ops)
        reg = obs.registry
        assert reg.counter("tree.batches").value == 1
        assert reg.counter("tree.batch_ops").value == 4
        assert reg.counter("tree.batch_deduped").value == 2
        spans = [
            e for e in sink.of_type("span") if e["name"] == "update_batch"
        ]
        assert len(spans) == 1
        assert spans[0]["ops"] == 4
        assert spans[0]["deduped"] == 2
