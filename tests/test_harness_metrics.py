"""Tests for the experiment-harness measurement containers and helpers."""

import pytest

from repro.experiments.comparison import relative_to
from repro.experiments.harness import (
    ExperimentResult,
    QueryMeasurement,
    TraceMeasurement,
    UpdateMeasurement,
)
from repro.storage.iostats import IOSnapshot


class TestUpdateMeasurement:
    def test_per_update_averages(self):
        m = UpdateMeasurement(
            updates=100,
            io=IOSnapshot(leaf_reads=110, leaf_writes=120, log_writes=50),
            cpu_seconds=0.25,
        )
        assert m.io_per_update == pytest.approx(2.8)  # includes the log
        assert m.leaf_io_per_update == pytest.approx(2.3)
        assert m.cpu_ms_per_update == pytest.approx(2.5)

    def test_zero_updates(self):
        m = UpdateMeasurement(updates=0, io=IOSnapshot(), cpu_seconds=0.0)
        assert m.io_per_update == 0.0
        assert m.leaf_io_per_update == 0.0
        assert m.cpu_ms_per_update == 0.0

    def test_index_io_counted(self):
        m = UpdateMeasurement(
            updates=10,
            io=IOSnapshot(leaf_reads=10, leaf_writes=10, index_reads=10,
                          index_writes=5),
            cpu_seconds=0.0,
        )
        # The FUR-tree's secondary-index traffic is part of its update cost.
        assert m.io_per_update == pytest.approx(3.5)


class TestQueryAndTraceMeasurement:
    def test_query_average(self):
        m = QueryMeasurement(
            queries=50, io=IOSnapshot(leaf_reads=150), cpu_seconds=0.0
        )
        assert m.io_per_query == pytest.approx(3.0)

    def test_zero_queries(self):
        m = QueryMeasurement(queries=0, io=IOSnapshot(), cpu_seconds=0.0)
        assert m.io_per_query == 0.0

    def test_trace_average(self):
        m = TraceMeasurement(
            operations=20,
            updates=15,
            queries=5,
            io=IOSnapshot(leaf_reads=30, leaf_writes=10),
        )
        assert m.io_per_operation == pytest.approx(2.0)

    def test_zero_trace(self):
        m = TraceMeasurement(0, 0, 0, IOSnapshot())
        assert m.io_per_operation == 0.0


class TestRelativeTo:
    def test_normalisation(self):
        rows = [
            {"tree": "A", "io": 4.0},
            {"tree": "A", "io": 6.0},
            {"tree": "B", "io": 2.0},
            {"tree": "B", "io": 3.0},
        ]
        rel = relative_to(rows, "io", "A")
        assert rel["A"] == pytest.approx(1.0)
        assert rel["B"] == pytest.approx(0.5)

    def test_missing_baseline(self):
        assert relative_to([{"tree": "A", "io": 1.0}], "io", "Z") == {}


class TestExperimentResult:
    def test_column(self):
        result = ExperimentResult("x", "y")
        result.rows = [{"a": 1}, {"a": 2}]
        assert result.column("a") == [1, 2]
