"""Tests for the Eraser-style race detector (``repro.concurrency.racecheck``).

Three layers:

* the lockset/vector-clock algorithm on synthetic objects (seeded races
  must be flagged, disciplined code must not be);
* seeded races on the *real* structures — an unprotected concurrent
  ``UpdateMemo.record_update`` is the canonical bug the paper's locking
  protocol exists to prevent;
* clean runs: the concurrency harness and the mixed stress harness over
  a real RUM-tree report **zero** races, with an invariant oracle on the
  final tree state.

Eraser is schedule-insensitive: two unordered threads touching a field
race *deterministically* in the checker's eyes even if the OS never
interleaves them, so none of these tests depend on timing.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import racecheck
from repro.concurrency.locks import ReadWriteLock
from repro.concurrency.racecheck import RaceChecker, TrackedLock
from repro.concurrency.throughput import (
    ConcurrentHarness,
    MixedStressHarness,
    build_mixed_ops,
)
from repro.core.memo import UpdateMemo
from repro.core.stamp import StampCounter
from repro.factory import build_rum_tree
from repro.obs import Observability
from repro.rtree.geometry import Rect
from repro.workload.trace import QueryOp, UpdateOp


@pytest.fixture()
def checker():
    """A fresh checker installed as the process-wide ACTIVE one."""
    chk = racecheck.activate(RaceChecker())
    try:
        yield chk
    finally:
        racecheck.deactivate()


def run_threads(*targets):
    threads = [
        threading.Thread(target=fn, name=f"rc-test-{i}")
        for i, fn in enumerate(targets)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class Shared:
    """A bare object to hang checker-visible fields on."""


class TestLocksetAlgorithm:
    def test_unprotected_shared_write_is_a_race(self, checker):
        obj = Shared()

        def writer():
            checker.access(obj, "field", write=True)

        run_threads(writer, writer)
        assert checker.race_count >= 1
        assert checker.races[0].field == "field"

    def test_consistent_mutex_is_clean(self, checker):
        obj = Shared()
        lock = TrackedLock(threading.Lock())

        def writer():
            with lock:
                checker.access(obj, "field", write=True)

        run_threads(writer, writer)
        assert checker.race_count == 0

    def test_distinct_locks_race(self, checker):
        # Deterministic interleaving (main, worker, main): after the
        # worker's access the candidate set is {lock_b}; the main
        # thread's second access drains it to empty under lock_a.
        obj = Shared()
        lock_a = TrackedLock(threading.Lock())
        lock_b = TrackedLock(threading.Lock())

        def worker():
            with lock_b:
                checker.access(obj, "field", write=True)

        with lock_a:
            checker.access(obj, "field", write=True)
        run_threads(worker)
        with lock_a:
            checker.access(obj, "field", write=True)
        assert checker.race_count >= 1

    def test_read_only_sharing_is_clean(self, checker):
        obj = Shared()

        def reader():
            checker.access(obj, "field", write=False)

        run_threads(reader, reader)
        assert checker.race_count == 0

    def test_read_mode_hold_does_not_protect_writes(self, checker):
        # Mode-awareness: two writers sharing one *read* lock are not
        # mutually excluded — the checker must not count read holds
        # toward a write's candidate lockset.
        obj = Shared()
        latch = ReadWriteLock()

        def writer():
            with latch.read():
                checker.access(obj, "field", write=True)

        run_threads(writer, writer)
        assert checker.race_count >= 1

    def test_write_mode_hold_protects(self, checker):
        obj = Shared()
        latch = ReadWriteLock()

        def writer():
            with latch.write():
                checker.access(obj, "field", write=True)

        run_threads(writer, writer)
        assert checker.race_count == 0

    def test_fields_are_independent(self, checker):
        obj = Shared()

        def writer(field):
            checker.access(obj, field, write=True)

        run_threads(lambda: writer("a"), lambda: writer("a"))
        run_threads(lambda: writer("b"))
        assert checker.race_count == 1
        assert checker.races[0].field == "a"

    def test_race_reported_once_per_location(self, checker):
        obj = Shared()

        def writer():
            for _ in range(5):
                checker.access(obj, "field", write=True)

        run_threads(writer, writer)
        assert checker.race_count == 1


class TestHappensBefore:
    def test_fork_join_lifecycle_is_clean(self, checker):
        # The classic Eraser false positive: parent initialises without
        # locks, workers mutate under a lock, parent reads after join.
        obj = Shared()
        lock = TrackedLock(threading.Lock())
        checker.access(obj, "field", write=True)  # unlocked init

        def worker():
            with lock:
                checker.access(obj, "field", write=True)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            checker.note_fork(t)
            t.start()
        for t in threads:
            t.join()
            checker.note_join(t)
        checker.access(obj, "field", write=True)  # unlocked post-join read-back
        assert checker.race_count == 0

    def test_missing_fork_edge_is_a_race(self, checker):
        # Same shape without the fork edge: the parent's unlocked init
        # is unordered with the worker's write, and must be flagged.
        obj = Shared()
        checker.access(obj, "field", write=True)

        def worker():
            checker.access(obj, "field", write=True)

        run_threads(worker)
        assert checker.race_count == 1

    def test_ownership_transfer(self, checker):
        # Sequential hand-off through fork edges: each owner mutates
        # without locks, but never concurrently with another.
        obj = Shared()
        checker.access(obj, "field", write=True)

        def owner():
            checker.access(obj, "field", write=True)

        first = threading.Thread(target=owner)
        checker.note_fork(first)
        first.start()
        first.join()
        checker.note_join(first)

        second = threading.Thread(target=owner)
        checker.note_fork(second)
        second.start()
        second.join()
        checker.note_join(second)
        assert checker.race_count == 0


class TestReporting:
    def _seed_race(self, checker):
        obj = Shared()

        def writer():
            checker.access(obj, "damaged", write=True)

        run_threads(writer, writer)
        return obj

    def test_report_carries_location_and_stacks(self, checker):
        self._seed_race(checker)
        report = checker.races[0]
        assert report.location == "Shared.damaged"
        rendered = report.render()
        assert "RC001" in rendered
        assert "Shared.damaged" in rendered
        assert "rc-test-" in rendered  # the racing thread's name
        assert "test_racecheck.py" in rendered  # a real stack frame

    def test_assert_no_races_raises_with_report(self, checker):
        self._seed_race(checker)
        with pytest.raises(RuntimeError, match="RC001"):
            checker.assert_no_races()

    def test_clean_checker_reports_clean(self, checker):
        assert "no data races" in checker.report()
        checker.assert_no_races()

    def test_obs_counter(self, checker):
        obs = Observability(level="metrics")
        checker.attach_obs(obs)
        self._seed_race(checker)
        assert obs.registry.counter("racecheck.races").value == 1

    def test_reset_forgets_everything(self, checker):
        self._seed_race(checker)
        checker.reset()
        assert checker.race_count == 0
        self._seed_race(checker)
        assert checker.race_count == 1


class TestActivation:
    def test_env_activation(self, monkeypatch):
        racecheck.deactivate()
        monkeypatch.setenv("REPRO_RACECHECK", "1")
        try:
            assert racecheck.env_enabled()
            chk = racecheck.from_env()
            assert chk is not None
            assert racecheck.active() is chk
            # Idempotent: a second from_env returns the same checker.
            assert racecheck.from_env() is chk
        finally:
            racecheck.deactivate()

    def test_env_zero_and_empty_disable(self, monkeypatch):
        racecheck.deactivate()
        for value in ("0", ""):
            monkeypatch.setenv("REPRO_RACECHECK", value)
            assert not racecheck.env_enabled()
            assert racecheck.from_env() is None

    def test_make_lock_tracks_when_active(self, checker):
        from repro.concurrency.primitives import make_lock

        lock = make_lock()
        assert isinstance(lock, TrackedLock)
        with lock:
            assert checker.held_locks()
        assert checker.held_locks() == []


class TestSeededRacesOnRealStructures:
    def test_unlocked_memo_updates_race(self, checker):
        # The canonical seeded bug: two threads record updates into the
        # same memo bucket without taking the bucket lock (Section 3.5's
        # protocol requires it).  The detector must flag the bucket.
        memo = UpdateMemo(n_buckets=4)
        memo.attach_racecheck(checker)
        stamps = iter(range(1, 10001))
        stamp_lock = threading.Lock()

        def updater():
            for _ in range(50):
                with stamp_lock:
                    stamp = next(stamps)
                memo.record_update(7, stamp)

        run_threads(updater, updater)
        assert checker.race_count >= 1
        assert "bucket[" in checker.races[0].field

    def test_locked_memo_updates_clean(self, checker):
        # Same workload, disciplined: each thread holds the bucket lock
        # across its record_update.  Zero races.
        memo = UpdateMemo(n_buckets=4)
        memo.attach_racecheck(checker)
        stamps = iter(range(1, 10001))
        stamp_lock = threading.Lock()

        def updater():
            for _ in range(50):
                with stamp_lock:
                    stamp = next(stamps)
                with memo.bucket_lock(7):
                    memo.record_update(7, stamp)

        run_threads(updater, updater)
        assert checker.race_count == 0

    def test_stamp_counter_is_internally_safe(self, checker):
        # StampCounter locks internally — raw concurrent use is clean.
        stamps = StampCounter()
        stamps.attach_racecheck(checker)

        def worker():
            for _ in range(100):
                stamps.next()

        run_threads(worker, worker)
        assert checker.race_count == 0
        assert stamps.current == 201

    def test_unlocked_snapshot_against_locked_writer_races(self, checker):
        # A lockless whole-table snapshot concurrent with a locked
        # bucket writer is still a race on that bucket: the snapshot
        # holds nothing, so the candidate lockset drains to empty.
        memo = UpdateMemo(n_buckets=2)
        memo.attach_racecheck(checker)

        def writer():
            for stamp in range(1, 51):
                with memo.bucket_lock(3):
                    memo.record_update(3, stamp)

        memo.snapshot()  # main-thread scan, no locks held
        run_threads(writer)
        memo.snapshot()  # drains the bucket's candidate set to empty
        assert checker.race_count >= 1


class TestCleanRealTreeRuns:
    """The detector must be silent over the disciplined harnesses."""

    def _workload(self, n_objects=40, n_ops=120, seed=3):
        import random

        rng = random.Random(seed)
        positions = {}
        initial = []
        for oid in range(n_objects):
            x, y = rng.random() * 0.95, rng.random() * 0.95
            rect = Rect(x, y, x + 0.02, y + 0.02)
            positions[oid] = rect
            initial.append((oid, rect))
        ops = []
        for _ in range(n_ops):
            if rng.random() < 0.6:
                oid = rng.randrange(n_objects)
                x, y = rng.random() * 0.95, rng.random() * 0.95
                new = Rect(x, y, x + 0.02, y + 0.02)
                ops.append(UpdateOp(oid, positions[oid], new))
                positions[oid] = new
            else:
                x, y = rng.random() * 0.8, rng.random() * 0.8
                ops.append(QueryOp(Rect(x, y, x + 0.15, y + 0.15)))
        return initial, ops

    def test_concurrent_harness_zero_races(self, checker):
        tree = build_rum_tree()
        initial, ops = self._workload()
        for oid, rect in initial:
            tree.insert(rect, oid)
        harness = ConcurrentHarness(tree, io_latency=0.0)
        assert harness.racecheck is checker
        harness.run(ops, n_threads=4)
        assert checker.report() == "racecheck: no data races detected"
        checker.assert_no_races()

    def test_mixed_stress_zero_races_and_invariants(self, checker):
        tree = build_rum_tree()
        initial, ops = build_mixed_ops(
            30, 90, batch_every=10, batch_size=4, clean_every=25
        )
        for oid, rect in initial:
            tree.insert(rect, oid)
        harness = MixedStressHarness(tree, io_latency=0.0)
        harness.run(ops, n_threads=4)
        checker.assert_no_races()
        # Invariant oracle: whatever interleaving ran, the tree must
        # serve exactly one latest entry per object.
        results = tree.search(Rect(0.0, 0.0, 1.0, 1.0))
        oids = [oid for oid, _rect in results]
        assert sorted(oids) == list(range(30))

    def test_detached_tree_pays_nothing(self):
        # With no checker active the instrumented paths must not touch
        # racecheck at all (the A/B benchmark quantifies this; here we
        # just pin the attach/detach contract).
        assert racecheck.active() is None
        tree = build_rum_tree()
        tree.insert(Rect(0, 0, 0.1, 0.1), 1)
        assert tree._rc is None
        assert tree.memo._rc is None
        assert tree.stamps._rc is None
        checker = RaceChecker()
        tree.attach_racecheck(checker)
        assert tree.memo._rc is checker
        tree.attach_racecheck(None)
        assert tree.memo._rc is None
