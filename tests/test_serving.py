"""Tests for the sharded serving layer (``repro.serving``).

Covers the router (routing, migration, fan-out merge, kNN), the wire
protocol's framing edge cases, and a live server/client round trip over
a real socket.
"""

import socket
import threading

import pytest

from repro.rtree.geometry import Rect
from repro.serving import ServingClient, ShardRouter, ShardServer
from repro.serving.protocol import (
    MAX_FRAME,
    recv_frame,
    rect_from_wire,
    rect_to_wire,
    results_to_wire,
    send_frame,
)


def _square(x, y, half=0.01):
    return Rect(x - half, y - half, x + half, y + half)


class TestShardRouterBasics:
    def test_upsert_query_delete(self):
        with ShardRouter(4) as router:
            router.upsert(1, _square(0.2, 0.2))
            router.upsert(2, _square(0.8, 0.8))
            assert router.count_objects() == 2
            hits = router.query(Rect(0.1, 0.1, 0.3, 0.3))
            assert [oid for oid, _ in hits] == [1]
            assert router.delete(1)
            assert not router.delete(1)  # second delete: gone
            assert router.count_objects() == 1
            assert router.query(Rect(0.1, 0.1, 0.3, 0.3)) == []

    def test_single_shard_router(self):
        with ShardRouter(1) as router:
            for oid in range(20):
                router.upsert(oid, _square(oid / 20.0, oid / 20.0))
            assert router.count_objects() == 20
            assert router.shard_object_counts() == [20]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(3)

    def test_update_moves_object(self):
        with ShardRouter(4) as router:
            router.upsert(7, _square(0.1, 0.1))
            router.upsert(7, _square(0.15, 0.15))  # same shard
            assert router.count_objects() == 1
            hits = router.query(Rect(0.0, 0.0, 0.3, 0.3))
            assert len(hits) == 1
            assert hits[0][1].xmin == pytest.approx(0.14)

    def test_objects_distribute_across_shards(self):
        with ShardRouter(4) as router:
            for oid in range(200):
                router.upsert(
                    oid, _square((oid % 20) / 20.0 + 0.02,
                                 (oid // 20) / 10.0 + 0.03)
                )
            counts = router.shard_object_counts()
            assert sum(counts) == 200
            assert all(c > 0 for c in counts)


class TestMigration:
    def test_boundary_crossing_migrates(self):
        with ShardRouter(4) as router:
            # Shard layout at 2 bits: y then x split — (0.2, 0.2) and
            # (0.8, 0.8) are in different shards.
            first = router.upsert(42, _square(0.2, 0.2))
            second = router.upsert(42, _square(0.8, 0.8))
            assert not first["migrated"]
            assert second["migrated"]
            assert second["shard"] != first["shard"]
            assert router.count_objects() == 1
            # Only the new position answers queries.
            assert router.query(Rect(0.1, 0.1, 0.3, 0.3)) == []
            hits = router.query(Rect(0.7, 0.7, 0.9, 0.9))
            assert [oid for oid, _ in hits] == [42]
            assert router.stats()["tallies"]["migrations"] == 1

    def test_migration_leaves_old_shard_consistent(self):
        with ShardRouter(4) as router:
            for oid in range(50):
                router.upsert(oid, _square(0.1 + (oid % 10) * 0.02, 0.2))
            # March every object to the far corner: all migrate.
            for oid in range(50):
                router.upsert(oid, _square(0.8 + (oid % 10) * 0.01, 0.9))
            assert router.count_objects() == 50
            assert router.stats()["tallies"]["migrations"] == 50
            everywhere = router.query(Rect(0, 0, 1, 1))
            assert len(everywhere) == 50
            for shard in router.shards:
                shard.tree.check_invariants()

    def test_delete_after_migration(self):
        with ShardRouter(4) as router:
            router.upsert(5, _square(0.2, 0.2))
            router.upsert(5, _square(0.8, 0.8))
            assert router.delete(5)
            assert router.count_objects() == 0
            assert router.query(Rect(0, 0, 1, 1)) == []


class TestFanOut:
    def test_query_pad_finds_spilling_rect(self):
        with ShardRouter(4) as router:
            # Centre routes to the upper-right shard, but the rect
            # spills well into the lower-left one.
            router.upsert(1, Rect(0.45, 0.45, 0.56, 0.56))
            hits = router.query(Rect(0.40, 0.40, 0.47, 0.47))
            assert [oid for oid, _ in hits] == [1]

    def test_query_spanning_all_shards(self):
        with ShardRouter(4) as router:
            for oid in range(40):
                router.upsert(
                    oid, _square((oid % 8) / 8.0 + 0.05,
                                 (oid // 8) / 5.0 + 0.05)
                )
            hits = router.query(Rect(0, 0, 1, 1))
            assert [oid for oid, _ in hits] == list(range(40))

    def test_knn_across_shards(self):
        with ShardRouter(4) as router:
            # A ring of points around the centre, one per quadrant.
            positions = {
                1: (0.45, 0.45), 2: (0.55, 0.45),
                3: (0.45, 0.55), 4: (0.55, 0.55),
                5: (0.1, 0.1), 6: (0.9, 0.9),
            }
            for oid, (x, y) in positions.items():
                router.upsert(oid, _square(x, y))
            got = router.nearest_neighbors(0.5, 0.5, 4)
            assert sorted(oid for oid, _ in got) == [1, 2, 3, 4]
            assert router.nearest_neighbors(0.5, 0.5, 0) == []
            everyone = router.nearest_neighbors(0.5, 0.5, 100)
            assert len(everyone) == 6

    def test_knn_sees_only_latest_position(self):
        with ShardRouter(4) as router:
            router.upsert(9, _square(0.5, 0.5))
            router.upsert(9, _square(0.9, 0.9))  # migrates away
            got = router.nearest_neighbors(0.5, 0.5, 1)
            assert len(got) == 1
            oid, rect = got[0]
            assert oid == 9
            assert rect.xmin == pytest.approx(0.89)

    def test_stats_shape(self):
        with ShardRouter(2) as router:
            router.upsert(1, _square(0.3, 0.3))
            stats = router.stats()
            assert stats["n_shards"] == 2
            assert stats["objects"] == 1
            assert len(stats["shards"]) == 2
            assert stats["tallies"]["updates"] == 1
            import json

            json.dumps(stats)  # must be JSON-serialisable as promised


class TestProtocol:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_frame_round_trip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping", "n": 3})
            assert recv_frame(b) == {"op": "ping", "n": 3}
        finally:
            a.close()
            b.close()

    def test_eof_between_frames_is_none(self):
        a, b = self._pair()
        send_frame(a, {"op": "ping"})
        a.close()
        try:
            assert recv_frame(b) == {"op": "ping"}
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = self._pair()
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        import struct

        a, b = self._pair()
        a.sendall(struct.pack(">I", MAX_FRAME + 1))
        try:
            with pytest.raises(ValueError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_outbound_frame_rejected(self):
        a, b = self._pair()
        try:
            with pytest.raises(ValueError):
                send_frame(a, {"blob": "x" * (MAX_FRAME + 1)})
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        import struct

        a, b = self._pair()
        payload = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        try:
            with pytest.raises(ValueError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_rect_wire_round_trip(self):
        rect = Rect(0.1, 0.2, 0.3, 0.4)
        assert rect_from_wire(rect_to_wire(rect)) == rect
        with pytest.raises(ValueError):
            rect_from_wire([1.0, 2.0])
        assert results_to_wire([(7, rect)]) == [[7, [0.1, 0.2, 0.3, 0.4]]]


class TestServer:
    def test_round_trip_over_socket(self):
        router = ShardRouter(4)
        with ShardServer(router) as server:
            host, port = server.address
            with ServingClient(host, port) as client:
                assert client.ping()
                result = client.upsert(1, _square(0.2, 0.2))
                assert result["migrated"] is False
                client.upsert(2, _square(0.8, 0.8))
                assert client.count() == 2
                hits = client.query(Rect(0.1, 0.1, 0.3, 0.3))
                assert [oid for oid, _ in hits] == [1]
                near = client.nearest_neighbors(0.8, 0.8, 1)
                assert [oid for oid, _ in near] == [2]
                assert client.delete(1)
                assert client.count() == 1
                stats = client.stats()
                assert stats["n_shards"] == 4

    def test_server_error_response(self):
        router = ShardRouter(1)
        with ShardServer(router) as server:
            host, port = server.address
            with ServingClient(host, port) as client:
                with pytest.raises(RuntimeError, match="unknown op"):
                    client.request({"op": "no-such-op"})
                # The connection survives an error response.
                assert client.ping()

    def test_concurrent_clients(self):
        router = ShardRouter(4)
        errors = []
        with ShardServer(router) as server:
            host, port = server.address

            def worker(base):
                try:
                    with ServingClient(host, port) as client:
                        for i in range(25):
                            oid = base * 1000 + i
                            client.upsert(
                                oid, _square((base + 1) / 10.0, i / 30.0)
                            )
                        client.query(Rect(0, 0, 1, 1))
                except Exception as exc:  # surfaced after the join
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(k,)) for k in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            with ServingClient(host, port) as client:
                assert client.count() == 150

    def test_stop_is_idempotent_and_double_start_rejected(self):
        router = ShardRouter(1)
        server = ShardServer(router)
        server.start()
        with pytest.raises(RuntimeError):
            server.start()
        server.stop()
        server.stop()  # second stop: no-op

    def test_stop_with_connected_client(self):
        # A client parked in recv() must not wedge shutdown.
        router = ShardRouter(1)
        server = ShardServer(router)
        host, port = server.start()
        client = ServingClient(host, port)
        assert client.ping()
        server.stop()
        client.close()
