"""Stress tests for the soundness of phantom inspection.

Phantom inspection (Lemma 1) is the most delicate part of the RUM-tree:
purging a *real* memo entry resurrects stale object versions.  Three
structural races can break the literal lemma — obsolete entries relocated
behind a token by a split, a condensation re-homing the cycle-start page
next to the token, and a dissolved cycle-start leaving its boundary leaf
unvisited.  The cleaner guards against all three (purge shields, the
minimum-step cycle floor, tainted cycles); these tests hammer exactly
those code paths.

The invariant asserted throughout: **at no point do two tree entries of
the same object both classify as LATEST**, and queries always match a
brute-force oracle.
"""

import random

import pytest

from conftest import SMALL_NODE, assert_search_matches_oracle
from repro.factory import build_rum_tree
from repro.rtree.geometry import Rect


def _no_duplicate_latest(tree) -> None:
    latest = {}
    for entry in tree.iter_leaf_entries():
        if not tree.memo.is_obsolete(entry.oid, entry.stamp):
            latest.setdefault(entry.oid, []).append(entry.stamp)
    duplicates = {k: v for k, v in latest.items() if len(v) > 1}
    assert not duplicates, f"objects with two LATEST entries: {duplicates}"


def _churn(tree, positions, rng, steps, jump=0.1):
    oids = list(positions)
    for _ in range(steps):
        oid = rng.choice(oids)
        x, y = positions[oid].center()
        nx = min(max(x + rng.uniform(-jump, jump), 0.0), 1.0)
        ny = min(max(y + rng.uniform(-jump, jump), 0.0), 1.0)
        new = Rect.from_point(nx, ny)
        tree.update_object(oid, None, new)
        positions[oid] = new


@pytest.mark.parametrize("seed", [104, 7, 99, 1234])
@pytest.mark.parametrize("ir", [0.3, 0.5, 1.0])
def test_no_duplicate_latest_under_churn(seed, ir):
    """Continuous churn with aggressive cleaning and the paper's
    single-cycle phantom rule never yields duplicate latest entries."""
    tree = build_rum_tree(
        node_size=SMALL_NODE,
        clean_upon_touch=False,
        inspection_ratio=ir,
        phantom_lag_cycles=1,
    )
    rng = random.Random(seed)
    positions = {}
    for oid in range(80):
        rect = Rect.from_point(rng.random(), rng.random())
        positions[oid] = rect
        tree.insert_object(oid, rect)
    for _round in range(8):
        _churn(tree, positions, rng, steps=60)
        _no_duplicate_latest(tree)
    assert_search_matches_oracle(tree, positions)


def test_reset_mid_stream_regression():
    """Regression for the dissolved-cycle-start race: resetting the
    cleaner mid-stream used to let the next purge fire after a cycle that
    skipped the re-homed boundary leaf."""
    tree = build_rum_tree(
        node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.5
    )
    rng = random.Random(104)
    positions = {}
    for oid in range(60):
        rect = Rect.from_point(rng.random(), rng.random())
        positions[oid] = rect
        tree.insert_object(oid, rect)
    for _round in range(6):
        _churn(tree, positions, rng, steps=100)
        tree.cleaner.reset()
        _no_duplicate_latest(tree)
    assert_search_matches_oracle(tree, positions)


def test_shrinking_population_heavy_condense():
    """Everything migrates into one corner: constant underflow,
    condensation, and ring churn while purges keep firing."""
    tree = build_rum_tree(
        node_size=SMALL_NODE,
        clean_upon_touch=False,
        inspection_ratio=1.0,
        phantom_lag_cycles=1,
    )
    rng = random.Random(42)
    positions = {}
    for oid in range(120):
        rect = Rect.from_point(rng.random(), rng.random())
        positions[oid] = rect
        tree.insert_object(oid, rect)
    for _round in range(4):
        for oid in range(120):
            new = Rect.from_point(
                rng.random() * 0.05, rng.random() * 0.05
            )
            tree.update_object(oid, None, new)
            positions[oid] = new
        _no_duplicate_latest(tree)
        tree.check_invariants()
    assert_search_matches_oracle(tree, positions)
    assert tree.cleaner.phantoms_purged > 0  # inspection did run


def test_purge_happens_eventually():
    """The guards delay purging but must not starve it: phantom entries
    from operations on non-existent objects do disappear."""
    tree = build_rum_tree(
        node_size=SMALL_NODE, clean_upon_touch=False, inspection_ratio=0.5
    )
    rng = random.Random(11)
    positions = {}
    for oid in range(60):
        rect = Rect.from_point(rng.random(), rng.random())
        positions[oid] = rect
        tree.insert_object(oid, rect)
    for oid in range(1000, 1020):
        tree.delete_object(oid)  # pure phantoms
    _churn(tree, positions, rng, steps=500)
    for _ in range(6):
        tree.cleaner.run_full_cycle()
    assert all(tree.memo.get(oid) is None for oid in range(1000, 1020))
