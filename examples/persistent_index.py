"""Persisting an index across processes.

Builds a RUM-tree over a road-network fleet, saves it to disk (real
files: ``pages.bin`` + allocation state + the Update Memo/stamp-counter
snapshot), re-opens it, and keeps updating — demonstrating that the saved
memo makes reloads instant, in contrast to the crash-recovery scans of
Section 3.4 (see ``examples/crash_recovery_demo.py`` for those).

Run with::

    python examples/persistent_index.py [directory]
"""

import sys
import tempfile

from repro import Rect, build_rum_tree, load_tree, save_tree
from repro.workload.objects import default_network_workload

FLEET = 800


def main() -> None:
    directory = (
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="rumtree_")
    )

    workload = default_network_workload(FLEET, moving_distance=0.02, seed=13)
    tree = build_rum_tree(node_size=2048, inspection_ratio=0.2)
    print(f"Indexing {FLEET} vehicles ...")
    for oid, rect in workload.initial():
        tree.insert_object(oid, rect)
    for oid, old, new in workload.updates(2 * FLEET):
        tree.update_object(oid, old, new)

    window = Rect(0.4, 0.4, 0.6, 0.6)
    before = sorted(oid for oid, _r in tree.search(window))
    print(f"Vehicles in the centre region: {len(before)}")

    print(f"Saving to {directory} ...")
    save_tree(tree, directory)
    del tree

    print("Re-opening ...")
    reloaded = load_tree(directory)
    after = sorted(oid for oid, _r in reloaded.search(window))
    assert after == before, "reloaded index must answer identically"
    print(f"Reloaded index agrees: {len(after)} vehicles")
    print(f"Memo entries restored: {len(reloaded.memo)}")
    print(f"Stamp counter restored at: {reloaded.stamps.current}")

    # Updates continue seamlessly on the file-backed index.
    for oid, old, new in workload.updates(FLEET):
        reloaded.update_object(oid, old, new)
    print(f"After {FLEET} more updates: "
          f"{len(reloaded.search(window))} vehicles in the centre region")
    print("Done — the index lives on in", directory)


if __name__ == "__main__":
    main()
