"""Fleet monitoring: the paper's motivating scenario.

A fleet of vehicles moves along a road network and reports its position
every tick; dispatchers continuously run range queries ("which vehicles
are near this depot?").  This is exactly the update-heavy,
location-dependent workload Section 1 motivates: every position sample is
an index update.

The example tracks the fleet with a RUM-tree, prints live query results
for a set of monitoring regions, and reports the per-tick update cost —
which stays flat no matter how far the vehicles move.

Run with::

    python examples/fleet_monitoring.py
"""

from repro import Rect, build_rum_tree
from repro.workload.network import RoadNetwork
from repro.workload.objects import NetworkMovingObjects

FLEET_SIZE = 400
TICKS = 8
SPEED = 0.02  # distance travelled per tick


def main() -> None:
    network = RoadNetwork.grid(side=12, seed=3)
    fleet = NetworkMovingObjects(
        network, FLEET_SIZE, moving_distance=SPEED, seed=4
    )
    tree = build_rum_tree(node_size=4096, inspection_ratio=0.2)

    print(f"Road network: {network.num_nodes()} intersections, "
          f"{network.num_edges()} road segments")
    print(f"Registering fleet of {FLEET_SIZE} vehicles ...")
    for oid, rect in fleet.initial():
        tree.insert_object(oid, rect)

    depots = {
        "north depot": Rect(0.40, 0.75, 0.60, 0.95),
        "city centre": Rect(0.40, 0.40, 0.60, 0.60),
        "south depot": Rect(0.40, 0.05, 0.60, 0.25),
    }

    for tick in range(1, TICKS + 1):
        before = tree.stats.snapshot()
        # Every vehicle reports once per tick -> FLEET_SIZE updates.
        for oid, old_rect, new_rect in fleet.updates(FLEET_SIZE):
            tree.update_object(oid, old_rect, new_rect)
        update_io = (tree.stats.snapshot() - before).leaf_total

        print(f"\n--- tick {tick} "
              f"(avg update cost {update_io / FLEET_SIZE:.2f} I/Os) ---")
        for name, region in depots.items():
            vehicles = tree.search(region)
            print(f"  {name}: {len(vehicles)} vehicles in range")

    print("\nFinal index state:")
    print(f"  leaf nodes:          {tree.num_leaf_nodes()}")
    print(f"  obsolete entries:    {tree.garbage_count()}")
    print(f"  garbage ratio:       {tree.garbage_ratio(FLEET_SIZE):.3f}")
    print(f"  update-memo size:    {tree.memo_size_bytes()} bytes "
          f"({len(tree.memo)} entries)")


if __name__ == "__main__":
    main()
