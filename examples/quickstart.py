"""Quickstart: index moving objects with a RUM-tree.

Demonstrates the public API end to end: build a tree, insert objects,
update them *without supplying their old positions* (the point of the
memo-based approach), run range queries, delete, and read the
cost/garbage statistics.

Run with::

    python examples/quickstart.py
"""

from repro import Rect, build_rum_tree


def main() -> None:
    # A RUM-tree on a simulated disk with the paper's default 8 KiB pages
    # and a garbage cleaner inspecting one leaf per five updates (ir=20%).
    tree = build_rum_tree(node_size=8192, inspection_ratio=0.2)

    # Insert a few hundred point objects.
    print("Inserting 500 objects ...")
    for oid in range(500):
        x = (oid * 37 % 500) / 500.0
        y = (oid * 91 % 500) / 500.0
        tree.insert_object(oid, Rect.from_point(x, y))

    # Update an object: note that NO old position is required — the stale
    # entry is invalidated through the Update Memo and physically removed
    # later by the garbage cleaner.
    print("Moving object 42 to the centre ...")
    tree.update_object(42, None, Rect.from_point(0.5, 0.5))

    # Range query: the memo filters obsolete entries out of the raw
    # R-tree answer set, so only current positions come back.
    window = Rect(0.45, 0.45, 0.55, 0.55)
    hits = tree.search(window)
    print(f"Objects in {window}: {sorted(oid for oid, _ in hits)}")

    # Deletion never touches the tree either — it is a memo operation.
    tree.delete_object(42)
    hits = tree.search(window)
    print(f"After deleting 42: {sorted(oid for oid, _ in hits)}")

    # Cost and hygiene statistics.
    stats = tree.stats.snapshot()
    print()
    print(f"Leaf I/O so far:        {stats.leaf_total}")
    print(f"Tree height:            {tree.height}")
    print(f"Leaf nodes:             {tree.num_leaf_nodes()}")
    print(f"Obsolete entries:       {tree.garbage_count()}")
    print(f"Update-memo entries:    {len(tree.memo)}")
    print(f"Update-memo size:       {tree.memo_size_bytes()} bytes")
    print(f"Cleaner inspections:    {tree.cleaner.leaves_inspected}")


if __name__ == "__main__":
    main()
