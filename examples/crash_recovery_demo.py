"""Crash-recovery walkthrough for the Update Memo (Section 3.4).

Runs the same update stream under the three logging options, crashes each
tree (the on-disk pages survive, the in-memory memo and stamp counter are
lost), recovers with the matching procedure, and prints the logging cost
paid during normal operation against the disk accesses needed to recover —
the trade-off of Figure 15 and Table 2.

Run with::

    python examples/crash_recovery_demo.py
"""

from repro import Rect
from repro.core.recovery import (
    recover_option_i,
    recover_option_ii,
    recover_option_iii,
)
from repro.experiments.harness import load_tree, make_tree, measure_updates
from repro.workload.objects import default_network_workload

NUM_OBJECTS = 1500
UPDATES = 4000
CHECKPOINT_EVERY = 1000


def main() -> None:
    procedures = {
        "I": ("no log", lambda t: recover_option_i(
            t, memory_budget_entries=NUM_OBJECTS // 10)),
        "II": ("UM checkpoints", recover_option_ii),
        "III": ("checkpoints + memo log", recover_option_iii),
    }
    print(
        f"{NUM_OBJECTS} objects, {UPDATES} updates, checkpoint every "
        f"{CHECKPOINT_EVERY} updates\n"
    )
    header = (
        f"{'option':<7}{'strategy':<26}{'log I/O':>9}{'recovery I/O':>14}"
        f"{'memo entries':>14}"
    )
    print(header)
    print("-" * len(header))

    for option, (label, recover) in procedures.items():
        workload = default_network_workload(
            NUM_OBJECTS, moving_distance=0.02, seed=11
        )
        tree = make_tree(
            "rum_touch",
            node_size=2048,
            recovery_option=option if option != "I" else None,
            checkpoint_interval=CHECKPOINT_EVERY,
        )
        load_tree(tree, workload.initial())
        measure_updates(tree, workload, UPDATES)
        logging_io = tree.stats.log_writes

        tree.crash()  # memo + stamp counter gone; disk pages intact
        report = recover(tree)

        print(
            f"{option:<7}{label:<26}{logging_io:>9,}"
            f"{report.disk_accesses:>14,}{report.memo_entries_after:>14,}"
        )

        # Prove the recovered tree still answers correctly.
        window = Rect(0.4, 0.4, 0.6, 0.6)
        hits = tree.search(window)
        oracle = sum(
            1
            for oid in range(NUM_OBJECTS)
            if workload.rect(oid).intersects(window)
        )
        assert len(hits) >= oracle  # superset recovery may keep phantoms
        tree.cleaner.run_full_cycle()  # one cycle restores exactness
        assert len(tree.search(window)) == oracle

    print(
        "\nOption I pays nothing while running but its recovery scan"
        "\nspills the per-object table to disk; Option III pays one forced"
        "\nlog write per update but recovers from the log alone."
    )


if __name__ == "__main__":
    main()
