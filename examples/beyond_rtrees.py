"""The memo-based approach beyond R-trees (Section 6 of the paper).

The paper's conclusion claims the update-memo technique generalises to
"B-trees, quadtrees and Grid Files".  This example runs the same
update-heavy workload against classic and memo-based variants of all
three — a B+-tree (indexing a frequently changing scalar), a PR
quadtree, and a grid file — and prints the per-update disk-access
comparison.

Run with::

    python examples/beyond_rtrees.py
"""

import random

from repro.extensions import (
    BPlusTree,
    GridFile,
    MemoBTree,
    MemoGrid,
    MemoQuadtree,
    PRQuadtree,
)

NUM_OBJECTS = 2000
UPDATES = 6000


def drive_btree(tree) -> float:
    rng = random.Random(21)
    keys = {}
    for oid in range(NUM_OBJECTS):
        keys[oid] = rng.random()
        tree.insert_object(oid, keys[oid])
    before = tree.stats.snapshot()
    for _ in range(UPDATES):
        oid = rng.randrange(NUM_OBJECTS)
        new = min(0.999, max(0.0, keys[oid] + rng.uniform(-0.05, 0.05)))
        tree.update_object(oid, keys[oid], new)
        keys[oid] = new
    return (tree.stats.snapshot() - before).leaf_total / UPDATES


def drive_grid(grid) -> float:
    rng = random.Random(22)
    pos = {}
    for oid in range(NUM_OBJECTS):
        pos[oid] = (rng.random(), rng.random())
        grid.insert_object(oid, *pos[oid])
    before = grid.stats.snapshot()
    for _ in range(UPDATES):
        oid = rng.randrange(NUM_OBJECTS)
        x, y = pos[oid]
        new = (
            min(1.0, max(0.0, x + rng.uniform(-0.1, 0.1))),
            min(1.0, max(0.0, y + rng.uniform(-0.1, 0.1))),
        )
        grid.update_object(oid, pos[oid], new)
        pos[oid] = new
    return (grid.stats.snapshot() - before).leaf_total / UPDATES


def main() -> None:
    print(f"{NUM_OBJECTS} objects, {UPDATES} updates\n")
    rows = [
        ("B+-tree, classic update", drive_btree(BPlusTree(node_size=2048))),
        (
            "B+-tree, memo-based",
            drive_btree(MemoBTree(node_size=2048, inspection_ratio=0.2)),
        ),
        ("quadtree, classic update", drive_grid(PRQuadtree(page_size=2048))),
        (
            "quadtree, memo-based",
            drive_grid(MemoQuadtree(page_size=2048, inspection_ratio=0.2)),
        ),
        ("grid file, classic update", drive_grid(GridFile(page_size=2048))),
        (
            "grid file, memo-based",
            drive_grid(MemoGrid(page_size=2048, inspection_ratio=0.2)),
        ),
    ]
    width = max(len(name) for name, _io in rows)
    print(f"{'structure / approach':<{width}}  I/Os per update")
    print("-" * (width + 17))
    for name, io_per_update in rows:
        print(f"{name:<{width}}  {io_per_update:>13.2f}")
    print(
        "\nThe memo variants reuse the RUM-tree's Update Memo, stamp"
        "\ncounter and lazy cleaning verbatim — only the underlying index"
        "\nchanged, supporting the paper's closing generality claim."
    )


if __name__ == "__main__":
    main()
