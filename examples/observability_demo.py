"""Observability: trace a RUM-tree workload and export its metrics.

Runs a small insert/update/query workload with the ``repro.obs`` layer
switched on, then dumps the three export formats:

* ``events.jsonl`` — one JSON object per span/event (the full trace);
* ``metrics.prom`` — Prometheus text exposition of every counter,
  gauge, and histogram;
* a per-interval metrics delta printed to stdout.

Run with::

    PYTHONPATH=src python examples/observability_demo.py [output-dir]

The same telemetry is available for every experiment via
``python -m repro.experiments fig10 --obs-out DIR``.
"""

import json
import pathlib
import sys

from repro import Rect, build_rum_tree
from repro.obs import (
    JsonlEventSink,
    Observability,
    prometheus_text,
    write_prometheus,
)


def main(out_dir: pathlib.Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    events_path = out_dir / "events.jsonl"
    events_path.unlink(missing_ok=True)  # fresh trace on every run

    # One Observability object wires a metrics registry, a span tracer,
    # and the JSONL sink together; attach_obs cascades it through the
    # whole storage stack (disk, buffer, memo, cleaner).
    obs = Observability(level="trace", sink=JsonlEventSink(events_path))
    tree = build_rum_tree(node_size=2048, inspection_ratio=0.25, obs=obs)

    print("Loading 400 objects ...")
    for oid in range(400):
        x = (oid * 37 % 400) / 400.0
        y = (oid * 91 % 400) / 400.0
        tree.insert_object(oid, Rect.from_point(x, y))

    # Snapshot the registry, run the measured interval, and diff — the
    # same delta discipline as IOStats.
    before = obs.registry.snapshot()
    print("Updating every object once and running 50 queries ...")
    for oid in range(400):
        x = (oid * 53 % 400) / 400.0
        y = (oid * 17 % 400) / 400.0
        tree.update_object(oid, None, Rect.from_point(x, y))
    for i in range(50):
        lo = (i % 10) / 10.0
        tree.search(Rect(lo, lo, lo + 0.2, lo + 0.2))
    delta = obs.registry.snapshot() - before

    print("\nPer-interval counters:")
    for name in (
        "tree.updates",
        "tree.queries",
        "disk.page_reads",
        "disk.page_writes",
        "buffer.hits",
        "buffer.misses",
        "cleaner.cycles",
        "cleaner.entries_removed",
    ):
        print(f"  {name:28s} {delta.counters.get(name, 0)}")
    update_io = delta.histograms["tree.update_leaf_io"]
    print(
        f"  mean leaf I/O per update     {update_io.mean:.2f} "
        f"({update_io.count} updates)"
    )

    prom_path = write_prometheus(obs.registry, out_dir / "metrics.prom")
    obs.close()

    # The trace is plain JSONL: every span carries its exact I/O delta.
    spans = [
        json.loads(line)
        for line in events_path.read_text().splitlines()
        if json.loads(line).get("type") == "span"
    ]
    updates = [s for s in spans if s["name"] == "update"]
    total_leaf_io = sum(
        s["io"]["leaf_reads"] + s["io"]["leaf_writes"] for s in updates
    )
    print(f"\nTrace: {len(spans)} spans in {events_path}")
    print(
        f"  {len(updates)} update spans accounting "
        f"{total_leaf_io} leaf I/Os"
    )

    print(f"\nPrometheus exposition ({prom_path}), first lines:")
    for line in prometheus_text(obs.registry).splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main(
        pathlib.Path(sys.argv[1])
        if len(sys.argv) > 1
        else pathlib.Path("obs_demo")
    )
