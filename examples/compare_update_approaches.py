"""Head-to-head comparison of the three update approaches.

Replays the same moving-object workload against the R*-tree (top-down
updates), the FUR-tree (bottom-up updates with a secondary index) and the
RUM-tree (memo-based updates), then prints a per-approach cost breakdown —
a miniature of the paper's Figure 12 that runs in seconds.

Run with::

    python examples/compare_update_approaches.py [moving_distance]
"""

import sys

from repro.experiments.harness import (
    auxiliary_size_bytes,
    load_tree,
    make_tree,
    measure_queries,
    measure_updates,
)
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator

NUM_OBJECTS = 3000
UPDATES = 6000
QUERIES = 200
NODE_SIZE = 2048


def main() -> None:
    distance = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04
    print(
        f"{NUM_OBJECTS} objects, {UPDATES} updates at moving distance "
        f"{distance}, {QUERIES} range queries, {NODE_SIZE}-byte nodes\n"
    )
    header = (
        f"{'approach':<18}{'update I/O':>11}{'search I/O':>11}"
        f"{'aux bytes':>11}{'garbage':>9}"
    )
    print(header)
    print("-" * len(header))

    for kind, label in (
        ("rstar", "top-down (R*)"),
        ("fur", "bottom-up (FUR)"),
        ("rum_touch", "memo (RUM)"),
    ):
        workload = default_network_workload(
            NUM_OBJECTS, moving_distance=distance, seed=7
        )
        tree = make_tree(kind, node_size=NODE_SIZE)
        load_tree(tree, workload.initial())
        update_cost = measure_updates(tree, workload, UPDATES)
        query_cost = measure_queries(
            tree, RangeQueryGenerator(side=0.01, seed=8), QUERIES
        )
        garbage = (
            f"{tree.garbage_count()}" if hasattr(tree, "garbage_count")
            else "-"
        )
        print(
            f"{label:<18}"
            f"{update_cost.io_per_update:>11.2f}"
            f"{query_cost.io_per_query:>11.2f}"
            f"{auxiliary_size_bytes(tree):>11,}"
            f"{garbage:>9}"
        )

    print(
        "\nupdate I/O counts leaf accesses plus each approach's auxiliary"
        "\nstructure traffic (secondary index for the FUR-tree); internal"
        "\nnodes are cached, as in Section 4 of the paper."
    )


if __name__ == "__main__":
    main()
