#!/usr/bin/env python
"""CI smoke for the sharded serving layer: socket server + racecheck.

Boots a :class:`~repro.serving.ShardServer` in-process with the race
detector active, drives a short Figure-16 mixed workload through real
TCP connections with the multi-client open-loop harness, and then
asserts:

* zero races reported by the detector (the server's fork/join edges
  and the router's stripe/latch discipline hold under live traffic);
* a non-empty latency report (every percentile present and positive);
* the routing directory's live count matches a full-square query.

Exit status is non-zero on any violation, so the CI ``serve`` job can
gate on it directly.  Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--shards N]
        [--clients N] [--ops N]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any, List

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.concurrency import racecheck
from repro.concurrency.racecheck import RaceChecker
from repro.concurrency.throughput import OpenLoopHarness
from repro.rtree.geometry import Rect
from repro.serving import ServingClient, ShardRouter, ShardServer
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import UpdateOp, mixed_trace


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--ops", type=int, default=240)
    parser.add_argument("--objects", type=int, default=600)
    args = parser.parse_args(argv)

    checker = racecheck.activate(RaceChecker())
    objects = default_network_workload(
        args.objects, moving_distance=0.02, seed=47
    )
    trace = mixed_trace(
        objects, RangeQueryGenerator(side=0.05, seed=53),
        args.ops, 0.5, seed=59,
    )

    router = ShardRouter(args.shards, node_size=1024)
    for oid, rect in objects.initial():
        router.upsert(oid, rect)

    clients: List[ServingClient] = []
    with ShardServer(router) as server:
        host, port = server.address

        def factory(k: int) -> Any:
            client = ServingClient(host, port)
            clients.append(client)  # closed after the run

            def execute(op: Any) -> None:
                if isinstance(op, UpdateOp):
                    client.upsert(op.oid, op.new_rect)
                else:
                    client.query(op.window)

            return execute

        harness = OpenLoopHarness(factory, n_clients=args.clients)
        result = harness.run(trace, rate=float("inf"))
        with ServingClient(host, port) as probe:
            live = probe.count()
            answered = len(probe.query(Rect(0.0, 0.0, 1.0, 1.0)))
            stats = probe.stats()
        for client in clients:
            client.close()

    failures = []
    if checker.race_count != 0:
        failures.append(
            f"race detector reported {checker.race_count} race(s):\n"
            + checker.report()
        )
    report = result.report()
    if len(result.latencies_ms) != len(trace):
        failures.append(
            f"latency report incomplete: {len(result.latencies_ms)} "
            f"samples for {len(trace)} ops"
        )
    for name, value in report.items():
        if value <= 0.0:
            failures.append(f"percentile {name} is not positive: {value}")
    if live != answered:
        failures.append(
            f"directory count {live} != full-square query {answered}"
        )

    print(
        f"serve smoke: {args.shards} shard(s), {args.clients} client(s), "
        f"{len(trace)} ops over TCP at {result.achieved_rate:.1f} ops/s"
    )
    print(
        "  latency p50 {p50_ms:.2f} ms  p95 {p95_ms:.2f} ms  "
        "p99 {p99_ms:.2f} ms  max {max_ms:.2f} ms".format(**report)
    )
    print(
        f"  {live} live objects, {stats['tallies']['migrations']} "
        f"migration(s), 0 races required"
    )
    racecheck.deactivate()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
