#!/usr/bin/env python
"""Observability smoke check — tiny workload at ``trace``, validated dump.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [OUT_DIR]

Runs a small RUM-tree workload (inserts, updates, range queries, kNN)
with the observability layer at ``trace`` level, then asserts the flight
recorder captured it:

* the dump is schema-tagged ``flight_recorder/v1`` and JSON-serialisable;
* the ring is non-empty and every record carries the full column set
  (seq/op/tree/duration_ms/io/memo_lookups/memo_hits/served_by/
  pages_touched) with a complete 8-field I/O block;
* every op class the workload exercised is present;
* the per-record ``OpRecord`` view round-trips through ``as_dict``.

Artifacts (``recorder.json``, ``metrics.prom``) are written to OUT_DIR
(default ``obs-smoke``) so CI can archive them; any violated check exits
non-zero with a diagnostic.  This is the CI leg that keeps the recorder
dump schema honest end to end — the unit tests pin the pieces, this pins
the assembled pipeline on a real workload.
"""

from __future__ import annotations

import json
import pathlib
import sys

EXPECTED_RECORD_KEYS = {
    "seq",
    "op",
    "tree",
    "duration_ms",
    "io",
    "memo_lookups",
    "memo_hits",
    "served_by",
    "pages_touched",
}


def fail(msg: str) -> "None":
    print(f"obs-smoke: FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_dir = pathlib.Path(argv[0] if argv else "obs-smoke")

    from repro.factory import build_rum_tree
    from repro.obs import Observability, write_prometheus
    from repro.obs.recorder import IO_FIELDS, SCHEMA, OpRecord
    from repro.rtree.geometry import Rect
    from repro.workload.objects import default_network_workload

    obs = Observability(level="trace", recorder_capacity=1024)
    tree = build_rum_tree(node_size=2048, obs=obs)
    workload = default_network_workload(120, moving_distance=0.02, seed=5)
    for oid, rect in workload.initial():
        tree.insert_object(oid, rect)
    for oid, old, new in workload.updates(200):
        tree.update_object(oid, old, new)
    for _ in range(5):
        tree.search(Rect(0.2, 0.2, 0.8, 0.8))
    tree.nearest_neighbors(0.5, 0.5, 4)

    dump = obs.recorder.dump()
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "recorder.json").write_text(json.dumps(dump, indent=1))
    write_prometheus(obs.registry, out_dir / "metrics.prom")

    # -- schema validation --------------------------------------------------
    if dump["schema"] != SCHEMA:
        fail(f"dump schema {dump['schema']!r}, expected {SCHEMA!r}")
    if json.loads(json.dumps(dump)) != dump:
        fail("dump does not survive a JSON round-trip")
    ops = dump["ops"]
    if not ops:
        fail("flight recorder ring is empty after the workload")
    if dump["recorded_total"] < 326:  # 120 + 200 + 5 + 1
        fail(
            f"recorded_total {dump['recorded_total']} below the "
            "326 instrumented ops the workload issued"
        )
    for record in ops + dump["slow_ops"]:
        if set(record) != EXPECTED_RECORD_KEYS:
            fail(
                f"record #{record.get('seq')} keys {sorted(record)} != "
                f"{sorted(EXPECTED_RECORD_KEYS)}"
            )
        if set(record["io"]) != set(IO_FIELDS):
            fail(f"record #{record['seq']} io block missing fields")
        OpRecord.from_dict(record)  # must reconstruct
    seen_ops = {r["op"] for r in ops}
    for expected in ("insert", "update", "query", "knn"):
        if expected not in seen_ops:
            fail(f"op class {expected!r} missing from the ring ({seen_ops})")
    queries = [r for r in ops if r["op"] == "query"]
    if not all(r["served_by"] in ("mirror", "traversal") for r in queries):
        fail("query record with unknown serving decision")
    if not any(r["memo_lookups"] > 0 for r in queries):
        fail("no query record carries memo inspections")

    print(
        f"obs-smoke: OK — {dump['recorded_total']} ops recorded, "
        f"{len(ops)} retained, {len(seen_ops)} op classes, "
        f"artifacts in {out_dir}/"
    )
    obs.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
