"""Assemble EXPERIMENTS.md from the archived benchmark outputs.

Run after `pytest benchmarks/ --benchmark-only`:

    python scripts/build_experiments_md.py
"""
import pathlib

RESULTS = pathlib.Path("benchmarks/results")

COMMENTARY = {
"fig10_inspection_ratio": ("Figure 10 — effect of the inspection ratio", """
**Paper:** update I/O grows with ir for both variants; the garbage ratio
"decreases rapidly when the inspection ratio increases to 20%", which the
paper picks as the sweet spot; the touch variant matches the token
variant's I/O while keeping garbage/memo far smaller.

**Measured:** identical shape. Update I/O tracks the 2(1+ir) model
(token: 2.23 at ir=0 up to ~3.7 at ir=1; the excess over the model is
split/ring maintenance). The token variant's garbage ratio collapses
~16x between ir=0 and ir=20% and is near its plateau there; the touch
variant's garbage is one to two orders of magnitude below the token
variant's at every ir, at slightly *lower* update I/O — both headline
claims of Section 5.1.1 reproduce.
"""),
"fig11_node_size": ("Figure 11 — effect of the node size", """
**Paper:** larger nodes mildly reduce update I/O (fewer splits), increase
update CPU (the cleaner inspects more entries per node), and sharply
reduce the garbage ratio; the paper fixes 8192 B afterwards.

**Measured:** same directions on all three panels — update I/O falls
slightly from 1024 to 8192 B, CPU per update grows, and the token
variant's garbage ratio drops by roughly half across the sweep.
"""),
"fig12_moving_distance": ("Figure 12(a,b,d) — varying the moving distance", """
**Paper:** R*-tree worst and roughly flat on updates; FUR-tree degrades
quickly as objects move farther (fewer in-place placements); RUM-tree
flat and cheapest (22% of R*, 40–70% of FUR). RUM search ~10% above R*;
FUR search peaks at intermediate distances (leaf-MBR extension bloat).
Memo far smaller than the FUR secondary index.

**Measured:** same ordering and shapes at simulator scale: the RUM-tree's
update cost is flat (2.23–2.41 I/Os) and 55–59% of the R*-tree's (which
sits near IO_search+3 ≈ 4.0); the FUR-tree starts at exactly 3 I/Os (all
in-place) and climbs to 6.9 as the distance grows — overtaking the
R*-tree past distance ≈ 0.03 and costing ~2.8x the RUM-tree at 0.16.
The FUR-tree's *search* cost degrades with distance (leaf-MBR extension
bloat, peaking once moves exceed the leaf extent), while the RUM-tree's
search cost is comparable to the R*-tree's — at this scale the paper's
+10% fanout effect is below the resolution of single-leaf queries. The
memo stays 1–2 orders of magnitude smaller than the secondary index
(fixed at one entry per object). Note the scale substitution
(DESIGN.md): with thousands of objects the leaves are larger, so the
FUR transition happens at proportionally larger absolute distances than
in the paper's 2M-object setup.
"""),
"fig12_overall_ratio": ("Figure 12(c) — overall cost vs update:query ratio", """
**Paper:** the RUM-tree's advantage grows with the update share; at
10000:1 its overall cost is 43% of the FUR-tree's and 23% of the R*-tree's.

**Measured:** same crossover behaviour — at 1:100 all three trees are
within 5% of each other, and the RUM-tree's advantage widens with the
update share: at 10000:1 it costs 2.28 I/Os per op vs 3.01 (76%) for
the FUR-tree and 4.03 (57%) for the R*-tree. The factors are smaller
than the paper's 43%/23% because the R*-tree's deletion search is far
cheaper over thousands of objects than over millions.
"""),
"fig13_object_extent": ("Figure 13(a,b,d) — varying the object extent", """
**Paper:** R* update cost grows with extent (wider MBRs = more deletion
search paths), FUR falls (more in-place), RUM flat and cheapest (14–25%
of R*); memo size *decreases* with extent (clean-upon-touch hits the
original node more often).

**Measured:** the orderings reproduce exactly (RUM < FUR < R* on updates
at every extent, RUM flat within 1%), and the search costs of all trees
grow with the extent as MBRs widen.  The R*-tree's update-cost *slope*
is much weaker than the paper's: its deletion search prunes by MBR
containment, and at thousands of objects the leaf MBRs dwarf even the
largest extents, so the paper's extra-search-paths effect is mostly
below the noise floor here (the sweep already extends to 4x the paper's
largest extent to compensate for leaf size — DESIGN.md).  The FUR-tree
sits at its 3-I/O in-place floor throughout, the extreme of the paper's
"update cost decreases with extent" trend.
"""),
"fig13_overall_ratio": ("Figure 13(c) — overall cost at extent 0.01", """
**Paper:** RUM-tree outperforms the R*-tree beyond 1:1 and the FUR-tree
beyond 10:1.

**Measured:** same crossings (the exact crossover ratios shift with the
scale substitution, but update-heavy ratios are clear RUM wins).
"""),
"fig14_scalability": ("Figure 14(a,b,d) — scalability with the number of objects", """
**Paper:** R*-tree update cost grows with the population (13–28% of it
for the RUM-tree); the FUR-tree saturates near its top-down upper bound;
the RUM-tree is flat — insertion and amortised cleaning are both
independent of the tree size; memo size grows linearly.

**Measured:** the R*-tree's update cost grows monotonically over the
population decade while the RUM-tree's stays flat and lowest (55–57% of
the R*-tree); the memo grows (sub-)linearly with the population while
the FUR-tree's secondary index grows exactly linearly (one entry per
object, 40x the memo at the largest population). One scale artefact: at
the default moving distance our larger leaves keep the FUR-tree pinned
at its 3-I/O in-place floor, where the paper's 2M-object leaves push it
to its 7-I/O top-down ceiling — both are the "population-independent"
plateau Section 5.4 describes, approached from opposite ends.
"""),
"fig14_overall_ratio": ("Figure 14(c) — overall cost at the largest population", """
**Paper:** at 10000:1, the RUM-tree's cost is 50% of the FUR-tree's and
13% of the R*-tree's.

**Measured:** the RUM-tree wins both comparisons at update-heavy ratios.
"""),
"fig15_logging": ("Figure 15 — update I/O under logging options", """
**Paper:** Option I cheapest; Option II only slightly above (occasional
UM checkpoints); Option III ~50% higher (forced log write per update).

**Measured:** Option II costs <0.01 I/O above Option I; Option III adds
almost exactly 1.0 log write per update (+45% in total cost) — the
Section 4.2.3 surcharges to the digit.
"""),
"table2_recovery": ("Table 2 — number of I/Os for recovery", """
**Paper (2M objects):** Option I 2,008,000; Option II 7,000; Option III 200.

**Measured (scaled population):** the same orders separate the options —
Option I is dominated by the spill of its per-object intermediate table
(≈1 access per object), Option II costs about one read per leaf node
plus the checkpoint, Option III reads only the checkpoint and log tail
and touches zero leaf pages. Options II/III recover a safe superset of
the pre-crash memo; a cleaning cycle then removes the phantoms (verified
by the bench).
"""),
"fig16_throughput": ("Figure 16 — throughput under concurrent accesses", """
**Paper:** similar throughput at 0% updates; as the update share rises
the R*-tree's throughput falls while the RUM-tree's stays high, because
a memo-based update locks a single insertion path while a top-down
update exclusively locks its multi-path search neighbourhood.

**Measured:** on a query-only workload the two trees sit in the same
band (threading variance between runs is high at this small scale); as
the update share rises the RUM-tree's relative advantage grows
monotonically, reaching roughly 2-3x the R*-tree's throughput on an
update-only workload — the paper's Figure-16 shape.
"""),
"ablation_cost_model": ("Section 4 — cost-model validation (ablation)", """
The Lemma-2 estimator fed with the measured leaf MBRs predicts the
R*-tree's update cost within tens of percent; the 3/6/7 bottom-up mix
matches the FUR-tree's measured cost closely; the RUM-tree's leaf I/O
sits within a few hundredths of 2(1+ir). The Section 4.1 garbage and
memo-size bounds hold in steady state.
"""),
"ablation_tokens": ("Section 3.3 — cleaning-token ablation", """
At a fixed inspection ratio the number of parallel tokens does not change
the aggregate cleaning work: update I/O, leaves inspected, and garbage
ratio stay flat from 1 to 8 tokens, confirming that ir (not the token
count) is the knob that matters — as Equation 1 implies.
"""),
"ablation_structure": ("Structure-policy ablation", """
R* split + forced reinsertion (the paper's insertion machinery) gives the
best search cost; Guttman's quadratic split without reinsertion trades a
slightly cheaper update path for noticeably worse search — justifying the
paper's choice of the R*-tree as the substrate.
"""),
"ablation_fur_extension": ("FUR-tree extension-band ablation (Fig. 12b mechanism)", """
The FUR-tree's leaf-MBR extension band is its central tuning knob: a
wider band raises the in-place share towards 100% and drops the update
cost to its 3-I/O floor, while the bloated leaf MBRs raise the search
cost ~50% — exactly the mechanism behind the FUR-tree's search-cost
degradation in Figure 12(b).
"""),
"ablation_buffer": ("Buffer-size ablation (beyond the paper's model)", """
The paper charges every leaf access to disk (only internal nodes are
cached).  Sweeping a resident leaf LRU shows where that model's
conclusion holds: with no leaf cache the RUM-tree wins ~2x; as the cache
grows the R*-tree gains more (its overhead is the reads of the top-down
deletion search, which caching absorbs) and overtakes the RUM-tree once
the buffer holds most of the leaf level.  The memo-based approach is
thus valuable exactly in the paper's motivating regime: update working
sets much larger than the buffer.
"""),
"ablation_extensions": ("Section 6 — beyond R-trees (extension)", """
The memo transplants verbatim onto a B+-tree, a PR quadtree, and a grid
file — the conclusion's full list: classic updates cost ~4 I/Os
(read+write at the old location, read+write at the new), memo-based
updates ~2.3 I/Os (one insertion plus amortised cleaning) — the same
~2x reduction pattern as the RUM-tree, with the identical Update
Memo/stamp-counter/cleaner machinery reused across all four index
families.
"""),
}

ORDER = [
    "fig10_inspection_ratio", "fig11_node_size",
    "fig12_moving_distance", "fig12_overall_ratio",
    "fig13_object_extent", "fig13_overall_ratio",
    "fig14_scalability", "fig14_overall_ratio",
    "fig15_logging", "table2_recovery", "fig16_throughput",
    "ablation_cost_model", "ablation_tokens", "ablation_structure",
    "ablation_fur_extension", "ablation_buffer", "ablation_extensions",
]

HEADER = '''# EXPERIMENTS — paper vs. measured

Reproduction record for every table and figure of the evaluation section
of *"R-trees with Update Memos"* (Xiong & Aref, ICDE 2006), regenerated by

```bash
pytest benchmarks/ --benchmark-only
```

at the default workload scale (`REPRO_BENCH_SCALE=1`: thousands of objects
instead of the paper's millions — see the substitution table in DESIGN.md;
all reported metrics are *per-operation disk accesses*, which are intensive
quantities that survive the down-scaling). Each benchmark prints the table
below, archives it under `benchmarks/results/`, and **asserts the paper's
qualitative shape** (ordering of the trees, monotonicity, crossovers,
bounds), so the reproduction claims are executable.

Absolute numbers are *not* expected to match the 2006 testbed: the paper
measured a specific disk/buffer configuration at 2–20M objects. What must
(and does) match is who wins, in which direction each curve moves, and by
roughly what factor — noted per experiment below.

'''

def main():
    parts = [HEADER]
    for name in ORDER:
        title, commentary = COMMENTARY[name]
        path = RESULTS / f"{name}.txt"
        body = path.read_text().rstrip() if path.exists() else "(not yet generated)"
        parts.append(f"## {title}\n{commentary}\n```text\n{body}\n```\n")
    pathlib.Path("EXPERIMENTS.md").write_text("\n".join(parts))
    print("EXPERIMENTS.md written,",
          sum(1 for n in ORDER if (RESULTS / f"{n}.txt").exists()), "of", len(ORDER), "tables present")

if __name__ == "__main__":
    main()
