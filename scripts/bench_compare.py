#!/usr/bin/env python
"""Compare two benchmark reports and flag regressions.

Accepts ``bench_micro/v1`` and ``bench_serve/v1`` reports (both carry
the same ``metrics`` block of ops/sec entries; the serve report encodes
its latency percentiles as inverse latency, ``1000 / p_ms``, so "higher
is better" holds uniformly).  Baseline and current must share a schema.

Usage::

    python scripts/bench_compare.py baseline.json current.json [more.json...] \
        [--threshold 0.10] [--json report.json]

Prints one line per metric with the throughput ratio.  A metric regresses
when its current ops/sec falls more than ``threshold`` (default 10%)
below the baseline.  By default the script is report-only (exit 0 either
way, so local runs on noisy machines never fail); with
``--fail-on-regress`` any regression makes it exit non-zero so CI can
gate on it.  Metrics present in only one file are reported but never
fail the comparison (the suite is allowed to grow).

Several ``current`` reports may be given (repeat runs of the same
suite); they are merged per metric by keeping the *best* ops/sec.
Throughput noise on a shared machine is one-sided — a run can only be
slowed down, never sped up — so best-of-N estimates the machine's true
capability and stops transient load from tripping the CI gate.  All
merged reports must share schema and scale.

``--json PATH`` additionally writes a machine-readable report::

    {
      "schema": "bench_compare/v1",
      "threshold": 0.10,
      "baseline_scale": 1.0,
      "current_scale": 1.0,
      "regressions": 0,
      "metrics": {
        "<name>": {"status": "ok" | "improved" | "regressed" | "new"
                             | "removed",
                   "baseline_ops_per_sec": ..., "current_ops_per_sec": ...,
                   "delta_pct": ...},
        ...
      },
      "delta_pct_summary": {"count": ..., "p50": ..., "p95": ..., "p99": ...}
    }

The ``delta_pct_summary`` block summarises the distribution of per-metric
throughput deltas (only metrics present in both reports).  A healthy
comparison has p50 near zero; a systematically slow current run shows up
as the whole distribution shifting negative even when no single metric
crosses the regression threshold.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SCHEMAS = ("bench_micro/v1", "bench_serve/v1")
COMPARE_SCHEMA = "bench_compare/v1"


def load_report(path: pathlib.Path) -> dict:
    try:
        report = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"{path}: no such file") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(report, dict):
        raise SystemExit(f"{path}: expected a JSON object at top level")
    schema = report.get("schema")
    if schema not in SCHEMAS:
        raise SystemExit(
            f"{path}: unsupported schema {schema!r} "
            f"(expected one of {SCHEMAS!r})"
        )
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: report has no 'metrics' object")
    return report


def merge_best(reports: list) -> dict:
    """Best-of-N merge of repeat runs: per metric, keep the highest
    ops/sec (with its iteration count).  Scales must match — a metric
    measured at different scales is not the same measurement."""
    merged = reports[0]
    if len(reports) == 1:
        return merged
    schemas = {r.get("schema") for r in reports}
    if len(schemas) > 1:
        raise SystemExit(
            f"cannot merge runs of different suites: {sorted(schemas)}"
        )
    scales = {r.get("scale") for r in reports}
    if len(scales) > 1:
        raise SystemExit(
            f"cannot merge runs at different scales: {sorted(scales)}"
        )
    metrics = dict(merged["metrics"])
    for report in reports[1:]:
        for name, m in report["metrics"].items():
            best = metrics.get(name)
            if best is None or m["ops_per_sec"] > best["ops_per_sec"]:
                metrics[name] = m
    merged = dict(merged)
    merged["metrics"] = metrics
    return merged


def percentile(sorted_values: list, q: float) -> float:
    """Linear-interpolation percentile of pre-sorted data (standalone
    twin of the registry histogram's estimator — this script must run
    without ``repro`` importable)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def delta_summary(per_metric: dict) -> dict:
    """p50/p95/p99 of the per-metric throughput deltas."""
    deltas = sorted(
        m["delta_pct"]
        for m in per_metric.values()
        if m["delta_pct"] is not None
    )
    return {
        "count": len(deltas),
        "p50": percentile(deltas, 0.50),
        "p95": percentile(deltas, 0.95),
        "p99": percentile(deltas, 0.99),
    }


def compare(baseline: dict, current: dict, threshold: float) -> dict:
    """Per-metric comparison; returns the ``bench_compare/v1`` report."""
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    if baseline.get("schema") != current.get("schema"):
        raise SystemExit(
            f"cannot compare different suites: "
            f"{baseline.get('schema')!r} vs {current.get('schema')!r}"
        )
    if baseline.get("scale") != current.get("scale"):
        print(
            f"note: comparing different scales "
            f"({baseline.get('scale')} vs {current.get('scale')})"
        )
    regressions = 0
    per_metric = {}
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None:
            print(f"  NEW      {name:32s} {cur['ops_per_sec']:12.1f} ops/s")
            per_metric[name] = {
                "status": "new",
                "baseline_ops_per_sec": None,
                "current_ops_per_sec": cur["ops_per_sec"],
                "delta_pct": None,
            }
            continue
        if cur is None:
            print(f"  REMOVED  {name:32s} {base['ops_per_sec']:12.1f} ops/s")
            per_metric[name] = {
                "status": "removed",
                "baseline_ops_per_sec": base["ops_per_sec"],
                "current_ops_per_sec": None,
                "delta_pct": None,
            }
            continue
        b = base["ops_per_sec"]
        c = cur["ops_per_sec"]
        delta = (c / b - 1.0) if b > 0 else 0.0
        status = "ok"
        if delta < -threshold:
            status = "regressed"
            regressions += 1
        elif delta > threshold:
            status = "improved"
        shown = "REGRESSED" if status == "regressed" else status
        print(
            f"  {shown:10s}{name:32s} {b:12.1f} -> {c:12.1f} ops/s "
            f"({delta * 100:+6.1f}%)"
        )
        per_metric[name] = {
            "status": status,
            "baseline_ops_per_sec": b,
            "current_ops_per_sec": c,
            "delta_pct": delta * 100.0,
        }
    summary = delta_summary(per_metric)
    if summary["count"]:
        print(
            f"  delta distribution: p50 {summary['p50']:+.1f}%  "
            f"p95 {summary['p95']:+.1f}%  p99 {summary['p99']:+.1f}% "
            f"({summary['count']} shared metric(s))"
        )
    return {
        "schema": COMPARE_SCHEMA,
        "threshold": threshold,
        "baseline_scale": baseline.get("scale"),
        "current_scale": current.get("scale"),
        "regressions": regressions,
        "metrics": per_metric,
        "delta_pct_summary": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument(
        "current",
        type=pathlib.Path,
        nargs="+",
        help="one or more current-run reports; repeat runs are merged "
        "best-of-N per metric before comparing",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown tolerated before a metric is flagged "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also write the comparison as machine-readable JSON",
    )
    parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit non-zero when any metric regressed (CI gate); "
        "without it the comparison is report-only",
    )
    args = parser.parse_args(argv)
    current = merge_best([load_report(p) for p in args.current])
    report = compare(load_report(args.baseline), current, args.threshold)
    if args.json is not None:
        args.json.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    regressions = report["regressions"]
    print(
        f"summary: {regressions} regression(s) beyond "
        f"{args.threshold * 100:.0f}% across {len(report['metrics'])} "
        f"metric(s)"
    )
    return 1 if regressions and args.fail_on_regress else 0


if __name__ == "__main__":
    sys.exit(main())
