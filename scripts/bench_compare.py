#!/usr/bin/env python
"""Compare two ``bench_micro`` reports and flag regressions.

Usage::

    python scripts/bench_compare.py baseline.json current.json \
        [--threshold 0.10]

Prints one line per metric with the throughput ratio.  A metric regresses
when its current ops/sec falls more than ``threshold`` (default 10%)
below the baseline; any regression makes the script exit non-zero so CI
can gate on it.  Metrics present in only one file are reported but never
fail the comparison (the suite is allowed to grow).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SCHEMA = "bench_micro/v1"


def load_report(path: pathlib.Path) -> dict:
    try:
        report = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"{path}: no such file") from None
    schema = report.get("schema")
    if schema != SCHEMA:
        raise SystemExit(
            f"{path}: unsupported schema {schema!r} (expected {SCHEMA!r})"
        )
    return report


def compare(baseline: dict, current: dict, threshold: float) -> int:
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    if baseline.get("scale") != current.get("scale"):
        print(
            f"note: comparing different scales "
            f"({baseline.get('scale')} vs {current.get('scale')})"
        )
    regressions = 0
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None:
            print(f"  NEW      {name:32s} {cur['ops_per_sec']:12.1f} ops/s")
            continue
        if cur is None:
            print(f"  REMOVED  {name:32s} {base['ops_per_sec']:12.1f} ops/s")
            continue
        b = base["ops_per_sec"]
        c = cur["ops_per_sec"]
        delta = (c / b - 1.0) if b > 0 else 0.0
        status = "ok"
        if delta < -threshold:
            status = "REGRESSED"
            regressions += 1
        elif delta > threshold:
            status = "improved"
        print(
            f"  {status:10s}{name:32s} {b:12.1f} -> {c:12.1f} ops/s "
            f"({delta * 100:+6.1f}%)"
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="fractional slowdown tolerated before a metric is flagged "
        "(default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)
    regressions = compare(
        load_report(args.baseline), load_report(args.current), args.threshold
    )
    if regressions:
        print(f"{regressions} metric(s) regressed beyond "
              f"{args.threshold * 100:.0f}%")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
