"""repro — a reproduction of "R-trees with Update Memos" (ICDE 2006).

The package implements the RUM-tree of Xiong & Aref together with every
substrate the paper's evaluation depends on: a paged-disk simulator with
the paper's I/O-accounting model, the R*-tree and FUR-tree baselines, a
network-based moving-object workload generator, crash recovery, a granular
lock manager, the Section-4 analytical cost model, and drivers for every
figure and table of the evaluation (see DESIGN.md and EXPERIMENTS.md).

Quick start::

    from repro import Rect, build_rum_tree

    tree = build_rum_tree()
    tree.insert_object(1, Rect.from_point(0.2, 0.3))
    tree.update_object(1, None, Rect.from_point(0.21, 0.31))
    hits = tree.search(Rect(0.1, 0.2, 0.3, 0.4))
"""

from .core import (
    GarbageCleaner,
    RecoveryReport,
    RUMTree,
    StampCounter,
    UpdateMemo,
    recover_option_i,
    recover_option_ii,
    recover_option_iii,
)
from .factory import (
    DEFAULT_NODE_SIZE,
    build_fur_tree,
    build_rstar_tree,
    build_rum_tree,
    build_storage,
)
from .persistence import load_tree, save_tree
from .rtree import FURTree, ObjectNotFoundError, RStarTree, Rect, bulk_load_objects
from .storage import IOSnapshot, IOStats

__version__ = "1.0.0"

__all__ = [
    "Rect",
    "RUMTree",
    "RStarTree",
    "FURTree",
    "UpdateMemo",
    "StampCounter",
    "GarbageCleaner",
    "RecoveryReport",
    "recover_option_i",
    "recover_option_ii",
    "recover_option_iii",
    "ObjectNotFoundError",
    "IOStats",
    "IOSnapshot",
    "build_rum_tree",
    "build_rstar_tree",
    "build_fur_tree",
    "build_storage",
    "bulk_load_objects",
    "save_tree",
    "load_tree",
    "DEFAULT_NODE_SIZE",
    "__version__",
]
