"""Synthetic road network — the substitute for the paper's LA road map.

The paper generates moving objects with the Network-based Generator of
Moving Objects (Brinkhoff [2]) over the Los Angeles road map normalised to
the unit square.  That map is not redistributable, so we synthesise a road
network with the same structural features the workload actually exercises:

* an irregular planar graph covering the unit square (perturbed grid with a
  fraction of edges removed),
* spatial skew (node positions jittered, optional density hot-spots),
* objects constrained to move along edges (see
  :mod:`repro.workload.objects`).

The experiments only depend on *where objects can be* (network-induced
skew) and *how far they move between updates* (an explicit generator
parameter), both of which this substitute preserves — see DESIGN.md.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

import networkx as nx

Point = Tuple[float, float]


class RoadNetwork:
    """An undirected road graph embedded in the unit square.

    Nodes are integer ids with positions; edges carry their Euclidean
    length.  The graph is guaranteed connected.
    """

    def __init__(self, graph: nx.Graph, positions: Dict[int, Point]):
        if graph.number_of_edges() == 0:
            raise ValueError("road network needs at least one edge")
        if not nx.is_connected(graph):
            raise ValueError("road network must be connected")
        self.graph = graph
        self.positions = positions
        self._edges: List[Tuple[int, int]] = list(graph.edges())
        self._edge_lengths = [self.edge_length(u, v) for u, v in self._edges]
        total = sum(self._edge_lengths)
        self._edge_weights = [length / total for length in self._edge_lengths]

    # -- construction ----------------------------------------------------------

    @classmethod
    def grid(
        cls,
        side: int = 16,
        jitter: float = 0.3,
        drop_fraction: float = 0.15,
        seed: int = 7,
    ) -> "RoadNetwork":
        """A perturbed-grid road network.

        ``side`` x ``side`` intersections on a regular lattice, each node
        displaced by up to ``jitter`` of the cell size, with
        ``drop_fraction`` of the edges removed (never disconnecting the
        graph), which produces the irregular block structure of a real
        city map.
        """
        if side < 2:
            raise ValueError("grid side must be at least 2")
        if not 0.0 <= drop_fraction < 1.0:
            raise ValueError("drop_fraction must be in [0, 1)")
        rng = random.Random(seed)
        cell = 1.0 / (side - 1)
        graph = nx.Graph()
        positions: Dict[int, Point] = {}
        for row in range(side):
            for col in range(side):
                node = row * side + col
                x = col * cell + rng.uniform(-jitter, jitter) * cell
                y = row * cell + rng.uniform(-jitter, jitter) * cell
                positions[node] = (min(max(x, 0.0), 1.0),
                                   min(max(y, 0.0), 1.0))
                graph.add_node(node)
        for row in range(side):
            for col in range(side):
                node = row * side + col
                if col + 1 < side:
                    graph.add_edge(node, node + 1)
                if row + 1 < side:
                    graph.add_edge(node, node + side)

        # Remove a sample of edges without disconnecting the network.
        removable = list(graph.edges())
        rng.shuffle(removable)
        to_drop = int(len(removable) * drop_fraction)
        dropped = 0
        for u, v in removable:
            if dropped >= to_drop:
                break
            graph.remove_edge(u, v)
            if nx.has_path(graph, u, v):
                dropped += 1
            else:
                graph.add_edge(u, v)
        return cls(graph, positions)

    # -- geometry ----------------------------------------------------------------

    def edge_length(self, u: int, v: int) -> float:
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return math.hypot(x2 - x1, y2 - y1)

    def point_on_edge(self, u: int, v: int, offset: float) -> Point:
        """The point ``offset`` along edge ``(u, v)`` from ``u`` (clamped)."""
        length = self.edge_length(u, v)
        t = 0.0 if length == 0 else min(max(offset / length, 0.0), 1.0)
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return (x1 + (x2 - x1) * t, y1 + (y2 - y1) * t)

    # -- sampling -----------------------------------------------------------------

    def random_edge(self, rng: random.Random) -> Tuple[int, int]:
        """An edge sampled proportionally to its length (uniform coverage
        of the road space, as Brinkhoff's generator does)."""
        return rng.choices(self._edges, weights=self._edge_weights, k=1)[0]

    def random_position(self, rng: random.Random) -> Tuple[int, int, float]:
        """A uniformly random network position ``(u, v, offset)``."""
        u, v = self.random_edge(rng)
        return u, v, rng.uniform(0.0, self.edge_length(u, v))

    def neighbors(self, node: int) -> Sequence[int]:
        return list(self.graph.neighbors(node))

    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def total_length(self) -> float:
        return sum(self._edge_lengths)
