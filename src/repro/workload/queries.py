"""Range-query workload (Section 5: square regions over the unit square).

The paper fixes the query shape to squares — "The queries are square
regions of side length 0.01" is the reading consistent with the object
extents of Table 1 — and evaluates 100,000 of them.  The generator
produces reproducible streams of such windows, fully contained in the
unit square.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.rtree.geometry import Rect

#: Default query-square side length.
DEFAULT_QUERY_SIDE = 0.01


class RangeQueryGenerator:
    """Uniformly placed square query windows."""

    def __init__(self, side: float = DEFAULT_QUERY_SIDE, seed: int = 2):
        if not 0.0 < side <= 1.0:
            raise ValueError("query side must be in (0, 1]")
        self.side = side
        self.rng = random.Random(seed)

    def next_query(self) -> Rect:
        """One square window placed uniformly inside the unit square."""
        x = self.rng.uniform(0.0, 1.0 - self.side)
        y = self.rng.uniform(0.0, 1.0 - self.side)
        return Rect(x, y, x + self.side, y + self.side)

    def queries(self, count: int) -> Iterator[Rect]:
        for _ in range(count):
            yield self.next_query()
