"""Workload substrate: road network, moving objects, queries, traces."""

from .network import RoadNetwork
from .objects import (
    NetworkMovingObjects,
    UniformMovingObjects,
    default_network_workload,
)
from .queries import DEFAULT_QUERY_SIDE, RangeQueryGenerator
from .trace import (
    Operation,
    QueryOp,
    UpdateOp,
    mixed_trace,
    query_trace,
    ratio_to_fraction,
    update_trace,
)

__all__ = [
    "RoadNetwork",
    "NetworkMovingObjects",
    "UniformMovingObjects",
    "default_network_workload",
    "RangeQueryGenerator",
    "DEFAULT_QUERY_SIDE",
    "Operation",
    "UpdateOp",
    "QueryOp",
    "mixed_trace",
    "update_trace",
    "query_trace",
    "ratio_to_fraction",
]
