"""Operation traces: reproducible interleavings of updates and queries.

The overall-cost experiments (Figures 12c, 13c, 14c) interleave updates and
queries at ratios from 1:100 to 10000:1.  A trace is a concrete sequence of
:class:`Operation` records that a harness replays against any tree, so all
trees see the *identical* workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.rtree.geometry import Rect

from .objects import NetworkMovingObjects, UniformMovingObjects
from .queries import RangeQueryGenerator

MovingObjects = Union[NetworkMovingObjects, UniformMovingObjects]


@dataclass(frozen=True)
class UpdateOp:
    """Move ``oid`` from ``old_rect`` to ``new_rect``."""

    oid: int
    old_rect: Rect
    new_rect: Rect


@dataclass(frozen=True)
class QueryOp:
    """Evaluate a range query over ``window``."""

    window: Rect


Operation = Union[UpdateOp, QueryOp]


def mixed_trace(
    objects: MovingObjects,
    queries: RangeQueryGenerator,
    total_ops: int,
    update_fraction: float,
    seed: int = 3,
) -> List[Operation]:
    """A randomly interleaved trace with the given update share.

    ``update_fraction`` of the ``total_ops`` operations are updates (drawn
    from the moving-object generator in its round-robin order), the rest
    are range queries.
    """
    if not 0.0 <= update_fraction <= 1.0:
        raise ValueError("update_fraction must be within [0, 1]")
    rng = random.Random(seed)
    n_updates = round(total_ops * update_fraction)
    kinds = ["u"] * n_updates + ["q"] * (total_ops - n_updates)
    rng.shuffle(kinds)
    trace: List[Operation] = []
    for kind in kinds:
        if kind == "u":
            oid, old_rect, new_rect = objects.next_update()
            trace.append(UpdateOp(oid, old_rect, new_rect))
        else:
            trace.append(QueryOp(queries.next_query()))
    return trace


def ratio_to_fraction(updates: int, queries: int) -> float:
    """Convert the paper's "updates : queries" ratio notation (e.g.
    10000:1) into an update fraction."""
    if updates < 0 or queries < 0 or updates + queries == 0:
        raise ValueError("invalid ratio")
    return updates / (updates + queries)


def update_trace(
    objects: MovingObjects, count: int
) -> Iterator[UpdateOp]:
    """A pure update stream (the update-cost experiments)."""
    for oid, old_rect, new_rect in objects.updates(count):
        yield UpdateOp(oid, old_rect, new_rect)


def query_trace(
    queries: RangeQueryGenerator, count: int
) -> Iterator[QueryOp]:
    """A pure query stream (the search-cost experiments)."""
    for window in queries.queries(count):
        yield QueryOp(window)
