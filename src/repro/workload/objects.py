"""Moving-object generators.

Two generators produce the update workloads of Section 5:

* :class:`NetworkMovingObjects` — objects move along the edges of a road
  network (the Brinkhoff-style generator the paper uses).  Each update
  advances an object by the configured **moving distance** — the paper's
  primary workload knob (Figure 12 sweeps it from 0 to 0.16).
* :class:`UniformMovingObjects` — a network-free random walk in the unit
  square, used by tests and ablations where network skew is irrelevant.

Both expose the same protocol: ``initial()`` yields ``(oid, rect)`` for
every object, and ``next_update()`` produces ``(oid, old_rect, new_rect)``
round-robin over the population ("each object issues an update
periodically", Section 5).  Objects can be squares of a configurable
**extent** (Figure 13) rather than points.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.rtree.geometry import Rect

from .network import RoadNetwork


def _object_rect(x: float, y: float, extent: float) -> Rect:
    """The square of side ``extent`` centred on the (clamped) position."""
    half = extent / 2.0
    cx = min(max(x, half), 1.0 - half) if extent < 1.0 else 0.5
    cy = min(max(y, half), 1.0 - half) if extent < 1.0 else 0.5
    return Rect.from_center(cx, cy, extent)


class _ObjectState:
    """Network position of one object: travelling from ``u`` towards ``v``,
    ``offset`` units along the edge."""

    __slots__ = ("u", "v", "offset")

    def __init__(self, u: int, v: int, offset: float):
        self.u = u
        self.v = v
        self.offset = offset


class NetworkMovingObjects:
    """Objects moving along a road network (Brinkhoff-style).

    Parameters
    ----------
    network:
        The road network to move on.
    num_objects:
        Population size (the paper uses 2M–20M; scaled down here).
    moving_distance:
        Distance travelled between two consecutive updates of the same
        object (Table 1: default 0.01, swept 0–0.16).
    extent:
        Side length of the square objects (Table 1: default 0, i.e.
        points, swept up to 0.01).
    seed:
        Reproducibility seed.
    routing:
        ``"walk"`` — turn randomly at intersections (avoiding U-turns),
        or ``"route"`` — Brinkhoff's destination-based movement: each
        object follows a shortest path to a random destination node and
        picks a new destination on arrival.  Both produce the same
        per-update moving distance; routing only changes the long-term
        shape of trajectories.
    """

    def __init__(
        self,
        network: RoadNetwork,
        num_objects: int,
        moving_distance: float = 0.01,
        extent: float = 0.0,
        seed: int = 1,
        routing: str = "walk",
    ):
        if num_objects <= 0:
            raise ValueError("num_objects must be positive")
        if moving_distance < 0:
            raise ValueError("moving_distance must be non-negative")
        if not 0.0 <= extent <= 1.0:
            raise ValueError("extent must be within [0, 1]")
        if routing not in ("walk", "route"):
            raise ValueError(f"unknown routing mode {routing!r}")
        self.network = network
        self.num_objects = num_objects
        self.moving_distance = moving_distance
        self.extent = extent
        self.routing = routing
        self.rng = random.Random(seed)
        self._states: Dict[int, _ObjectState] = {}
        #: oid -> remaining node path towards the destination (route mode).
        self._routes: Dict[int, List[int]] = {}
        self._round_robin = 0
        for oid in range(num_objects):
            u, v, offset = network.random_position(self.rng)
            self._states[oid] = _ObjectState(u, v, offset)

    # -- positions ---------------------------------------------------------------

    def position(self, oid: int) -> Tuple[float, float]:
        state = self._states[oid]
        return self.network.point_on_edge(state.u, state.v, state.offset)

    def rect(self, oid: int) -> Rect:
        x, y = self.position(oid)
        return _object_rect(x, y, self.extent)

    def initial(self) -> Iterator[Tuple[int, Rect]]:
        """Initial ``(oid, rect)`` pairs for loading the index."""
        for oid in range(self.num_objects):
            yield oid, self.rect(oid)

    # -- movement -----------------------------------------------------------------

    def _next_hop(self, oid: int, arrived: int, came_from: int) -> int:
        """Pick the next node after reaching ``arrived``."""
        if self.routing == "route":
            route = self._routes.get(oid)
            if not route:
                route = self._plan_route(arrived)
                self._routes[oid] = route
            if route and route[0] == arrived:
                route.pop(0)
            if route:
                return route.pop(0)
            # Destination reached exactly here: plan afresh next time.
            self._routes.pop(oid, None)
        options = [
            n for n in self.network.neighbors(arrived) if n != came_from
        ]
        if not options:
            options = [came_from]  # dead end: turn around
        return self.rng.choice(options)

    def _plan_route(self, origin: int) -> List[int]:
        """Shortest path to a freshly drawn destination (Brinkhoff's
        destination-based movement)."""
        import networkx as nx

        nodes = list(self.network.graph.nodes())
        for _ in range(8):
            destination = self.rng.choice(nodes)
            if destination != origin:
                break
        else:
            return []
        path = nx.shortest_path(
            self.network.graph,
            origin,
            destination,
            weight=lambda u, v, _d: self.network.edge_length(u, v),
        )
        return list(path)

    def _advance(self, state: _ObjectState, distance: float,
                 oid: int = -1) -> None:
        """Move along the current edge, continuing at intersections.

        In ``walk`` mode the object picks a random outgoing edge, avoiding
        an immediate U-turn when any alternative exists; in ``route`` mode
        it follows its planned shortest path.
        """
        remaining = distance
        guard = 64  # pathological zero-length edges cannot stall us
        while remaining > 0 and guard > 0:
            guard -= 1
            edge_length = self.network.edge_length(state.u, state.v)
            room = edge_length - state.offset
            if remaining <= room:
                state.offset += remaining
                return
            remaining -= room
            arrived = state.v
            state.v = self._next_hop(oid, arrived, state.u)
            state.u = arrived
            state.offset = 0.0

    def next_update(self) -> Tuple[int, Rect, Rect]:
        """Advance the next object round-robin by one moving distance."""
        oid = self._round_robin
        self._round_robin = (self._round_robin + 1) % self.num_objects
        old_rect = self.rect(oid)
        self._advance(self._states[oid], self.moving_distance, oid=oid)
        return oid, old_rect, self.rect(oid)

    def updates(self, count: int) -> Iterator[Tuple[int, Rect, Rect]]:
        """A stream of ``count`` updates."""
        for _ in range(count):
            yield self.next_update()


class UniformMovingObjects:
    """A network-free random walk in the unit square (tests/ablations).

    Each update moves the object by exactly ``moving_distance`` in a
    uniformly random direction, reflecting at the data-space borders.
    """

    def __init__(
        self,
        num_objects: int,
        moving_distance: float = 0.01,
        extent: float = 0.0,
        seed: int = 1,
    ):
        if num_objects <= 0:
            raise ValueError("num_objects must be positive")
        self.num_objects = num_objects
        self.moving_distance = moving_distance
        self.extent = extent
        self.rng = random.Random(seed)
        self._positions: List[Tuple[float, float]] = [
            (self.rng.random(), self.rng.random())
            for _ in range(num_objects)
        ]
        self._round_robin = 0

    def position(self, oid: int) -> Tuple[float, float]:
        return self._positions[oid]

    def rect(self, oid: int) -> Rect:
        x, y = self._positions[oid]
        return _object_rect(x, y, self.extent)

    def initial(self) -> Iterator[Tuple[int, Rect]]:
        for oid in range(self.num_objects):
            yield oid, self.rect(oid)

    @staticmethod
    def _reflect(value: float) -> float:
        while not 0.0 <= value <= 1.0:
            if value < 0.0:
                value = -value
            elif value > 1.0:
                value = 2.0 - value
        return value

    def next_update(self) -> Tuple[int, Rect, Rect]:
        oid = self._round_robin
        self._round_robin = (self._round_robin + 1) % self.num_objects
        old_rect = self.rect(oid)
        x, y = self._positions[oid]
        angle = self.rng.uniform(0.0, 2.0 * math.pi)
        x = self._reflect(x + self.moving_distance * math.cos(angle))
        y = self._reflect(y + self.moving_distance * math.sin(angle))
        self._positions[oid] = (x, y)
        return oid, old_rect, self.rect(oid)

    def updates(self, count: int) -> Iterator[Tuple[int, Rect, Rect]]:
        for _ in range(count):
            yield self.next_update()


def default_network_workload(
    num_objects: int,
    moving_distance: float = 0.01,
    extent: float = 0.0,
    seed: int = 1,
    network: Optional[RoadNetwork] = None,
) -> NetworkMovingObjects:
    """The experiments' standard workload on the shared default network."""
    if network is None:
        network = RoadNetwork.grid()
    return NetworkMovingObjects(
        network,
        num_objects,
        moving_distance=moving_distance,
        extent=extent,
        seed=seed,
    )
