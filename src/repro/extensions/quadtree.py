"""Memo-based updates for a point quadtree — completing the conclusion's
trio ("B-trees, quadtrees and Grid Files").

A PR (point-region) quadtree over the unit square: leaf buckets hold up to
a page worth of points; a full bucket subdivides into four quadrant
children.  Internal nodes are memory-cached (they are tiny); leaf buckets
are charged one read and one write per touched page, the same accounting
as everywhere else in this repository.

* :class:`PRQuadtree` — classic updates: descend by the old position,
  remove the entry, re-insert at the new position;
* :class:`MemoQuadtree` — memo-based updates: stamp + insert only, with
  the shared :class:`~repro.core.memo.UpdateMemo`, clean-upon-touch, and
  a cleaning cursor that sweeps the leaves in rotation.

Empty sibling quadrants are *not* merged back (lazy deletion), which is
the common engineering choice and keeps both variants comparable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.memo import LATEST, UpdateMemo
from repro.core.stamp import StampCounter
from repro.storage.iostats import IOStats

CLASSIC_ENTRY_BYTES = 24  # x, y (float64) + oid (int64)
MEMO_ENTRY_BYTES = 32     # + stamp
PAGE_HEADER_BYTES = 32

#: Subdivision stops at this depth; the bucket then grows past its
#: capacity (degenerate duplicate-heavy data would otherwise split
#: forever).
MAX_DEPTH = 16

Entry = Tuple[float, float, int, int]  # x, y, oid, stamp


class _QuadNode:
    """One quadtree node covering the square [x0, x0+size) x [y0, y0+size)."""

    __slots__ = ("x0", "y0", "size", "depth", "entries", "children")

    def __init__(self, x0: float, y0: float, size: float, depth: int):
        self.x0 = x0
        self.y0 = y0
        self.size = size
        self.depth = depth
        self.entries: Optional[List[Entry]] = []  # None for internal nodes
        self.children: Optional[List["_QuadNode"]] = None

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None

    def child_for(self, x: float, y: float) -> "_QuadNode":
        half = self.size / 2.0
        index = (1 if x >= self.x0 + half else 0) + (
            2 if y >= self.y0 + half else 0
        )
        return self.children[index]

    def intersects(self, xmin, ymin, xmax, ymax) -> bool:
        return (
            self.x0 <= xmax
            and xmin <= self.x0 + self.size
            and self.y0 <= ymax
            and ymin <= self.y0 + self.size
        )


class PRQuadtree:
    """Classic PR quadtree with top-down (delete + insert) updates."""

    name = "PR quadtree"

    def __init__(self, page_size: int = 2048, stamped: bool = False):
        entry_bytes = MEMO_ENTRY_BYTES if stamped else CLASSIC_ENTRY_BYTES
        self.bucket_cap = max(2, (page_size - PAGE_HEADER_BYTES) // entry_bytes)
        self.stats = IOStats()
        self.root = _QuadNode(0.0, 0.0, 1.0, 0)

    # -- accounting -----------------------------------------------------------

    def _charge(self, reads: int = 0, writes: int = 0) -> None:
        self.stats.leaf_reads += reads
        self.stats.leaf_writes += writes

    def _pages(self, leaf: _QuadNode) -> int:
        """Bucket page count (over-capacity deep buckets chain pages)."""
        return max(1, -(-len(leaf.entries) // self.bucket_cap))

    # -- descent ---------------------------------------------------------------

    def _find_leaf(self, x: float, y: float) -> _QuadNode:
        node = self.root
        while not node.is_leaf:
            node = node.child_for(x, y)
        return node

    def _split(self, leaf: _QuadNode) -> None:
        half = leaf.size / 2.0
        leaf.children = [
            _QuadNode(leaf.x0, leaf.y0, half, leaf.depth + 1),
            _QuadNode(leaf.x0 + half, leaf.y0, half, leaf.depth + 1),
            _QuadNode(leaf.x0, leaf.y0 + half, half, leaf.depth + 1),
            _QuadNode(leaf.x0 + half, leaf.y0 + half, half, leaf.depth + 1),
        ]
        entries = leaf.entries
        leaf.entries = None
        for entry in entries:
            child = leaf.child_for(entry[0], entry[1])
            child.entries.append(entry)
        # Four fresh buckets written out.
        self._charge(writes=4)

    def _insert_entry(self, entry: Entry) -> _QuadNode:
        leaf = self._find_leaf(entry[0], entry[1])
        self._charge(reads=self._pages(leaf), writes=1)
        leaf.entries.append(entry)
        while (
            len(leaf.entries) > self.bucket_cap
            and leaf.depth < MAX_DEPTH
        ):
            self._split(leaf)
            leaf = leaf.child_for(entry[0], entry[1])
        return leaf

    # -- moving-object protocol ---------------------------------------------------

    def insert_object(self, oid: int, x: float, y: float) -> None:
        self._insert_entry((x, y, oid, 0))

    def update_object(self, oid: int, old_pos, new_pos) -> None:
        """Classic update: remove at the old position, insert at the new."""
        self._remove(oid, old_pos)
        self._insert_entry((new_pos[0], new_pos[1], oid, 0))

    def delete_object(self, oid: int, old_pos) -> None:
        self._remove(oid, old_pos)

    def _remove(self, oid: int, old_pos) -> None:
        leaf = self._find_leaf(old_pos[0], old_pos[1])
        self._charge(reads=self._pages(leaf), writes=1)
        for i, entry in enumerate(leaf.entries):
            if entry[2] == oid:
                del leaf.entries[i]
                return
        raise KeyError(oid)

    def range_search(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[Tuple[int, float, float]]:
        """All ``(oid, x, y)`` inside the closed query window."""
        results: List[Tuple[int, float, float]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.intersects(xmin, ymin, xmax, ymax):
                continue
            if node.is_leaf:
                self._charge(reads=self._pages(node))
                for x, y, oid, _stamp in node.entries:
                    if xmin <= x <= xmax and ymin <= y <= ymax:
                        results.append((oid, x, y))
            else:
                stack.extend(node.children)
        return results

    # -- introspection ----------------------------------------------------------

    def iter_leaves(self) -> Iterator[_QuadNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)

    def num_entries(self) -> int:
        return sum(len(leaf.entries) for leaf in self.iter_leaves())

    def num_leaves(self) -> int:
        return sum(1 for _ in self.iter_leaves())

    def depth(self) -> int:
        return max(
            (leaf.depth for leaf in self.iter_leaves()), default=0
        )


class MemoQuadtree(PRQuadtree):
    """PR quadtree with memo-based updates (the RUM principle)."""

    name = "Memo-quadtree"

    def __init__(
        self,
        page_size: int = 2048,
        inspection_ratio: float = 0.2,
        clean_upon_touch: bool = True,
        memo_buckets: int = 64,
    ):
        super().__init__(page_size, stamped=True)
        if inspection_ratio < 0:
            raise ValueError("inspection_ratio must be non-negative")
        self.memo = UpdateMemo(n_buckets=memo_buckets)
        self.stamps = StampCounter()
        self.inspection_ratio = inspection_ratio
        self.clean_upon_touch = clean_upon_touch
        self._step_credit = 0.0
        self._sweep_queue: List[_QuadNode] = []
        self.leaves_inspected = 0
        self.entries_removed = 0

    # -- memo-based operations ---------------------------------------------------

    def insert_object(self, oid: int, x: float, y: float) -> None:
        self._memo_insert(oid, x, y)

    def update_object(self, oid: int, old_pos, new_pos) -> None:
        """One insertion; the old entry becomes obsolete wherever it is."""
        self._memo_insert(oid, new_pos[0], new_pos[1])

    def delete_object(self, oid: int, old_pos=None) -> None:
        self.memo.record_update(oid, self.stamps.next())
        self._after_update()

    def _memo_insert(self, oid: int, x: float, y: float) -> None:
        stamp = self.stamps.next()
        self.memo.record_update(oid, stamp)
        leaf = self._find_leaf(x, y)
        if self.clean_upon_touch:
            self.entries_removed += self._clean_leaf(leaf, charge=False)
        self._charge(reads=self._pages(leaf), writes=1)
        leaf.entries.append((x, y, oid, stamp))
        while (
            len(leaf.entries) > self.bucket_cap
            and leaf.depth < MAX_DEPTH
        ):
            self._split(leaf)
            leaf = leaf.child_for(x, y)
        self._after_update()

    def _after_update(self) -> None:
        self._step_credit += self.inspection_ratio
        while self._step_credit >= 1.0:
            self._step_credit -= 1.0
            self._cursor_step()

    def _clean_leaf(self, leaf: _QuadNode, charge: bool = True) -> int:
        if charge:
            self._charge(reads=self._pages(leaf))
        removed = 0
        kept: List[Entry] = []
        for entry in leaf.entries:
            if self.memo.is_obsolete(entry[2], entry[3]):
                self.memo.note_cleaned(entry[2])
                removed += 1
            else:
                kept.append(entry)
        if removed:
            leaf.entries[:] = kept
            if charge:
                self._charge(writes=1)
        return removed

    def _cursor_step(self) -> None:
        """Sweep the next leaf in rotation (DFS order, re-snapshot when the
        queue drains — splits between sweeps are picked up then)."""
        while True:
            if not self._sweep_queue:
                self._sweep_queue = list(self.iter_leaves())
            leaf = self._sweep_queue.pop()
            if leaf.is_leaf:  # skip leaves split since the snapshot
                break
        self.leaves_inspected += 1
        self.entries_removed += self._clean_leaf(leaf)

    def run_full_sweep(self) -> int:
        """Clean every current leaf once (quadtree Property 1)."""
        removed_before = self.entries_removed
        self._sweep_queue = []
        for _ in range(self.num_leaves()):
            self._cursor_step()
        return self.entries_removed - removed_before

    # -- filtered queries -----------------------------------------------------------

    def range_search(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[Tuple[int, float, float]]:
        results: List[Tuple[int, float, float]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.intersects(xmin, ymin, xmax, ymax):
                continue
            if node.is_leaf:
                self._charge(reads=self._pages(node))
                for x, y, oid, stamp in node.entries:
                    if (
                        xmin <= x <= xmax
                        and ymin <= y <= ymax
                        and self.memo.check_status(oid, stamp) == LATEST
                    ):
                        results.append((oid, x, y))
            else:
                stack.extend(node.children)
        return results

    def garbage_count(self) -> int:
        return sum(
            1
            for leaf in self.iter_leaves()
            for entry in leaf.entries
            if self.memo.is_obsolete(entry[2], entry[3])
        )
