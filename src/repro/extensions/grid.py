"""Memo-based updates for a grid file (the conclusion's third candidate).

A uniform grid over the unit square with one page chain per cell — the
structure behind LUGrid, the follow-up work by the same group.  As with
the B+-tree extension, the point is that the Update Memo, stamp counter
and lazy cleaning transplant unchanged:

* :class:`GridFile` — classic updates: locate the old entry in its cell's
  page chain, remove it, insert the new entry into the new cell;
* :class:`MemoGrid` — memo-based updates: stamp + insert only; a cleaning
  cursor sweeps one cell chain per ``1/ir`` updates; queries filter
  through CheckStatus.

Pages hold a fixed number of entries derived from the configured page
size (24 B classic, 32 B stamped); the page chains are charged one read
and one write per touched page, mirroring the paper's leaf accounting.
Unlike the R-tree/B+-tree stacks, the grid keeps its pages as in-memory
lists with logical page accounting — the structure is an extension
demonstration, not a re-run of the storage substrate.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.memo import LATEST, UpdateMemo
from repro.core.stamp import StampCounter
from repro.storage.iostats import IOStats

CLASSIC_ENTRY_BYTES = 24  # x, y (float64) + oid (int64)
MEMO_ENTRY_BYTES = 32     # + stamp
PAGE_HEADER_BYTES = 16


class _Cell:
    """One grid cell: a chain of fixed-capacity pages."""

    __slots__ = ("pages",)

    def __init__(self) -> None:
        self.pages: List[List[Tuple[float, float, int, int]]] = [[]]


class GridFile:
    """Uniform grid over the unit square with classic in-place updates."""

    name = "Grid file"

    def __init__(self, side: int = 16, page_size: int = 2048,
                 stamped: bool = False):
        if side <= 0:
            raise ValueError("grid side must be positive")
        self.side = side
        entry_bytes = MEMO_ENTRY_BYTES if stamped else CLASSIC_ENTRY_BYTES
        self.page_cap = max(2, (page_size - PAGE_HEADER_BYTES) // entry_bytes)
        self.stats = IOStats()
        self._cells = [[_Cell() for _ in range(side)] for _ in range(side)]

    # -- cell addressing ---------------------------------------------------

    def _cell_of(self, x: float, y: float) -> _Cell:
        cx = min(self.side - 1, max(0, int(x * self.side)))
        cy = min(self.side - 1, max(0, int(y * self.side)))
        return self._cells[cy][cx]

    def _charge(self, reads: int = 0, writes: int = 0) -> None:
        self.stats.leaf_reads += reads
        self.stats.leaf_writes += writes

    # -- operations -----------------------------------------------------------

    def _append(self, cell: _Cell, entry: Tuple[float, float, int, int]) -> None:
        """Insert into the first page with room (read it, write it back)."""
        for i, page in enumerate(cell.pages):
            if len(page) < self.page_cap:
                self._charge(reads=i + 1, writes=1)
                page.append(entry)
                return
        self._charge(reads=len(cell.pages), writes=1)
        cell.pages.append([entry])

    def insert_object(self, oid: int, x: float, y: float) -> None:
        self._append(self._cell_of(x, y), (x, y, oid, 0))

    def update_object(
        self,
        oid: int,
        old_pos: Tuple[float, float],
        new_pos: Tuple[float, float],
    ) -> None:
        """Classic update: delete from the old cell, insert into the new."""
        ox, oy = old_pos
        cell = self._cell_of(ox, oy)
        for i, page in enumerate(cell.pages):
            for j, entry in enumerate(page):
                if entry[2] == oid:
                    self._charge(reads=i + 1, writes=1)
                    del page[j]
                    self._append(
                        self._cell_of(*new_pos),
                        (new_pos[0], new_pos[1], oid, 0),
                    )
                    return
        raise KeyError(oid)

    def delete_object(self, oid: int, old_pos: Tuple[float, float]) -> None:
        ox, oy = old_pos
        cell = self._cell_of(ox, oy)
        for i, page in enumerate(cell.pages):
            for j, entry in enumerate(page):
                if entry[2] == oid:
                    self._charge(reads=i + 1, writes=1)
                    del page[j]
                    return
        raise KeyError(oid)

    def _cells_in(self, xmin, ymin, xmax, ymax) -> Iterator[_Cell]:
        cx0 = min(self.side - 1, max(0, int(xmin * self.side)))
        cy0 = min(self.side - 1, max(0, int(ymin * self.side)))
        cx1 = min(self.side - 1, max(0, int(xmax * self.side)))
        cy1 = min(self.side - 1, max(0, int(ymax * self.side)))
        for cy in range(cy0, cy1 + 1):
            for cx in range(cx0, cx1 + 1):
                yield self._cells[cy][cx]

    def range_search(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[Tuple[int, float, float]]:
        """All ``(oid, x, y)`` whose point lies in the closed window."""
        results = []
        for cell in self._cells_in(xmin, ymin, xmax, ymax):
            self._charge(reads=len(cell.pages))
            for page in cell.pages:
                for x, y, oid, _stamp in page:
                    if xmin <= x <= xmax and ymin <= y <= ymax:
                        results.append((oid, x, y))
        return results

    # -- metrics ------------------------------------------------------------------

    def num_entries(self) -> int:
        return sum(
            len(page)
            for row in self._cells
            for cell in row
            for page in cell.pages
        )

    def num_pages(self) -> int:
        return sum(
            len(cell.pages) for row in self._cells for cell in row
        )


class MemoGrid(GridFile):
    """Grid file with memo-based updates and a sweeping cleaner cursor."""

    name = "Memo-grid"

    def __init__(
        self,
        side: int = 16,
        page_size: int = 2048,
        inspection_ratio: float = 0.2,
        clean_upon_touch: bool = True,
        memo_buckets: int = 64,
    ):
        super().__init__(side, page_size, stamped=True)
        if inspection_ratio < 0:
            raise ValueError("inspection_ratio must be non-negative")
        self.memo = UpdateMemo(n_buckets=memo_buckets)
        self.stamps = StampCounter()
        self.inspection_ratio = inspection_ratio
        self.clean_upon_touch = clean_upon_touch
        self._step_credit = 0.0
        self._cursor = 0
        self.cells_inspected = 0
        self.entries_removed = 0

    # -- memo-based operations ---------------------------------------------------

    def insert_object(self, oid: int, x: float, y: float) -> None:
        self._memo_insert(oid, x, y)

    def update_object(self, oid: int, old_pos, new_pos) -> None:
        """One insertion — the old entry goes stale wherever it lies."""
        self._memo_insert(oid, new_pos[0], new_pos[1])

    def delete_object(self, oid: int, old_pos=None) -> None:
        self.memo.record_update(oid, self.stamps.next())
        self._after_update()

    def _memo_insert(self, oid: int, x: float, y: float) -> None:
        stamp = self.stamps.next()
        self.memo.record_update(oid, stamp)
        cell = self._cell_of(x, y)
        if self.clean_upon_touch:
            # The chain is being read for the insertion anyway.
            self.entries_removed += self._clean_cell(cell, charge=False)
        self._append(cell, (x, y, oid, stamp))
        self._after_update()

    def _after_update(self) -> None:
        self._step_credit += self.inspection_ratio
        while self._step_credit >= 1.0:
            self._step_credit -= 1.0
            self._cursor_step()

    def _clean_cell(self, cell: _Cell, charge: bool = True) -> int:
        removed = 0
        dirty_pages = 0
        for page in cell.pages:
            kept = [
                entry
                for entry in page
                if not self.memo.is_obsolete(entry[2], entry[3])
            ]
            if len(kept) != len(page):
                for entry in page:
                    if self.memo.is_obsolete(entry[2], entry[3]):
                        self.memo.note_cleaned(entry[2])
                        removed += 1
                page[:] = kept
                dirty_pages += 1
        # Drop emptied overflow pages (keep one page per cell).
        cell.pages = [p for p in cell.pages if p] or [[]]
        if charge:
            self._charge(reads=len(cell.pages), writes=dirty_pages)
        return removed

    def _cursor_step(self) -> None:
        row, col = divmod(self._cursor, self.side)
        self._cursor = (self._cursor + 1) % (self.side * self.side)
        self.cells_inspected += 1
        self.entries_removed += self._clean_cell(self._cells[row][col])

    def run_full_sweep(self) -> int:
        """Clean every cell once (the grid's Property 1)."""
        removed_before = self.entries_removed
        for _ in range(self.side * self.side):
            self._cursor_step()
        return self.entries_removed - removed_before

    # -- filtered queries -----------------------------------------------------------

    def range_search(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> List[Tuple[int, float, float]]:
        results = []
        for cell in self._cells_in(xmin, ymin, xmax, ymax):
            self._charge(reads=len(cell.pages))
            for page in cell.pages:
                for x, y, oid, stamp in page:
                    if (
                        xmin <= x <= xmax
                        and ymin <= y <= ymax
                        and self.memo.check_status(oid, stamp) == LATEST
                    ):
                        results.append((oid, x, y))
        return results

    def garbage_count(self) -> int:
        return sum(
            1
            for row in self._cells
            for cell in row
            for page in cell.pages
            for entry in page
            if self.memo.is_obsolete(entry[2], entry[3])
        )
