"""Memo-based updates beyond R-trees (the paper's closing claim).

The conclusion of the paper argues the memo-based approach generalises to
"B-trees, quadtrees and Grid Files".  This package substantiates it with
three transplants that reuse the *same* Update Memo, stamp counter and lazy
cleaning machinery as the RUM-tree:

* :class:`~repro.extensions.btree.MemoBTree` vs the classic
  :class:`~repro.extensions.btree.BPlusTree`;
* :class:`~repro.extensions.quadtree.MemoQuadtree` vs the classic
  :class:`~repro.extensions.quadtree.PRQuadtree`;
* :class:`~repro.extensions.grid.MemoGrid` vs the classic
  :class:`~repro.extensions.grid.GridFile` (the LUGrid direction).

The ``bench_ablation_extensions`` benchmark compares the update costs.
"""

from .btree import BPlusTree, BTreeCodec, BTreeNode, MemoBTree
from .grid import GridFile, MemoGrid
from .quadtree import MemoQuadtree, PRQuadtree

__all__ = [
    "BPlusTree",
    "MemoBTree",
    "BTreeNode",
    "BTreeCodec",
    "GridFile",
    "MemoGrid",
    "PRQuadtree",
    "MemoQuadtree",
]
