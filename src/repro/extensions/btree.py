"""Memo-based updates for B+-trees (the conclusion's generality claim).

The paper closes with: *"We believe that the memo-based update approach
has potential to support frequent updates in many other indexing
structures, for instances, B-trees, quadtrees and Grid Files."*  This
module substantiates that claim for the B+-tree:

* :class:`BPlusTree` — a classic disk-based B+-tree over float keys with
  the usual top-down update (delete the old key, insert the new one);
* :class:`MemoBTree` — the same tree updated memo-style: an update only
  *inserts* a stamped entry, the shared :class:`~repro.core.memo.UpdateMemo`
  marks older entries obsolete, queries filter through CheckStatus, and a
  cleaning token walks the (naturally linked) leaf level.

Both share the storage substrate (paged disk + buffer pool), so their
update costs are directly comparable: a top-down B-tree update costs one
leaf read+write for the delete plus one read+write for the insert (the key
may move to a different leaf), while a memo-based update costs a single
insert — the same 2:1 shape as the R-tree case, without the R-tree's
multi-path search penalty (B-tree searches are single-path, so the gap is
smaller; the extension bench quantifies it).

Keys are floats in [0, 1) — e.g. a one-dimensional position or any scalar
attribute that changes frequently.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.core.memo import LATEST, UpdateMemo
from repro.core.stamp import StampCounter
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.iostats import IOStats

NODE_HEADER_BYTES = 32
_HEADER = struct.Struct("<BxHxxxxqq8x")

#: key (float64) + oid (int64)
CLASSIC_LEAF_ENTRY_BYTES = 16
#: key + oid + stamp
MEMO_LEAF_ENTRY_BYTES = 24
#: separator key + child page id
INDEX_ENTRY_BYTES = 16

NO_PAGE = -1


class BTreeNode:
    """One B+-tree node.

    Leaves hold ``(key, oid, stamp)`` triples sorted by key and are linked
    left-to-right via ``next_leaf`` (circularly, so the memo variant's
    cleaning token can walk them like the RUM-tree's leaf ring).  Internal
    nodes hold ``children`` (page ids) separated by ``keys``:
    ``len(children) == len(keys) + 1``.
    """

    __slots__ = (
        "page_id",
        "is_leaf",
        "keys",
        "oids",
        "stamps",
        "children",
        "prev_leaf",
        "next_leaf",
        "cached_bytes",
        "columns",
    )

    def __init__(self, page_id: int, is_leaf: bool):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: List[float] = []
        self.oids: List[int] = []
        self.stamps: List[int] = []
        self.children: List[int] = []
        self.prev_leaf = NO_PAGE
        self.next_leaf = NO_PAGE
        # Page image matching the current state (see repro.rtree.node.Node);
        # the buffer pool clears it on mark_dirty and reuses it on writes.
        # ``columns`` is part of the same buffer-pool node contract (the
        # pool invalidates it on mark_dirty); a B+-tree has no coordinate
        # columns, so it simply stays None.
        self.cached_bytes = None
        self.columns = None

    def __len__(self) -> int:
        return len(self.keys)


class BTreeCodec:
    """Binary page layout for :class:`BTreeNode` (buffer-pool compatible)."""

    def __init__(self, node_size: int, memo_leaves: bool):
        self.node_size = node_size
        self.memo_leaves = memo_leaves
        leaf_entry = (
            MEMO_LEAF_ENTRY_BYTES if memo_leaves else CLASSIC_LEAF_ENTRY_BYTES
        )
        self.leaf_cap = (node_size - NODE_HEADER_BYTES) // leaf_entry
        self.index_cap = (
            (node_size - NODE_HEADER_BYTES - 8) // INDEX_ENTRY_BYTES
        )
        if self.leaf_cap < 4 or self.index_cap < 4:
            raise ValueError(f"node size {node_size} too small for a B+-tree")

    def encode(self, node: BTreeNode) -> bytes:
        header = _HEADER.pack(
            1 if node.is_leaf else 0,
            len(node.keys),
            node.prev_leaf,
            node.next_leaf,
        )
        if node.is_leaf:
            if self.memo_leaves:
                flat: List = []
                for key, oid, stamp in zip(
                    node.keys, node.oids, node.stamps
                ):
                    flat.extend((key, oid, stamp))
                body = struct.pack(f"<{'dqq' * len(node.keys)}", *flat)
            else:
                flat = []
                for key, oid in zip(node.keys, node.oids):
                    flat.extend((key, oid))
                body = struct.pack(f"<{'dq' * len(node.keys)}", *flat)
        else:
            flat = [float(k) for k in node.keys]
            body = struct.pack(f"<{len(flat)}d", *flat)
            body += struct.pack(
                f"<{len(node.children)}q", *node.children
            )
        page = header + body
        if len(page) > self.node_size:
            raise ValueError(f"node {node.page_id} exceeds the page size")
        return page + b"\x00" * (self.node_size - len(page))

    def decode(
        self, page_id: int, data: bytes, lazy: bool = False
    ) -> BTreeNode:
        # ``lazy`` is accepted for buffer-pool compatibility; B+-tree pages
        # always decode eagerly.
        is_leaf_flag, count, prev_leaf, next_leaf = _HEADER.unpack_from(data)
        node = BTreeNode(page_id, bool(is_leaf_flag))
        node.prev_leaf = prev_leaf
        node.next_leaf = next_leaf
        offset = NODE_HEADER_BYTES
        if node.is_leaf:
            if self.memo_leaves:
                values = struct.unpack_from(f"<{'dqq' * count}", data, offset)
                node.keys = list(values[0::3])
                node.oids = list(values[1::3])
                node.stamps = list(values[2::3])
            else:
                values = struct.unpack_from(f"<{'dq' * count}", data, offset)
                node.keys = list(values[0::2])
                node.oids = list(values[1::2])
                node.stamps = [0] * count
        else:
            node.keys = list(
                struct.unpack_from(f"<{count}d", data, offset)
            )
            offset += count * 8
            node.children = list(
                struct.unpack_from(f"<{count + 1}q", data, offset)
            )
        node.cached_bytes = data
        return node


class BPlusTree:
    """Classic disk-based B+-tree over ``(key, oid)`` pairs.

    Updates are top-down: locate and remove the old ``(key, oid)`` entry,
    then insert the new one.  Deletion is lazy (no merging) — standard
    engineering practice that keeps the baseline fair rather than
    handicapped.
    """

    name = "B+-tree"

    def __init__(self, node_size: int = 2048, memo_leaves: bool = False):
        stats = IOStats()
        codec = BTreeCodec(node_size, memo_leaves=memo_leaves)
        self.buffer = BufferPool(DiskManager(node_size), codec, stats)
        self.stats = stats
        self.leaf_cap = codec.leaf_cap
        self.index_cap = codec.index_cap
        self.parent = {}
        with self.buffer.operation():
            root = self._new_node(is_leaf=True)
            root.prev_leaf = root.page_id
            root.next_leaf = root.page_id
            self.buffer.mark_dirty(root)
        self.root_id = root.page_id
        self.height = 1

    # -- node plumbing ---------------------------------------------------

    def _new_node(self, is_leaf: bool) -> BTreeNode:
        page_id = self.buffer.disk.allocate()
        node = BTreeNode(page_id, is_leaf)
        self.buffer.mark_dirty(node)
        return node

    def _find_leaf(self, key: float) -> BTreeNode:
        node = self.buffer.get_node(self.root_id)
        while not node.is_leaf:
            i = 0
            while i < len(node.keys) and key >= node.keys[i]:
                i += 1
            node = self.buffer.get_node(node.children[i])
        return node

    # -- operations --------------------------------------------------------

    def insert(self, key: float, oid: int, stamp: int = 0) -> None:
        """Insert one entry (1 leaf read + 1 leaf write, plus splits)."""
        with self.buffer.operation():
            leaf = self._find_leaf(key)
            self._leaf_insert(leaf, key, oid, stamp)

    def _leaf_insert(
        self, leaf: BTreeNode, key: float, oid: int, stamp: int
    ) -> None:
        import bisect

        i = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(i, key)
        leaf.oids.insert(i, oid)
        leaf.stamps.insert(i, stamp)
        self.buffer.mark_dirty(leaf)
        if len(leaf.keys) > self.leaf_cap:
            self._split_leaf(leaf)

    def _split_leaf(self, leaf: BTreeNode) -> None:
        mid = len(leaf.keys) // 2
        sibling = self._new_node(is_leaf=True)
        sibling.keys = leaf.keys[mid:]
        sibling.oids = leaf.oids[mid:]
        sibling.stamps = leaf.stamps[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.oids = leaf.oids[:mid]
        leaf.stamps = leaf.stamps[:mid]
        # Link the sibling into the circular leaf list.
        sibling.prev_leaf = leaf.page_id
        sibling.next_leaf = leaf.next_leaf
        if leaf.next_leaf == leaf.page_id:
            leaf.prev_leaf = sibling.page_id
        else:
            successor = self.buffer.get_node(leaf.next_leaf)
            successor.prev_leaf = sibling.page_id
            self.buffer.mark_dirty(successor)
        leaf.next_leaf = sibling.page_id
        self.buffer.mark_dirty(leaf)
        self.buffer.mark_dirty(sibling)
        self._push_up(leaf, sibling.keys[0], sibling)

    def _push_up(
        self, left: BTreeNode, separator: float, right: BTreeNode
    ) -> None:
        if left.page_id == self.root_id:
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [left.page_id, right.page_id]
            self.buffer.mark_dirty(new_root)
            self.parent[left.page_id] = new_root.page_id
            self.parent[right.page_id] = new_root.page_id
            self.root_id = new_root.page_id
            self.height += 1
            return
        parent = self.buffer.get_node(self.parent[left.page_id])
        i = parent.children.index(left.page_id)
        parent.keys.insert(i, separator)
        parent.children.insert(i + 1, right.page_id)
        self.parent[right.page_id] = parent.page_id
        self.buffer.mark_dirty(parent)
        if len(parent.keys) > self.index_cap:
            self._split_internal(parent)

    def _split_internal(self, node: BTreeNode) -> None:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        sibling = self._new_node(is_leaf=False)
        sibling.keys = node.keys[mid + 1:]
        sibling.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        for child in sibling.children:
            self.parent[child] = sibling.page_id
        self.buffer.mark_dirty(node)
        self.buffer.mark_dirty(sibling)
        self._push_up(node, separator, sibling)

    def delete(self, key: float, oid: int) -> bool:
        """Remove the entry ``(key, oid)``; returns False when absent.

        Lazy deletion: leaves may underflow (they are merged only when
        they empty completely into their neighbour's ring position).
        """
        with self.buffer.operation():
            leaf = self._find_leaf(key)
            for i, (k, o) in enumerate(zip(leaf.keys, leaf.oids)):
                if o == oid and k == key:
                    del leaf.keys[i]
                    del leaf.oids[i]
                    del leaf.stamps[i]
                    self.buffer.mark_dirty(leaf)
                    return True
            return False

    # -- moving-key protocol ---------------------------------------------------

    def insert_object(self, oid: int, key: float) -> None:
        self.insert(key, oid)

    def update_object(self, oid: int, old_key: float, new_key: float) -> None:
        """Top-down update: separate delete + insert (two disk operations,
        as in the R-tree baselines)."""
        if not self.delete(old_key, oid):
            raise KeyError(oid)
        self.insert(new_key, oid)

    def delete_object(self, oid: int, old_key: float) -> None:
        if not self.delete(old_key, oid):
            raise KeyError(oid)

    def range_search(self, low: float, high: float) -> List[Tuple[int, float]]:
        """All ``(oid, key)`` with ``low <= key <= high``."""
        results: List[Tuple[int, float]] = []
        for key, oid, _stamp in self._scan(low, high):
            results.append((oid, key))
        return results

    def _scan(
        self, low: float, high: float
    ) -> Iterator[Tuple[float, int, int]]:
        with self.buffer.operation():
            leaf = self._find_leaf(low)
            # Duplicate keys equal to a separator may straddle a split:
            # step back while the previous ring leaf still reaches ``low``.
            # The entry page bounds the walk — with a ring full of equal
            # keys the loop would otherwise never terminate.
            entry_page = leaf.page_id
            while leaf.prev_leaf not in (NO_PAGE, leaf.page_id, entry_page):
                prev = self.buffer.get_node(leaf.prev_leaf)
                if not prev.keys or prev.keys[-1] < low:
                    break
                if leaf.keys and prev.keys[-1] > leaf.keys[0]:
                    break  # wrapped to the ring's largest keys
                leaf = prev
            start = leaf.page_id
            while True:
                for key, oid, stamp in zip(leaf.keys, leaf.oids, leaf.stamps):
                    if key > high:
                        return
                    if key >= low:
                        yield key, oid, stamp
                if leaf.next_leaf in (NO_PAGE, start):
                    return
                nxt = self.buffer.get_node(leaf.next_leaf)
                # The leaf level is circular: stop when it wraps back to
                # smaller keys instead of walking the whole ring.
                if nxt.keys and leaf.keys and nxt.keys[0] < leaf.keys[0]:
                    return
                leaf = nxt

    # -- introspection ------------------------------------------------------------

    def iter_leaves(self) -> Iterator[BTreeNode]:
        """Uncounted leaf walk (metrics and the cleaner's ring discovery)."""
        stack = [self.root_id]
        while stack:
            node = self._peek_node(stack.pop())
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children)

    def _peek_node(self, page_id: int) -> BTreeNode:
        cached = self.buffer._internal_cache.get(page_id)
        if cached is not None:
            return cached
        cached = self.buffer._op_leaf_cache.get(page_id)
        if cached is not None:
            return cached
        cached = self.buffer._lru.get(page_id)
        if cached is not None:
            return cached
        return self.buffer.codec.decode(
            page_id, self.buffer.disk.peek(page_id)
        )

    def num_entries(self) -> int:
        return sum(len(leaf) for leaf in self.iter_leaves())

    def num_leaves(self) -> int:
        return sum(1 for _ in self.iter_leaves())


class MemoBTree(BPlusTree):
    """B+-tree with memo-based updates — the RUM principle transplanted.

    Reuses the *same* :class:`UpdateMemo` and :class:`StampCounter` as the
    RUM-tree, plus a token-style cleaner walking the linked leaf level.
    """

    name = "Memo-B+-tree"

    def __init__(
        self,
        node_size: int = 2048,
        inspection_ratio: float = 0.2,
        clean_upon_touch: bool = True,
        memo_buckets: int = 64,
    ):
        super().__init__(node_size, memo_leaves=True)
        if inspection_ratio < 0:
            raise ValueError("inspection_ratio must be non-negative")
        self.memo = UpdateMemo(n_buckets=memo_buckets)
        self.stamps = StampCounter()
        self.inspection_ratio = inspection_ratio
        self.clean_upon_touch = clean_upon_touch
        self._step_credit = 0.0
        self._token_position: Optional[int] = None
        self.leaves_inspected = 0
        self.entries_removed = 0

    # -- memo-based operations ---------------------------------------------------

    def insert_object(self, oid: int, key: float) -> None:
        self._memo_insert(oid, key)

    def update_object(self, oid: int, old_key, new_key: float) -> None:
        """One insertion; the old entry just becomes obsolete."""
        self._memo_insert(oid, new_key)

    def delete_object(self, oid: int, old_key=None) -> None:
        self.memo.record_update(oid, self.stamps.next())
        self._after_update()

    def _memo_insert(self, oid: int, key: float) -> None:
        stamp = self.stamps.next()
        self.memo.record_update(oid, stamp)
        with self.buffer.operation():
            leaf = self._find_leaf(key)
            if self.clean_upon_touch:
                self.entries_removed += self._clean_leaf(leaf)
            self._leaf_insert(leaf, key, oid, stamp)
        self._after_update()

    def _after_update(self) -> None:
        self._step_credit += self.inspection_ratio
        while self._step_credit >= 1.0:
            self._step_credit -= 1.0
            self._token_step()

    def _clean_leaf(self, leaf: BTreeNode) -> int:
        removed = 0
        keys: List[float] = []
        oids: List[int] = []
        stamps: List[int] = []
        for key, oid, stamp in zip(leaf.keys, leaf.oids, leaf.stamps):
            if self.memo.is_obsolete(oid, stamp):
                self.memo.note_cleaned(oid)
                removed += 1
            else:
                keys.append(key)
                oids.append(oid)
                stamps.append(stamp)
        if removed:
            leaf.keys = keys
            leaf.oids = oids
            leaf.stamps = stamps
            self.buffer.mark_dirty(leaf)
        return removed

    def _token_step(self) -> None:
        if self._token_position is None:
            self._token_position = next(self.iter_leaves()).page_id
        with self.buffer.operation():
            leaf = self.buffer.get_node(self._token_position)
            self._token_position = (
                leaf.next_leaf if leaf.next_leaf != NO_PAGE else leaf.page_id
            )
            self.leaves_inspected += 1
            self.entries_removed += self._clean_leaf(leaf)

    def run_full_cycle(self) -> int:
        """Clean every leaf once (Property 1 for the B+-tree)."""
        removed_before = self.entries_removed
        for _ in range(self.num_leaves() + 2):
            self._token_step()
        return self.entries_removed - removed_before

    # -- filtered queries -----------------------------------------------------------

    def range_search(self, low: float, high: float) -> List[Tuple[int, float]]:
        """Live ``(oid, key)`` pairs in the key range (memo-filtered)."""
        return [
            (oid, key)
            for key, oid, stamp in self._scan(low, high)
            if self.memo.check_status(oid, stamp) == LATEST
        ]

    def garbage_count(self) -> int:
        return sum(
            1
            for leaf in self.iter_leaves()
            for oid, stamp in zip(leaf.oids, leaf.stamps)
            if self.memo.is_obsolete(oid, stamp)
        )
