"""Crash-simulation harness: fault injection, recovery, verification.

See :mod:`repro.crashsim.harness` for the model and
:mod:`repro.storage.faults` for the injection machinery.
"""

from .harness import (
    FULL_WINDOW,
    CrashOutcome,
    CrashScenario,
    CrashSimError,
    WorkloadConfig,
    default_scenarios,
    run_scenario,
    verify_pages,
)

__all__ = [
    "FULL_WINDOW",
    "CrashOutcome",
    "CrashScenario",
    "CrashSimError",
    "WorkloadConfig",
    "default_scenarios",
    "run_scenario",
    "verify_pages",
]
