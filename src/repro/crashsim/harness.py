"""Crash–recover–verify harness for the RUM-tree's durability story.

The paper's crash model (Section 3.4) is asymmetric: the tree pages on
disk survive a crash, while the Update Memo, the stamp counter, and any
unforced log tail die with the process.  This harness turns that model
into an executable contract.  One :func:`run_scenario` call

1. builds a RUM-tree over a :class:`FileDiskManager` (wrapped in a
   :class:`~repro.storage.faults.FaultyDisk`) and, for recovery Options
   II/III, a :class:`~repro.storage.wal.WriteAheadLog`, all sharing one
   :class:`~repro.storage.faults.FaultInjector`;
2. loads an object population, then drives a scripted workload of
   updates, deletes, durability ticks (``buffer.checkpoint()``) and UM
   checkpoints, with the injector armed at one registered fault point;
3. when the simulated crash fires, truncates the log to its durable
   prefix, reopens the store, runs the scenario's recovery option, and
   checks every consistency property the paper promises — structural
   invariants, stamp-counter monotonicity, memo/leaf agreement, and the
   *exact* recovered live set, including the documented lost-delete
   semantics of Options I and II.

Scenario families
-----------------

* **Logical crashes** (``mode="crash"``): the process dies between two
  durability steps — mid WAL force, before a checkpoint record exists,
  between the page-file fsync and the metadata replace, mid page write.
  Recovery must restore exactly the semantics of the scenario's option;
  the in-flight operation is the only permitted ambiguity (it may appear
  applied or not applied, like any interrupted transaction).  The tree
  pages themselves follow the paper's stable-buffer assumption: after
  the crash the harness completes the outstanding tree-page writes
  before reopening, which also proves the write path is exception-safe
  mid-flush.
* **Torn writes** (``mode="torn"``): a page write persists only a prefix
  of the new image.  There is no recovering from that without page-level
  redo — the guarantee is *detection*: the page's crc32 must fail
  verification and decoding must raise
  :class:`~repro.storage.codec.PageChecksumError`, never return garbage.
* **Silent corruption** (``mode="corrupt"``): bytes are flipped without
  a crash.  Same guarantee: the next verification pass flags the page.

Oracle
------

The workload runs with the garbage cleaner disabled
(``inspection_ratio=0``, ``clean_upon_touch=False``), so every entry
ever inserted is still in the tree and the recovered live set is exactly
computable per option:

* Every *live* object (never deleted) is recovered at exactly its last
  committed position, under every option.
* Option I — completed deletes are lost: a memo-based delete leaves no
  trace, so a deleted object resurrects at whichever of its committed
  positions still has a physical entry (insertion-path garbage drops may
  have removed some, or even all, of its obsolete entries — in the
  latter case the object happens to stay deleted).
* Option II — deletes recorded in the last *durable* checkpoint stay
  deleted, exactly; later deletes are lost as under Option I.
* Option III — every completed delete is durable (its memo record was
  force-flushed before the operation returned), so the recovered live
  set is exact.
"""

from __future__ import annotations

import os
import random
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.core.memo_lsm import (
    MANIFEST_TMP_FILE,
    RUN_SUFFIX,
    MemoCorruptionError,
    SpillingUpdateMemo,
)
from repro.core.recovery import RECOVERY_PROCEDURES, RecoveryReport
from repro.core.rum import RUMTree
from repro.core.memo import LATEST
from repro.lint.invariants import InvariantViolation, check_tree
from repro.rtree.geometry import Rect
from repro.storage.buffer import BufferPool
from repro.storage.codec import NodeCodec, PageChecksumError
from repro.storage.faults import FaultInjector, FaultyDisk, SimulatedCrash
from repro.storage.filedisk import FileDiskManager, META_TMP_FILE
from repro.storage.iostats import IOStats
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: The whole unit square — every workload position lies inside it, so a
#: search with this window returns the complete live set.
FULL_WINDOW = Rect(0.0, 0.0, 1.0, 1.0)

_ABSENT = object()  # sentinel: "object not in the live set"


class CrashSimError(AssertionError):
    """A durability guarantee was violated in a crash scenario."""


@dataclass(frozen=True)
class CrashScenario:
    """One cell of the crash matrix.

    ``point=None`` is the baseline: the workload completes, the process
    "dies" cleanly, and recovery must still restore the option's exact
    semantics (for Options I/II that includes losing the right deletes).
    """

    option: str                  # recovery option: "I" | "II" | "III"
    point: Optional[str] = None  # fault point, None = clean shutdown
    mode: str = "crash"          # "crash" | "torn" | "corrupt"
    skip: int = 0                # fault-point hits to let pass first
    torn_bytes: int = 0          # 0 = half a page survives
    corrupt_bytes: int = 8

    @property
    def name(self) -> str:
        where = self.point or "clean-shutdown"
        label = f"{where}/{self.mode}" if self.mode != "crash" else where
        return f"option-{self.option}@{label}"


@dataclass
class WorkloadConfig:
    """Size and shape of the scripted crash workload."""

    node_size: int = 512
    n_objects: int = 32
    n_updates: int = 90
    delete_every: int = 9       # every k-th op is a (permanent) delete
    tick_every: int = 25        # ops between durability ticks
    checkpoint_every: int = 30  # ops between UM checkpoints (II/III)
    seed: int = 7
    #: RAM budget (bytes) for the disk-tiered Update Memo.  ``None``
    #: keeps the pure in-RAM memo — except for ``memo.*`` fault points,
    #: where the harness auto-enables the spilling memo with a tiny
    #: default budget so the fault sites actually execute.
    memo_spill_budget: Optional[int] = None
    memo_compact_threshold: int = 2


#: Auto-enabled spill budget for ``memo.*`` scenarios: small enough that
#: the 90-op crash workload flushes and compacts several times.
_MEMO_FAULT_BUDGET = 256


def _env_spill_budget() -> Optional[int]:
    """``REPRO_MEMO_SPILL_BUDGET`` (bytes): force *every* crash scenario
    onto the disk-tiered memo.  The CI tier-1 memo leg sets a tiny value
    so the whole fault matrix — disk and WAL points included — runs with
    the memo actively spilling and compacting mid-workload."""
    raw = os.environ.get("REPRO_MEMO_SPILL_BUDGET")
    if raw is None:
        return None
    try:
        budget = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring malformed REPRO_MEMO_SPILL_BUDGET={raw!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return budget if budget > 0 else None


@dataclass
class CrashOutcome:
    """What one scenario did and which guarantees were verified."""

    scenario: CrashScenario
    crashed: bool
    kind: str                   # "recovered" | "torn-detected" | ...
    pending: Optional[Tuple] = None   # op in flight when the crash hit
    lost_log_records: int = 0
    damaged_pages: List[int] = field(default_factory=list)
    checks: List[str] = field(default_factory=list)
    report: Optional[RecoveryReport] = None
    live_objects: Optional[int] = None


class _WorkloadOracle:
    """Ground truth of committed operations, per recovery option."""

    def __init__(self) -> None:
        self.pos: Dict[int, Rect] = {}
        #: Every committed position per object — a deleted object whose
        #: newest entries were garbage-dropped before the crash can only
        #: resurrect at one of these.
        self.history: Dict[int, List[Rect]] = {}
        self.inserted: set = set()
        self.deleted: set = set()
        #: Deleted-object sets as of each *committed* checkpoint.
        self.ckpt_states: List[FrozenSet[int]] = []
        #: State captured just before the checkpoint currently in
        #: flight; promoted into ckpt_states when the op commits, and
        #: consulted if a crashed checkpoint still became durable
        #: (its record can cross a page boundary before the force).
        self.attempted_ckpt: Optional[FrozenSet[int]] = None

    def commit(self, op: Tuple) -> None:
        kind = op[0]
        if kind == "update":
            self.inserted.add(op[1])
            self.pos[op[1]] = op[2]
            self.history.setdefault(op[1], []).append(op[2])
        elif kind == "delete":
            self.deleted.add(op[1])
        elif kind == "checkpoint":
            self.ckpt_states.append(self.attempted_ckpt)

    def expected_states(
        self, option: str, ckpt_deleted: Optional[FrozenSet[int]]
    ) -> Dict[int, set]:
        """Allowed post-recovery state per object: a set of permitted
        positions, possibly including :data:`_ABSENT`.

        Live objects get a single exact position.  Deleted objects are
        exactly absent where the option recovers the delete (always for
        III, before the durable checkpoint for II); where the delete is
        lost, the object is absent (its entries happened to be
        garbage-dropped pre-crash) or sits at one of its committed
        positions.
        """
        states: Dict[int, set] = {}
        for oid in self.inserted:
            if oid not in self.deleted:
                states[oid] = {self.pos[oid]}
            elif option == "III" or (
                option == "II"
                and ckpt_deleted is not None
                and oid in ckpt_deleted
            ):
                states[oid] = {_ABSENT}
            else:
                # Lost delete (Option I; Option II past the checkpoint,
                # or with no durable checkpoint at all).
                states[oid] = {_ABSENT, *self.history[oid]}
        return states


# ---------------------------------------------------------------------------
# Page verification
# ---------------------------------------------------------------------------


def verify_pages(disk, codec: NodeCodec) -> List[int]:
    """Checksum-verify every allocated page; return the damaged ids."""
    damaged = []
    for page_id in disk.page_ids():
        try:
            codec.verify_page(page_id, disk.peek(page_id))
        except PageChecksumError:
            damaged.append(page_id)
    return damaged


# ---------------------------------------------------------------------------
# Scenario runner
# ---------------------------------------------------------------------------


def _script_ops(config: WorkloadConfig, option: str,
                rng: random.Random) -> List[Tuple]:
    """The deterministic mutate-phase script (same for every scenario of
    one option, so outcomes are reproducible and comparable)."""
    alive = list(range(1, config.n_objects + 1))
    ops: List[Tuple] = []
    for i in range(config.n_updates):
        if i and i % config.tick_every == 0:
            ops.append(("tick",))
        if option != "I" and i and i % config.checkpoint_every == 0:
            ops.append(("checkpoint",))
        permanent_delete = (
            i % config.delete_every == config.delete_every - 1
            and len(alive) > config.n_objects // 2
        )
        if permanent_delete:
            victim = alive.pop(rng.randrange(len(alive)))
            ops.append(("delete", victim))
        else:
            oid = alive[rng.randrange(len(alive))]
            ops.append(
                ("update", oid, Rect.from_point(rng.random(), rng.random()))
            )
    ops.append(("tick",))
    return ops


def _check(condition: bool, message: str,
           checks: List[str], label: str) -> None:
    if not condition:
        raise CrashSimError(message)
    checks.append(label)


def run_scenario(
    scenario: CrashScenario,
    directory,
    config: Optional[WorkloadConfig] = None,
    obs: Optional["Observability"] = None,
) -> CrashOutcome:
    """Run one crash scenario end to end; raise :class:`CrashSimError`
    (an ``AssertionError``) on any violated guarantee."""
    if scenario.option not in RECOVERY_PROCEDURES:
        raise ValueError(f"unknown recovery option {scenario.option!r}")
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)

    injector = FaultInjector()
    if obs is not None:
        injector.attach_obs(obs)
    inner = FileDiskManager(config.node_size, directory, faults=injector)
    disk = FaultyDisk(inner, injector)
    codec = NodeCodec(config.node_size, rum_leaves=True, checksums=True)
    stats = IOStats()
    buffer = BufferPool(disk, codec, stats)
    option = scenario.option
    wal = (
        WriteAheadLog(config.node_size, stats, faults=injector)
        if option != "I"
        else None
    )
    # The disk-tiered memo: always for memo.* fault points (the sites
    # must execute to fire), opt-in via the config otherwise.  It shares
    # the scenario's injector and lands its run I/O on the same stats.
    memo_fault = scenario.point is not None and scenario.point.startswith(
        "memo."
    )
    env_budget = _env_spill_budget()
    memo_budget = (
        config.memo_spill_budget
        if config.memo_spill_budget is not None
        else (env_budget if env_budget is not None else _MEMO_FAULT_BUDGET)
    )
    memo_dir: Optional[Path] = None
    memo: Optional[SpillingUpdateMemo] = None
    if (
        memo_fault
        or config.memo_spill_budget is not None
        or env_budget is not None
    ):
        memo_dir = Path(directory) / "memo"
        memo = SpillingUpdateMemo(
            memo_dir,
            spill_budget=memo_budget,
            compact_threshold=config.memo_compact_threshold,
            stats=stats,
            faults=injector,
        )
    tree = RUMTree(
        buffer,
        inspection_ratio=0.0,       # cleaning off -> exact oracle
        clean_upon_touch=False,
        recovery_option=option,
        wal=wal,
        checkpoint_interval=10**9,  # checkpoints are scripted explicitly
        memo=memo,
    )

    oracle = _WorkloadOracle()

    # -- load phase (injector disarmed: the base population is durable) --
    for oid in range(1, config.n_objects + 1):
        rect = Rect.from_point(rng.random(), rng.random())
        tree.insert_object(oid, rect)
        oracle.commit(("update", oid, rect))
    buffer.checkpoint()
    tick_allocs = [frozenset(inner.page_ids())]

    # -- mutate phase, with the fault armed --
    if scenario.point is not None:
        injector.arm(
            scenario.point,
            mode=scenario.mode,
            skip=scenario.skip,
            torn_bytes=scenario.torn_bytes,
            corrupt_bytes=scenario.corrupt_bytes,
        )

    pending: Optional[Tuple] = None
    memo_detected_inflight = False
    for op in _script_ops(config, option, rng):
        try:
            kind = op[0]
            if kind == "update":
                tree.update_object(op[1], None, op[2])
            elif kind == "delete":
                tree.delete_object(op[1])
            elif kind == "tick":
                buffer.checkpoint()
            elif kind == "checkpoint":
                oracle.attempted_ckpt = frozenset(oracle.deleted)
                tree.write_checkpoint()
        except SimulatedCrash:
            pending = op
            break
        except MemoCorruptionError:
            # A silently damaged run was caught in flight (a compaction
            # re-validated its inputs).  That *is* the detection
            # guarantee — but only corrupt mode may trade a crash for it.
            if scenario.mode != "corrupt":
                raise
            memo_detected_inflight = True
            break
        oracle.commit(op)
        if kind == "tick":
            tick_allocs.append(frozenset(inner.page_ids()))
        if scenario.mode == "corrupt" and injector.fired:
            # Stop before a later write to the same page heals the
            # damage — corruption is verified exactly as injected.
            break
    crashed = pending is not None
    if obs is not None and crashed:
        obs.event(
            "crashsim.crash", point=scenario.point, option=option,
            pending=pending[0],
        )

    if scenario.mode == "torn" and not memo_fault:
        return _verify_damage_detected(
            scenario, crashed, inner, codec, "torn-detected", obs
        )
    if scenario.mode == "corrupt":
        if crashed:
            raise CrashSimError(
                f"{scenario.name}: silent corruption must not crash"
            )
        if not injector.fired:
            raise CrashSimError(f"{scenario.name}: fault never fired")
        if memo_fault:
            return _verify_memo_corruption_detected(
                scenario, config, memo_dir, memo_budget, injector,
                memo_detected_inflight, obs,
            )
        return _verify_damage_detected(
            scenario, crashed, inner, codec, "corruption-detected", obs
        )

    # A torn memo-run write crashes the writer like any torn page, but
    # the damage sits in an *unnamed* run file: recovery must sweep it
    # and proceed — so memo torn scenarios verify full recovery below.
    if scenario.point is not None and not crashed:
        raise CrashSimError(
            f"{scenario.name}: fault {scenario.point} never fired "
            "(workload too short for skip={})".format(scenario.skip)
        )
    return _recover_and_verify(
        scenario, config, directory, tree, buffer, inner, wal,
        injector, oracle, tick_allocs, pending, obs,
        memo_dir=memo_dir, memo_budget=memo_budget,
    )


def _verify_damage_detected(
    scenario, crashed, inner, codec, kind, obs
) -> CrashOutcome:
    """Torn/corrupted pages cannot be repaired — they must be *found*.

    No flush happens first: the persisted bytes are inspected exactly as
    the fault left them, and the damaged page must fail its crc32 and
    refuse to decode.
    """
    checks: List[str] = []
    if scenario.mode == "torn":
        _check(crashed, f"{scenario.name}: torn write must crash",
               checks, "torn write crashed the writer")
    damaged = verify_pages(inner, codec)
    _check(
        len(damaged) >= 1,
        f"{scenario.name}: damaged page passed checksum verification",
        checks, "damaged page fails crc32",
    )
    for page_id in damaged:
        try:
            codec.decode(page_id, inner.peek(page_id))
        except PageChecksumError:
            continue
        raise CrashSimError(
            f"{scenario.name}: page {page_id} silently decoded"
        )
    checks.append("damaged page refuses to decode")
    if obs is not None:
        obs.event(
            "crashsim.torn_detected", point=scenario.point,
            pages=list(damaged),
        )
    return CrashOutcome(
        scenario=scenario, crashed=crashed, kind=kind,
        damaged_pages=damaged, checks=checks,
    )


def _verify_memo_corruption_detected(
    scenario, config, memo_dir, memo_budget, injector, detected_inflight,
    obs,
) -> CrashOutcome:
    """Silent damage to the memo's disk tier cannot be repaired — it
    must be *found*: either a compaction re-validating its inputs raised
    in flight, or reopening the tier fails its CRC checks.  Never may a
    damaged run or manifest silently decode into memo state."""
    checks: List[str] = []
    injector.disarm()
    if detected_inflight:
        checks.append("corrupt run caught in flight by compaction")
    else:
        try:
            probe = SpillingUpdateMemo(
                memo_dir,
                spill_budget=memo_budget,
                compact_threshold=config.memo_compact_threshold,
            )
        except MemoCorruptionError:
            checks.append("corrupt memo tier fails CRC at reopen")
        else:
            probe.close()
            raise CrashSimError(
                f"{scenario.name}: damaged memo tier silently reopened"
            )
    if obs is not None:
        obs.event(
            "crashsim.memo_corruption_detected", point=scenario.point,
            inflight=detected_inflight,
        )
    return CrashOutcome(
        scenario=scenario, crashed=False,
        kind="memo-corruption-detected", checks=checks,
    )


def _recover_and_verify(
    scenario, config, directory, tree, buffer, inner, wal,
    injector, oracle, tick_allocs, pending, obs,
    memo_dir=None, memo_budget=0,
) -> CrashOutcome:
    checks: List[str] = []
    injector.disarm()
    lost = wal.crash_truncate() if wal is not None else 0

    if scenario.point == "disk.meta.tmp":
        _check(
            (inner.directory / META_TMP_FILE).exists(),
            f"{scenario.name}: crash left no temp metadata file",
            checks, "in-flight temp metadata present",
        )
    if scenario.point in ("disk.sync.data", "disk.meta.tmp"):
        # The interrupted sync must have left the *previous complete*
        # metadata: a fresh open sees exactly the last committed tick.
        probe = FileDiskManager.open(directory)
        _check(
            frozenset(probe.page_ids()) == tick_allocs[-1],
            f"{scenario.name}: metadata torn by interrupted sync",
            checks, "metadata atomic across interrupted sync",
        )
        probe._file.close()  # close without sync: read-only probe

    # Paper model (Section 3.4): the tree pages are durable; only the
    # memo, the stamps, and the unforced log tail are lost.  Completing
    # the outstanding page writes here also proves the buffer is
    # exception-safe: a crash mid-flush leaves every dirty page still
    # queued, so the retry loses nothing.
    buffer.flush()
    inner.sync()
    attach = {
        "root_id": tree.root_id,
        "height": tree.height,
        "parent": dict(tree.parent),
    }

    disk2 = FileDiskManager.open(directory)
    codec2 = NodeCodec(config.node_size, rum_leaves=True, checksums=True)
    stats2 = IOStats()
    buffer2 = BufferPool(disk2, codec2, stats2)
    if wal is not None:
        wal.stats = stats2  # recovery I/O lands on the reopened stack

    # The memo's spilled tier survives the crash like the tree pages;
    # only the RAM tier dies.  Reopening must land on the last durable
    # manifest: drop an in-flight manifest temp, validate every named
    # run, sweep orphans (a torn run flush or an un-swapped compaction
    # output is an unnamed file).  The recovery option then *rebuilds*
    # the memo content through this reopened tier, so every oracle check
    # below also exercises the disk-resident memo path.
    memo2: Optional[SpillingUpdateMemo] = None
    if memo_dir is not None:
        if scenario.point == "memo.manifest":
            _check(
                (memo_dir / MANIFEST_TMP_FILE).exists(),
                f"{scenario.name}: crash left no temp memo manifest",
                checks, "in-flight temp memo manifest present",
            )
        memo2 = SpillingUpdateMemo(
            memo_dir,
            spill_budget=memo_budget,
            compact_threshold=config.memo_compact_threshold,
            stats=stats2,
        )
        _check(
            not (memo_dir / MANIFEST_TMP_FILE).exists(),
            f"{scenario.name}: memo reopen kept the manifest temp file",
            checks, "memo manifest temp dropped at reopen",
        )
        live_names = {run.path.name for run in memo2._runs}
        on_disk = {p.name for p in memo_dir.glob(f"*{RUN_SUFFIX}")}
        _check(
            on_disk == live_names,
            f"{scenario.name}: orphan memo runs survived reopen "
            f"({sorted(on_disk - live_names)})",
            checks, "memo tier on durable manifest, orphans swept",
        )

    tree2 = RUMTree(
        buffer2,
        inspection_ratio=0.0,
        clean_upon_touch=False,
        recovery_option=scenario.option,
        wal=wal,
        checkpoint_interval=10**9,
        attach=attach,
        memo=memo2,
    )

    _check(
        not verify_pages(disk2, codec2),
        f"{scenario.name}: logical crash left a torn page",
        checks, "all pages checksum-clean",
    )

    # Which checkpoint is durable?  Normally exactly the committed ones;
    # a crashed checkpoint survives only if its record crossed a page
    # boundary before the force died, in which case the pre-commit
    # snapshot the oracle stashed is the durable state.
    ckpt_deleted = None
    if wal is not None:
        durable = wal.checkpoint_count()
        committed = len(oracle.ckpt_states)
        if durable == committed:
            ckpt_deleted = oracle.ckpt_states[-1] if committed else None
        elif (
            durable == committed + 1
            and pending is not None
            and pending[0] == "checkpoint"
        ):
            ckpt_deleted = oracle.attempted_ckpt
        else:
            raise CrashSimError(
                f"{scenario.name}: {durable} durable checkpoints vs "
                f"{committed} committed"
            )
        checks.append("durable log prefix matches committed checkpoints")

    report = RECOVERY_PROCEDURES[scenario.option](tree2)
    # Full structural + memo/stamp validation (not just lost/ghost
    # objects): MBR containment, fanout bounds, leaf ring, Lemma-1 memo
    # consistency, stamp monotonicity.
    try:
        check_tree(tree2)
    except InvariantViolation as exc:
        raise CrashSimError(
            f"{scenario.name}: structural invariant violated after "
            f"Option {scenario.option} recovery: {exc}"
        ) from exc
    checks.append("structural and memo invariants hold")

    if memo2 is not None:
        _check(
            memo2.ram_size_bytes() <= memo_budget,
            f"{scenario.name}: recovery blew the memo RAM budget "
            f"({memo2.ram_size_bytes()} > {memo_budget} bytes)",
            checks, "recovered memo within its RAM budget",
        )
        _check(
            all(n_old >= 1 for _oid, _s, n_old in memo2.snapshot()),
            f"{scenario.name}: recovered memo holds a drained entry",
            checks, "every recovered memo entry counts >= 1 obsolete",
        )

    live = _verify_recovered_state(
        scenario, tree2, oracle, ckpt_deleted, pending, checks
    )
    if obs is not None:
        obs.event(
            "crashsim.recovered", point=scenario.point,
            option=scenario.option, live=len(live),
            lost_log_records=lost,
        )
    return CrashOutcome(
        scenario=scenario, crashed=pending is not None, kind="recovered",
        pending=pending, lost_log_records=lost, checks=checks,
        report=report, live_objects=len(live),
    )


def _verify_recovered_state(
    scenario, tree2, oracle, ckpt_deleted, pending, checks
) -> Dict[int, Rect]:
    option = scenario.option

    # -- memo / leaf agreement -------------------------------------------
    by_oid: Dict[int, List] = {}
    max_stamp = 0
    for entry in tree2.iter_leaf_entries():
        by_oid.setdefault(entry.oid, []).append(entry)
        max_stamp = max(max_stamp, entry.stamp)
    latest_pos: Dict[int, Rect] = {}
    for oid, entries in by_oid.items():
        latest = [
            e for e in entries
            if tree2.memo.check_status(oid, e.stamp) == LATEST
        ]
        if len(latest) > 1:
            raise CrashSimError(
                f"{scenario.name}: object {oid} has {len(latest)} LATEST "
                "entries after recovery"
            )
        if latest:
            newest = max(entries, key=lambda e: e.stamp)
            if latest[0] is not newest:
                raise CrashSimError(
                    f"{scenario.name}: object {oid}: a stale entry is "
                    "LATEST after recovery"
                )
            latest_pos[oid] = latest[0].rect
        elif option == "I":
            raise CrashSimError(
                f"{scenario.name}: Option I lost object {oid} (it cannot "
                "recover deletes, let alone invent them)"
            )
    checks.append("memo classifies exactly the newest entry as LATEST")

    if not tree2.stamps.current > max_stamp:
        raise CrashSimError(
            f"{scenario.name}: stamp counter {tree2.stamps.current} not "
            f"past the newest leaf stamp {max_stamp}"
        )
    checks.append("stamp counter restored past every leaf stamp")

    # -- query answers == memo-filtered leaf content ---------------------
    results = tree2.search(FULL_WINDOW)
    got = dict(results)
    if len(got) != len(results):
        raise CrashSimError(
            f"{scenario.name}: search returned a duplicate object"
        )
    if got != latest_pos:
        raise CrashSimError(
            f"{scenario.name}: search disagrees with the memo-filtered "
            f"leaf scan ({len(got)} vs {len(latest_pos)} objects)"
        )
    checks.append("search equals memo-filtered leaf content")

    # -- per-option live set (lost-delete semantics included) ------------
    states = oracle.expected_states(option, ckpt_deleted)
    ambiguous = (
        pending[1]
        if pending is not None and pending[0] in ("update", "delete")
        else None
    )
    if ambiguous is not None:
        # The in-flight op may appear applied or not — widen only that
        # one object's set of permitted states.
        allowed = states.setdefault(ambiguous, set())
        allowed.add(_ABSENT)
        allowed.update(oracle.history.get(ambiguous, ()))
        if pending[0] == "update":
            allowed.add(pending[2])
        checks.append("in-flight op confined to applied-or-not")
    extra = sorted(set(got) - set(states))
    if extra:
        raise CrashSimError(
            f"{scenario.name}: recovery invented objects {extra}"
        )
    wrong = sorted(
        oid for oid, allowed in states.items()
        if got.get(oid, _ABSENT) not in allowed
    )
    if wrong:
        detail = {
            oid: (
                "absent"
                if got.get(oid, _ABSENT) is _ABSENT
                else got[oid]
            )
            for oid in wrong[:5]
        }
        raise CrashSimError(
            f"{scenario.name}: recovered state wrong for objects "
            f"{wrong}: {detail}"
        )
    exact = sum(1 for allowed in states.values() if len(allowed) == 1)
    checks.append(
        f"Option {option} semantics: {exact}/{len(states)} objects pinned "
        "exactly, rest within lost-delete latitude"
    )
    return got


# ---------------------------------------------------------------------------
# The crash matrix
# ---------------------------------------------------------------------------


def default_scenarios() -> List[CrashScenario]:
    """Every registered fault point crossed with every recovery option
    it applies to, plus a clean-shutdown baseline per option."""
    scenarios: List[CrashScenario] = []
    for option in ("I", "II", "III"):
        scenarios.append(CrashScenario(option=option))
        scenarios.append(
            CrashScenario(option=option, point="disk.page_write", skip=5)
        )
        scenarios.append(
            CrashScenario(option=option, point="disk.sync.data")
        )
        scenarios.append(
            CrashScenario(option=option, point="disk.meta.tmp")
        )
        scenarios.append(
            CrashScenario(
                option=option, point="disk.page_torn", mode="torn", skip=5
            )
        )
        scenarios.append(
            CrashScenario(
                option=option, point="disk.page_write", mode="corrupt",
                skip=5,
            )
        )
        if option != "I":
            # Option I has no log: wal.* points never execute.
            scenarios.append(
                CrashScenario(option=option, point="wal.checkpoint", skip=1)
            )
            scenarios.append(
                CrashScenario(
                    option=option, point="wal.force",
                    skip=0 if option == "II" else 40,
                )
            )
        if option == "III":
            scenarios.append(
                CrashScenario(option=option, point="wal.append", skip=8)
            )
        # Disk-tiered memo faults.  Option I carries the full grid (its
        # recovery rebuilds the memo from a leaf scan, the worst case
        # for stale spilled state); II/III spot-check that checkpoint /
        # log replay also land correctly on a reopened spill tier.
        # Corrupt-mode skips are 0 by design: the first damaged artifact
        # must stay the *last* written so no later manifest rewrite
        # heals it before detection (the workload stops on fire).
        if option == "I":
            scenarios.extend(
                [
                    CrashScenario(
                        option=option, point="memo.run_flush", skip=1
                    ),
                    CrashScenario(
                        option=option, point="memo.run_flush",
                        mode="torn", skip=1,
                    ),
                    CrashScenario(
                        option=option, point="memo.run_flush",
                        mode="corrupt",
                    ),
                    CrashScenario(option=option, point="memo.compact"),
                    CrashScenario(
                        option=option, point="memo.compact", mode="corrupt"
                    ),
                    CrashScenario(
                        option=option, point="memo.manifest", skip=1
                    ),
                    CrashScenario(
                        option=option, point="memo.manifest",
                        mode="corrupt",
                    ),
                ]
            )
        else:
            scenarios.append(
                CrashScenario(option=option, point="memo.run_flush", skip=2)
            )
            scenarios.append(
                CrashScenario(option=option, point="memo.manifest")
            )
    return scenarios
