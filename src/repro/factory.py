"""Convenience constructors wiring a complete storage stack under a tree.

Every tree needs a disk, a codec, shared I/O counters, and a buffer pool;
the RUM-tree optionally needs a write-ahead log.  These helpers build the
whole stack with the paper's defaults (8192-byte nodes, Section 5.1.2) so
examples, tests, and benchmarks stay short::

    from repro.factory import build_rum_tree

    tree = build_rum_tree(node_size=8192, inspection_ratio=0.2)
    tree.insert_object(1, Rect.from_point(0.5, 0.5))

The created stack is reachable from the tree: ``tree.buffer``,
``tree.buffer.disk``, ``tree.stats``, and ``tree.wal``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.rum import RECOVERY_NONE, RUMTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
from repro.rtree.fur import FURTree
from repro.rtree.rstar import RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.codec import NodeCodec
from repro.storage.disk import DiskManager
from repro.storage.iostats import IOStats
from repro.storage.wal import WriteAheadLog

#: The node size the paper settles on after Figure 11 ("we fix the node
#: size at 8192 bytes").
DEFAULT_NODE_SIZE = 8192


def build_storage(
    node_size: int = DEFAULT_NODE_SIZE,
    rum_leaves: bool = False,
    stats: Optional[IOStats] = None,
    leaf_cache_pages: int = 0,
) -> BufferPool:
    """Create a disk + codec + buffer stack sharing one counter set.

    ``leaf_cache_pages`` enables the optional resident leaf LRU (0 = the
    paper's no-leaf-cache cost model; see the buffer ablation).
    """
    stats = stats if stats is not None else IOStats()
    disk = DiskManager(node_size)
    codec = NodeCodec(node_size, rum_leaves=rum_leaves)
    return BufferPool(disk, codec, stats, leaf_cache_pages=leaf_cache_pages)


def build_rstar_tree(
    node_size: int = DEFAULT_NODE_SIZE,
    leaf_cache_pages: int = 0,
    obs: Optional["Observability"] = None,
    **tree_kwargs,
) -> RStarTree:
    """An R*-tree baseline on a fresh storage stack."""
    tree = RStarTree(
        build_storage(node_size, leaf_cache_pages=leaf_cache_pages),
        **tree_kwargs,
    )
    if obs is not None:
        tree.attach_obs(obs)
    return tree


def build_fur_tree(
    node_size: int = DEFAULT_NODE_SIZE,
    leaf_cache_pages: int = 0,
    obs: Optional["Observability"] = None,
    **tree_kwargs,
) -> FURTree:
    """A FUR-tree baseline (bottom-up updates) on a fresh storage stack."""
    tree = FURTree(
        build_storage(node_size, leaf_cache_pages=leaf_cache_pages),
        **tree_kwargs,
    )
    if obs is not None:
        tree.attach_obs(obs)
    return tree


def build_rum_tree(
    node_size: int = DEFAULT_NODE_SIZE,
    recovery_option: Optional[str] = None,
    leaf_cache_pages: int = 0,
    obs: Optional["Observability"] = None,
    memo_dir: Optional[str] = None,
    memo_spill_budget: Optional[int] = None,
    memo_compact_threshold: Optional[int] = None,
    **tree_kwargs,
) -> RUMTree:
    """A RUM-tree on a fresh storage stack (RUM leaf layout).

    A write-ahead log is attached automatically when ``recovery_option``
    is ``"II"`` or ``"III"``.  Passing ``memo_dir`` swaps the in-RAM
    Update Memo for the LSM-tiered :class:`~repro.core.memo_lsm.
    SpillingUpdateMemo` rooted at that directory (``memo_spill_budget``
    bytes of RAM, ``memo_compact_threshold`` same-tier runs per merge),
    sharing the stack's I/O counters so run traffic lands in
    ``stats.memo_reads``/``memo_writes``.
    """
    buffer = build_storage(
        node_size, rum_leaves=True, leaf_cache_pages=leaf_cache_pages
    )
    wal: Optional[WriteAheadLog] = None
    if recovery_option is not None and recovery_option != RECOVERY_NONE:
        wal = WriteAheadLog(node_size, buffer.stats)
    if memo_dir is not None:
        from repro.core.memo_lsm import SpillingUpdateMemo

        memo_kwargs = {}
        if memo_spill_budget is not None:
            memo_kwargs["spill_budget"] = memo_spill_budget
        if memo_compact_threshold is not None:
            memo_kwargs["compact_threshold"] = memo_compact_threshold
        tree_kwargs["memo"] = SpillingUpdateMemo(
            memo_dir,
            stats=buffer.stats,
            **memo_kwargs,
        )
    elif memo_spill_budget is not None or memo_compact_threshold is not None:
        raise ValueError(
            "memo_spill_budget/memo_compact_threshold need memo_dir "
            "(the disk-tiered memo must live somewhere)"
        )
    tree = RUMTree(
        buffer,
        recovery_option=recovery_option,
        wal=wal,
        **tree_kwargs,
    )
    if obs is not None:
        tree.attach_obs(obs)
    return tree
