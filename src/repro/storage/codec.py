"""Binary page layout for R-tree nodes.

Pages are fixed-size byte blocks (Table 1 of the paper sweeps node sizes of
1024, 2048, 4096 and 8192 bytes).  The codec makes node fanout physically
meaningful: capacity is derived from the byte layout, so the RUM-tree's
larger leaf entries (56 bytes vs. 40) automatically produce the smaller leaf
fanout that explains its ~10% search-cost overhead in Section 5.

Layout
------

Header (32 bytes)::

    offset  size  field
    0       1     is_leaf flag
    1       1     padding
    2       2     number of entries (uint16)
    4       4     padding
    8       8     prev_leaf page id (int64; leaf ring, Section 3.3.1)
    16      8     next_leaf page id (int64)
    24      4     page checksum (crc32 of the page with this field zeroed;
                  0 = page written without a checksum)
    28      4     reserved

Entries, densely packed after the header::

    directory entry (40 B): xmin ymin xmax ymax  (float64 x4) | child (int64)
    classic leaf    (40 B): xmin ymin xmax ymax | oid/p_o (int64)
    RUM leaf        (56 B): xmin ymin xmax ymax | p_o | oid | stamp (int64 x3)

Hot-path design
---------------

Encode and decode are the innermost loops of the whole simulator (every
counted leaf I/O passes through them), so the codec avoids all per-call
format-string construction and per-entry Python-call overhead:

* **encode** is a single ``pack`` of one precompiled full-page
  :class:`struct.Struct` (header + ``count`` entries + trailing padding),
  cached per (page size, layout, count) in a module-level table — no
  byte concatenation, no separate padding allocation, no ``pack_into``;
* **decode** bulk-unpacks the entry region with one precompiled batch
  Struct and materialises entries by grouping the flat value tuple with
  the ``zip(it, it, ...)`` idiom, building ``Rect``/entry objects through
  ``__new__`` + direct slot stores (skipping the ``__init__`` frames —
  page images round-trip values that were validated when the rectangle
  was first constructed);
* the **lazy leaf path** (``decode(..., lazy=True)``) parses only the
  32-byte header and returns a :class:`~repro.rtree.node.LazyNode` that
  thaws its entries on first access, so header-only consumers (entry
  counts, ring walks, recovery traversals) never materialise entries.

Page checksums
--------------

Four of the header's reserved bytes hold a crc32 over the whole page
(computed with the checksum field itself zeroed), so a torn or corrupted
page image is *detected* instead of silently decoded into garbage
entries.  Checksumming is off by default — the in-memory experiment path
never sees torn writes and its codec round-trip is the hottest loop in
the repository — and switched on (``NodeCodec(..., checksums=True)``)
by the stacks that actually face crashes: the file-backed persistence
layer and the crash-simulation harness.  A stored checksum of 0 means
"written without a checksum" (all pre-checksum pages read back as 0
there), and verification skips such legacy pages; freshly computed
checksums that happen to be 0 are remapped so 0 is never written.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Sequence, Tuple
from zlib import crc32

from repro import kernels
from repro.rtree.geometry import Rect
from repro.rtree.node import (
    CLASSIC_LEAF_ENTRY_BYTES,
    INDEX_ENTRY_BYTES,
    NODE_HEADER_BYTES,
    RUM_LEAF_ENTRY_BYTES,
    IndexEntry,
    LazyNode,
    LeafEntry,
    Node,
    index_capacity,
    leaf_capacity,
)

#: Hot-path marker for lint rule REP009: bulk MBR predicates in this module
#: must go through :mod:`repro.kernels` (see docs/LINT.md).
HOT_PATH = True

_HEADER_FMT = "BxHxxxxqqI4x"
_HEADER = struct.Struct("<" + _HEADER_FMT)
if _HEADER.size != NODE_HEADER_BYTES:
    raise RuntimeError(
        f"header format {_HEADER_FMT!r} packs {_HEADER.size} bytes, "
        f"expected NODE_HEADER_BYTES={NODE_HEADER_BYTES}"
    )

#: Byte offset of the crc32 checksum field inside the page header.
CHECKSUM_OFFSET = 24
_CRC = struct.Struct("<I")

_INDEX_FMT = "4dq"
_CLASSIC_FMT = "4dq"
_RUM_FMT = "4d3q"

#: (entry format, count) -> precompiled batch unpack kernel.
_BATCH_CACHE: Dict[Tuple[str, int], struct.Struct] = {}

#: (page size, entry format, count) -> precompiled full-page pack kernel
#: covering header, entries and trailing padding in one format.
_PAGE_CACHE: Dict[Tuple[int, str, int], struct.Struct] = {}


def _batch_struct(fmt: str, count: int) -> struct.Struct:
    """The precompiled unpack kernel for ``count`` entries of layout ``fmt``."""
    key = (fmt, count)
    kernel = _BATCH_CACHE.get(key)
    if kernel is None:
        kernel = _BATCH_CACHE[key] = struct.Struct("<" + fmt * count)
    return kernel


def _page_struct(
    node_size: int, fmt: str, entry_bytes: int, count: int
) -> struct.Struct:
    """The full-page pack kernel for ``count`` entries of layout ``fmt``."""
    key = (node_size, fmt, count)
    kernel = _PAGE_CACHE.get(key)
    if kernel is None:
        pad = node_size - NODE_HEADER_BYTES - count * entry_bytes
        kernel = _PAGE_CACHE[key] = struct.Struct(
            f"<{_HEADER_FMT}{fmt * count}{pad}x"
        )
        if kernel.size != node_size:
            raise RuntimeError(
                f"page kernel for {count}x{fmt!r} packs {kernel.size} "
                f"bytes, expected the page size {node_size}"
            )
    return kernel


class PageOverflowError(RuntimeError):
    """Raised when a node holds more entries than its page can store."""


class PageChecksumError(RuntimeError):
    """A page image fails its crc32 — torn write or corruption.

    Raised instead of decoding, so damaged pages can never masquerade as
    valid nodes: a torn leaf would otherwise come back with a plausible
    header and garbage entries.
    """

    def __init__(self, page_id: int, stored: int, computed: int) -> None:
        super().__init__(
            f"page {page_id}: checksum mismatch "
            f"(stored {stored:#010x}, computed {computed:#010x}) — "
            f"torn write or corruption"
        )
        self.page_id = page_id
        self.stored = stored
        self.computed = computed


def stamp_checksum(data: bytes) -> bytes:
    """``data`` with its header checksum field set to the page's crc32.

    Usable on any page image (the field is zeroed before hashing, so
    re-stamping is idempotent).  A computed crc of 0 is remapped so the
    stored field is never 0 — 0 is reserved for "no checksum".
    """
    buf = bytearray(data)
    buf[CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4] = b"\x00\x00\x00\x00"
    crc = crc32(buf) & 0xFFFFFFFF
    if crc == 0:
        crc = 0xFFFFFFFF
    _CRC.pack_into(buf, CHECKSUM_OFFSET, crc)
    return bytes(buf)


def checksum_ok(data: bytes) -> bool:
    """Whether a page image matches its stored checksum.

    Pages stamped with 0 (written before checksumming existed, or by a
    codec with ``checksums=False``) verify trivially — there is nothing
    to check them against.
    """
    (stored,) = _CRC.unpack_from(data, CHECKSUM_OFFSET)
    if stored == 0:
        return True
    buf = bytearray(data)
    buf[CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4] = b"\x00\x00\x00\x00"
    crc = crc32(buf) & 0xFFFFFFFF
    if crc == 0:
        crc = 0xFFFFFFFF
    return crc == stored


def _verify_or_raise(page_id: int, data: bytes) -> None:
    (stored,) = _CRC.unpack_from(data, CHECKSUM_OFFSET)
    if stored == 0:
        return
    buf = bytearray(data)
    buf[CHECKSUM_OFFSET:CHECKSUM_OFFSET + 4] = b"\x00\x00\x00\x00"
    crc = crc32(buf) & 0xFFFFFFFF
    if crc == 0:
        crc = 0xFFFFFFFF
    if crc != stored:
        raise PageChecksumError(page_id, stored, crc)


class NodeCodec:
    """Encode/decode :class:`~repro.rtree.node.Node` objects to page bytes.

    Parameters
    ----------
    node_size:
        Page size in bytes; all nodes of one tree share it.
    rum_leaves:
        When true, leaf entries use the 56-byte RUM layout carrying the oid
        and the stamp (Section 3.1); otherwise the 40-byte classic layout.
    checksums:
        When true, :meth:`encode` stamps a crc32 into the page header and
        :meth:`decode` verifies it (raising :class:`PageChecksumError` on
        a torn or corrupted image).  Off by default: the in-memory
        simulator never sees torn writes and the codec is its hottest
        loop; the file-backed stacks turn it on.
    """

    def __init__(
        self,
        node_size: int,
        rum_leaves: bool = False,
        checksums: bool = False,
    ) -> None:
        if node_size < 128:
            raise ValueError(f"node size {node_size} is unrealistically small")
        self.node_size = node_size
        self.rum_leaves = rum_leaves
        self.checksums = checksums
        self.leaf_entry_bytes = (
            RUM_LEAF_ENTRY_BYTES if rum_leaves else CLASSIC_LEAF_ENTRY_BYTES
        )
        self.leaf_cap = leaf_capacity(node_size, self.leaf_entry_bytes)
        self.index_cap = index_capacity(node_size)

    # -- encoding ----------------------------------------------------------

    def encode(self, node: Node) -> bytes:
        """Serialise ``node`` into exactly ``node_size`` bytes."""
        entries = node.entries
        count = len(entries)
        cap = self.leaf_cap if node.is_leaf else self.index_cap
        if count > cap:
            raise PageOverflowError(
                f"node {node.page_id}: {count} entries exceed capacity {cap}"
            )
        # The checksum field is packed as 0 and stamped afterwards (the
        # crc covers the fully assembled page).
        flat: List[Any] = [
            1 if node.is_leaf else 0, count, node.prev_leaf, node.next_leaf, 0
        ]
        if node.is_leaf:
            if self.rum_leaves:
                # p_o (the tuple pointer) is stored as the oid itself; a
                # real system would store a record id here.
                for e in entries:
                    r = e.rect
                    flat += (
                        r.xmin, r.ymin, r.xmax, r.ymax,
                        e.oid, e.oid, e.stamp,
                    )
                fmt, entry_bytes = _RUM_FMT, RUM_LEAF_ENTRY_BYTES
            else:
                for e in entries:
                    r = e.rect
                    flat += (r.xmin, r.ymin, r.xmax, r.ymax, e.oid)
                fmt, entry_bytes = _CLASSIC_FMT, CLASSIC_LEAF_ENTRY_BYTES
        else:
            for e in entries:
                r = e.rect
                flat += (r.xmin, r.ymin, r.xmax, r.ymax, e.child_id)
            fmt, entry_bytes = _INDEX_FMT, INDEX_ENTRY_BYTES
        page = _page_struct(self.node_size, fmt, entry_bytes, count).pack(
            *flat
        )
        if self.checksums:
            page = stamp_checksum(page)
        return page

    # -- decoding ----------------------------------------------------------

    def decode(self, page_id: int, data: bytes, lazy: bool = False) -> Node:
        """Reconstruct the node stored in ``data`` (a full page).

        With ``lazy=True`` a *leaf* page is parsed header-only and comes
        back as a :class:`~repro.rtree.node.LazyNode` whose entries thaw on
        first access; internal pages always decode eagerly (they live in
        the pinned directory cache and are read constantly).

        With ``lazy=False`` a leaf comes back *column-eager*: still a
        ``LazyNode`` (so untouched entries never become Python objects),
        but with its coordinate column block decoded up front in one bulk
        kernel call.  That block is the representation the query hot
        paths actually consume — ``entries`` remains available and thaws
        to exactly what the old eager decode produced.
        """
        if len(data) != self.node_size:
            raise ValueError(
                f"page {page_id}: expected {self.node_size} bytes, "
                f"got {len(data)}"
            )
        if self.checksums:
            _verify_or_raise(page_id, data)
        is_leaf_flag, count, prev_leaf, next_leaf, _crc = _HEADER.unpack_from(
            data
        )
        is_leaf = bool(is_leaf_flag)
        if is_leaf:
            node: Node = LazyNode(
                page_id, is_leaf, count, prev_leaf, next_leaf, self, data
            )
            if not lazy:
                node.columns = kernels.block_from_buffer(
                    data, NODE_HEADER_BYTES, count, self.leaf_entry_bytes
                )
            return node
        node = Node(
            page_id,
            is_leaf,
            self.decode_entries(is_leaf, count, data),
            prev_leaf=prev_leaf,
            next_leaf=next_leaf,
        )
        node.cached_bytes = data
        return node

    def decode_block(self, count: int, data: bytes) -> Any:
        """Coordinate column block of a leaf page's entry region.

        One bulk kernel call over the raw page bytes — no per-entry
        ``struct`` unpacking and no entry objects.  The id/stamp words of
        each entry are never touched; they are materialised on demand by
        :meth:`decode_entries_at` (or a full thaw) when a query actually
        selects the entry.
        """
        return kernels.block_from_buffer(
            data, NODE_HEADER_BYTES, count, self.leaf_entry_bytes
        )

    def decode_entries_at(
        self, data: bytes, indices: Sequence[int]
    ) -> List[Any]:
        """Materialise only the leaf entries at ``indices`` of a page.

        The selective half of the columnar read path: after a kernel mask
        picks the matching slots, just those entries are decoded with a
        single-entry struct per slot.  Builds objects exactly like
        :meth:`decode_entries` does, so selected entries compare equal to
        a full thaw's.
        """
        out: List[Any] = []
        append = out.append
        new_rect = Rect.__new__
        new_entry = LeafEntry.__new__
        base = NODE_HEADER_BYTES
        if self.rum_leaves:
            one = _batch_struct(_RUM_FMT, 1)
            stride = RUM_LEAF_ENTRY_BYTES
            for i in indices:
                x1, y1, x2, y2, _p_o, oid, stamp = one.unpack_from(
                    data, base + i * stride
                )
                r = new_rect(Rect)
                r.xmin = x1
                r.ymin = y1
                r.xmax = x2
                r.ymax = y2
                e = new_entry(LeafEntry)
                e.rect = r
                e.oid = oid
                e.stamp = stamp
                append(e)
        else:
            one = _batch_struct(_CLASSIC_FMT, 1)
            stride = CLASSIC_LEAF_ENTRY_BYTES
            for i in indices:
                x1, y1, x2, y2, oid = one.unpack_from(
                    data, base + i * stride
                )
                r = new_rect(Rect)
                r.xmin = x1
                r.ymin = y1
                r.xmax = x2
                r.ymax = y2
                e = new_entry(LeafEntry)
                e.rect = r
                e.oid = oid
                e.stamp = 0
                append(e)
        return out

    def verify_page(self, page_id: int, data: bytes) -> None:
        """Raise :class:`PageChecksumError` when ``data`` fails its stored
        checksum (legacy pages with a stored checksum of 0 pass)."""
        _verify_or_raise(page_id, data)

    def decode_entries(
        self, is_leaf: bool, count: int, data: bytes
    ) -> List[Any]:
        """Materialise the entry list of a page in one pass.

        Shared by the eager decode and the lazy thaw, so both paths build
        identical entries.  Entry objects are constructed via ``__new__``
        plus direct slot stores: the values come from a page image the
        codec itself produced, so re-validating every rectangle would only
        re-check invariants enforced at original construction time.
        """
        if not count:
            return []
        out: List[Any] = []
        append = out.append
        if is_leaf:
            new_rect = Rect.__new__
            new_entry = LeafEntry.__new__
            if self.rum_leaves:
                values = _batch_struct(_RUM_FMT, count).unpack_from(
                    data, NODE_HEADER_BYTES
                )
                it = iter(values)
                for x1, y1, x2, y2, _p_o, oid, stamp in zip(
                    it, it, it, it, it, it, it
                ):
                    r = new_rect(Rect)
                    r.xmin = x1
                    r.ymin = y1
                    r.xmax = x2
                    r.ymax = y2
                    e = new_entry(LeafEntry)
                    e.rect = r
                    e.oid = oid
                    e.stamp = stamp
                    append(e)
            else:
                values = _batch_struct(_CLASSIC_FMT, count).unpack_from(
                    data, NODE_HEADER_BYTES
                )
                it = iter(values)
                for x1, y1, x2, y2, oid in zip(it, it, it, it, it):
                    r = new_rect(Rect)
                    r.xmin = x1
                    r.ymin = y1
                    r.xmax = x2
                    r.ymax = y2
                    e = new_entry(LeafEntry)
                    e.rect = r
                    e.oid = oid
                    e.stamp = 0
                    append(e)
        else:
            new_rect = Rect.__new__
            new_entry = IndexEntry.__new__
            values = _batch_struct(_INDEX_FMT, count).unpack_from(
                data, NODE_HEADER_BYTES
            )
            it = iter(values)
            for x1, y1, x2, y2, child_id in zip(it, it, it, it, it):
                r = new_rect(Rect)
                r.xmin = x1
                r.ymin = y1
                r.xmax = x2
                r.ymax = y2
                e = new_entry(IndexEntry)
                e.rect = r
                e.child_id = child_id
                append(e)
        return out
