"""Binary page layout for R-tree nodes.

Pages are fixed-size byte blocks (Table 1 of the paper sweeps node sizes of
1024, 2048, 4096 and 8192 bytes).  The codec makes node fanout physically
meaningful: capacity is derived from the byte layout, so the RUM-tree's
larger leaf entries (56 bytes vs. 40) automatically produce the smaller leaf
fanout that explains its ~10% search-cost overhead in Section 5.

Layout
------

Header (32 bytes)::

    offset  size  field
    0       1     is_leaf flag
    1       1     padding
    2       2     number of entries (uint16)
    4       4     padding
    8       8     prev_leaf page id (int64; leaf ring, Section 3.3.1)
    16      8     next_leaf page id (int64)
    24      8     reserved

Entries, densely packed after the header::

    directory entry (40 B): xmin ymin xmax ymax  (float64 x4) | child (int64)
    classic leaf    (40 B): xmin ymin xmax ymax | oid/p_o (int64)
    RUM leaf        (56 B): xmin ymin xmax ymax | p_o | oid | stamp (int64 x3)

Encoding and decoding use a single ``struct`` call per node, which keeps the
simulator fast enough to replay hundreds of thousands of updates.
"""

from __future__ import annotations

import struct
from typing import List

from repro.rtree.geometry import Rect
from repro.rtree.node import (
    CLASSIC_LEAF_ENTRY_BYTES,
    INDEX_ENTRY_BYTES,
    NODE_HEADER_BYTES,
    RUM_LEAF_ENTRY_BYTES,
    IndexEntry,
    LeafEntry,
    Node,
    index_capacity,
    leaf_capacity,
)

_HEADER = struct.Struct("<BxHxxxxqq8x")
assert _HEADER.size == NODE_HEADER_BYTES

_INDEX_FMT = "4dq"
_CLASSIC_FMT = "4dq"
_RUM_FMT = "4d3q"


class PageOverflowError(RuntimeError):
    """Raised when a node holds more entries than its page can store."""


class NodeCodec:
    """Encode/decode :class:`~repro.rtree.node.Node` objects to page bytes.

    Parameters
    ----------
    node_size:
        Page size in bytes; all nodes of one tree share it.
    rum_leaves:
        When true, leaf entries use the 56-byte RUM layout carrying the oid
        and the stamp (Section 3.1); otherwise the 40-byte classic layout.
    """

    def __init__(self, node_size: int, rum_leaves: bool = False):
        if node_size < 128:
            raise ValueError(f"node size {node_size} is unrealistically small")
        self.node_size = node_size
        self.rum_leaves = rum_leaves
        self.leaf_entry_bytes = (
            RUM_LEAF_ENTRY_BYTES if rum_leaves else CLASSIC_LEAF_ENTRY_BYTES
        )
        self.leaf_cap = leaf_capacity(node_size, self.leaf_entry_bytes)
        self.index_cap = index_capacity(node_size)
        self._leaf_fmt = _RUM_FMT if rum_leaves else _CLASSIC_FMT

    # -- encoding ----------------------------------------------------------

    def encode(self, node: Node) -> bytes:
        """Serialise ``node`` into exactly ``node_size`` bytes."""
        count = len(node.entries)
        cap = self.leaf_cap if node.is_leaf else self.index_cap
        if count > cap:
            raise PageOverflowError(
                f"node {node.page_id}: {count} entries exceed capacity {cap}"
            )
        header = _HEADER.pack(
            1 if node.is_leaf else 0,
            count,
            node.prev_leaf,
            node.next_leaf,
        )
        if node.is_leaf:
            if self.rum_leaves:
                flat: List = []
                for e in node.entries:
                    r = e.rect
                    # p_o (the tuple pointer) is stored as the oid itself; a
                    # real system would store a record id here.
                    flat.extend(
                        (r.xmin, r.ymin, r.xmax, r.ymax, e.oid, e.oid, e.stamp)
                    )
                body = struct.pack(f"<{_RUM_FMT * count}", *flat)
            else:
                flat = []
                for e in node.entries:
                    r = e.rect
                    flat.extend((r.xmin, r.ymin, r.xmax, r.ymax, e.oid))
                body = struct.pack(f"<{_CLASSIC_FMT * count}", *flat)
        else:
            flat = []
            for e in node.entries:
                r = e.rect
                flat.extend((r.xmin, r.ymin, r.xmax, r.ymax, e.child_id))
            body = struct.pack(f"<{_INDEX_FMT * count}", *flat)
        page = header + body
        return page + b"\x00" * (self.node_size - len(page))

    # -- decoding ----------------------------------------------------------

    def decode(self, page_id: int, data: bytes) -> Node:
        """Reconstruct the node stored in ``data`` (a full page)."""
        if len(data) != self.node_size:
            raise ValueError(
                f"page {page_id}: expected {self.node_size} bytes, "
                f"got {len(data)}"
            )
        is_leaf_flag, count, prev_leaf, next_leaf = _HEADER.unpack_from(data)
        is_leaf = bool(is_leaf_flag)
        entries: List = []
        offset = NODE_HEADER_BYTES
        if is_leaf:
            if self.rum_leaves:
                values = struct.unpack_from(f"<{_RUM_FMT * count}", data, offset)
                for i in range(count):
                    base = i * 7
                    rect = Rect(
                        values[base],
                        values[base + 1],
                        values[base + 2],
                        values[base + 3],
                    )
                    # values[base + 4] is p_o, redundant with the oid here.
                    entries.append(
                        LeafEntry(rect, values[base + 5], values[base + 6])
                    )
            else:
                values = struct.unpack_from(
                    f"<{_CLASSIC_FMT * count}", data, offset
                )
                for i in range(count):
                    base = i * 5
                    rect = Rect(
                        values[base],
                        values[base + 1],
                        values[base + 2],
                        values[base + 3],
                    )
                    entries.append(LeafEntry(rect, values[base + 4]))
        else:
            values = struct.unpack_from(f"<{_INDEX_FMT * count}", data, offset)
            for i in range(count):
                base = i * 5
                rect = Rect(
                    values[base],
                    values[base + 1],
                    values[base + 2],
                    values[base + 3],
                )
                entries.append(IndexEntry(rect, values[base + 4]))
        return Node(
            page_id,
            is_leaf,
            entries,
            prev_leaf=prev_leaf,
            next_leaf=next_leaf,
        )
