"""Write-ahead log for the RUM-tree's recovery options.

Section 3.4 of the paper describes three recovery options for the in-memory
Update Memo:

* **Option I** — no log at all;
* **Option II** — the UM (plus the stamp counter) is written to the log at
  periodic checkpoints;
* **Option III** — Option II plus a log record for *every* memo change,
  force-flushed so it is durable before the update completes.

The log is an append-only sequence of records.  Physical cost is accounted
in *pages*: records accumulate in the current log page and a ``log_write``
is charged whenever a page fills up, or immediately when a record is
force-flushed (Option III pays exactly the "+1" I/O per update of the cost
model in Section 4.2.3).  Reading the log back during recovery charges
``log_reads`` proportional to the pages scanned.

Durability model: a record is durable once every one of its bytes has
reached a flushed page — either because appends filled the page, or
because a ``force=True`` append flushed the open page.  The log tracks
that durable prefix, and :meth:`crash_truncate` discards everything
behind it, which is exactly what a crash does to a real log device: the
fault-injection harness arms a crash between "record appended in memory"
and "force completed" and the record must be gone after reopen.

**Group commit** (:meth:`group_commit`): inside the scope, ``force=True``
appends defer their forced flush; the scope exit performs *one* force
covering every deferred record.  A batch of N memo changes then costs one
forced ``log_write`` instead of N (plus the page-fill writes either way).
The durability contract weakens exactly as a real group-committed log
does: a record inside an open group is durable only once its bytes are
behind a flushed page boundary — a crash before the closing force loses
the in-memory tail, and :meth:`crash_truncate` reflects that.  The scope
never forces after an exception, so a :class:`SimulatedCrash` raised
mid-batch cannot retroactively make the batch durable.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple

from .iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.metrics import Counter
    from .faults import FaultInjector

#: Simulated on-disk size of one Update-Memo entry (the paper's ``E``):
#: oid (8) + S_latest (8) + N_old (4), padded.
UM_ENTRY_BYTES = 24

#: Simulated size of one memo-change log record (Option III).
MEMO_CHANGE_BYTES = 24

#: Simulated size of a stamp-lease record (batched ingestion): one stamp
#: value plus framing.
STAMP_LEASE_BYTES = 16

#: Simulated size of a checkpoint header (stamp counter + metadata).
CHECKPOINT_HEADER_BYTES = 32


@dataclass(frozen=True)
class LogRecord:
    """One durable log record.

    ``kind`` is ``"checkpoint"`` or ``"memo"``; ``payload`` carries the
    recovery data (a UM snapshot for checkpoints, an ``(oid, stamp)`` pair
    for memo changes); ``nbytes`` is the simulated on-disk size used for
    page accounting.
    """

    lsn: int
    kind: str
    payload: Any
    nbytes: int


class WriteAheadLog:
    """Append-only log with page-granular I/O accounting."""

    def __init__(
        self,
        page_size: int,
        stats: IOStats,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.stats = stats
        self.faults = faults
        self._records: List[LogRecord] = []
        self._current_fill = 0
        self._next_lsn = 0
        #: Records known to be on stable storage (prefix length); the
        #: suffix beyond it dies with the process — see crash_truncate().
        self._durable_count = 0
        #: Open group-commit scopes (nested scopes flatten into one).
        self._group_depth = 0
        #: True when some record inside the open group asked for a force
        #: that was deferred to the scope exit.
        self._group_pending = False
        self._obs: Optional["Observability"] = None
        self._obs_appends: Optional[Counter] = None
        self._obs_forced: Optional[Counter] = None
        self._obs_page_writes: Optional[Counter] = None
        self._obs_group_commits: Optional[Counter] = None
        self._obs_deferred_forces: Optional[Counter] = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry: append/force counts, page writes, log size."""
        if obs is None or not obs.metrics_on:
            self._obs = None
            self._obs_appends = self._obs_forced = None
            self._obs_page_writes = None
            self._obs_group_commits = self._obs_deferred_forces = None
            return
        self._obs = obs
        reg = obs.registry
        self._obs_appends = reg.counter("wal.appends")
        self._obs_forced = reg.counter("wal.forced_flushes")
        self._obs_page_writes = reg.counter("wal.page_writes")
        self._obs_group_commits = reg.counter("wal.group_commits")
        self._obs_deferred_forces = reg.counter("wal.deferred_forces")
        reg.gauge("wal.records").set_function(self.__len__)
        reg.gauge("wal.bytes").set_function(self.total_bytes)

    # -- writing -------------------------------------------------------------

    def append(self, kind: str, payload: Any, nbytes: int,
               force: bool = False) -> LogRecord:
        """Append one record, charging page writes as pages fill.

        With ``force=True`` the partially filled current page is written
        immediately (one ``log_write``), modelling a forced flush.
        """
        if nbytes <= 0:
            raise ValueError("record size must be positive")
        faults = self.faults
        if faults is not None:
            # Crash window: the record never enters the log at all.
            faults.fire(
                "wal.checkpoint" if kind == "checkpoint" else "wal.append"
            )
        record = LogRecord(self._next_lsn, kind, payload, nbytes)
        self._next_lsn += 1
        self._records.append(record)
        if self._obs_appends is not None:
            self._obs_appends.inc()

        remaining = nbytes
        pages_written = False
        while self._current_fill + remaining >= self.page_size:
            # The current page fills up (possibly several times for a large
            # record such as a UM checkpoint) -> one write per full page.
            remaining -= self.page_size - self._current_fill
            self._current_fill = 0
            pages_written = True
            self.stats.log_writes += 1
            if self._obs_page_writes is not None:
                self._obs_page_writes.inc()
        self._current_fill += remaining
        if pages_written:
            # Everything behind the flushed page boundary is durable; the
            # record itself only if it ended exactly on the boundary.
            self._durable_count = (
                len(self._records)
                if self._current_fill == 0
                else len(self._records) - 1
            )

        if force:
            if self._group_depth > 0:
                # Group commit: the force is owed by the enclosing scope,
                # which pays it once for the whole batch.
                self._group_pending = True
                if self._obs_deferred_forces is not None:
                    self._obs_deferred_forces.inc()
            else:
                self.force()
        return record

    def force(self) -> None:
        """Flush the open log page, making every appended record durable.

        One ``log_write`` when the current page is partially filled (it
        stays open for further appends; forcing again later costs another
        write, as in a real log device).  A force whose last record
        exactly filled the page was already flushed by the page-boundary
        write — no extra I/O, but it still counts as a forced flush (the
        caller demanded durability).
        """
        if self.faults is not None:
            # Crash window: records appended in memory, force not yet
            # durable (unless a page boundary already flushed them).
            self.faults.fire("wal.force")
        if self._current_fill > 0:
            self.stats.log_writes += 1
            if self._obs_page_writes is not None:
                self._obs_page_writes.inc()
        if self._obs_forced is not None:
            self._obs_forced.inc()
        self._durable_count = len(self._records)
        self._group_pending = False

    @contextmanager
    def group_commit(self) -> Iterator[None]:
        """Defer forced flushes inside the scope to one force at exit.

        Nested scopes flatten: only the outermost exit forces.  The exit
        force happens only when (a) some record inside the scope asked
        for ``force=True`` and (b) the scope body completed without an
        exception — a crash mid-batch must leave the undurable tail
        undurable, which is exactly the group-commit contract the crash
        tests pin down.
        """
        self._group_depth += 1
        completed = False
        try:
            yield
            completed = True
        finally:
            self._group_depth -= 1
            if (
                completed
                and self._group_depth == 0
                and self._group_pending
            ):
                self.force()
                if self._obs_group_commits is not None:
                    self._obs_group_commits.inc()

    @property
    def in_group_commit(self) -> bool:
        return self._group_depth > 0

    def append_memo_change(self, oid: int, stamp: int,
                           force: bool = True) -> LogRecord:
        """Option III: log a single memo change (force-flushed by default)."""
        return self.append(
            "memo", (oid, stamp), MEMO_CHANGE_BYTES, force=force
        )

    def append_stamp_lease(self, stamp_hi: int) -> LogRecord:
        """Reserve the stamp range below ``stamp_hi`` ahead of a batch.

        A group-committed batch inserts tree entries *before* its memo
        records are forced; the tree is durable on its own, so a crash
        can leave entries stamped beyond every durable memo record.
        Logging the batch's stamp ceiling first — flushed immediately,
        bypassing any open group-commit scope — lets Option III recovery
        restore a stamp counter that dominates those orphaned entries
        without scanning the tree.  Costs the batch one extra forced log
        write (so two per batch, versus one per *update* unbatched).
        """
        record = self.append("lease", stamp_hi, STAMP_LEASE_BYTES)
        self.force()
        return record

    def append_checkpoint(self, memo_snapshot: List[Tuple[int, int, int]],
                          stamp_counter: int) -> LogRecord:
        """Option II/III: log a full UM snapshot plus the stamp counter."""
        nbytes = CHECKPOINT_HEADER_BYTES + UM_ENTRY_BYTES * len(memo_snapshot)
        payload = (stamp_counter, list(memo_snapshot))
        record = self.append("checkpoint", payload, nbytes, force=True)
        if self._obs is not None:
            self._obs.event(
                "wal.checkpoint",
                lsn=record.lsn,
                entries=len(memo_snapshot),
                stamp=stamp_counter,
                nbytes=nbytes,
            )
        return record

    # -- reading (recovery) -----------------------------------------------------

    def last_checkpoint(self) -> Optional[LogRecord]:
        """The most recent checkpoint record, if any (no I/O charged: the
        log tail location is assumed to be known from the log header)."""
        for record in reversed(self._records):
            if record.kind == "checkpoint":
                return record
        return None

    def checkpoint_count(self) -> int:
        """Number of checkpoint records currently in the log (no I/O
        charged — bookkeeping for the crash-simulation harness, which
        cross-checks it against the checkpoints the workload committed)."""
        return sum(1 for r in self._records if r.kind == "checkpoint")

    def read_from(self, lsn: int) -> List[LogRecord]:
        """Return all records with ``record.lsn >= lsn``; charges
        ``log_reads`` for the pages occupied by the returned records."""
        selected = [r for r in self._records if r.lsn >= lsn]
        total = sum(r.nbytes for r in selected)
        self.stats.log_reads += -(-total // self.page_size) if total else 0
        return selected

    def read_record(self, record: LogRecord) -> LogRecord:
        """Charge ``log_reads`` for exactly one record's pages.

        Option II recovery reads only the checkpoint record — billing it
        via :meth:`read_from` would also charge the whole post-checkpoint
        log tail it never looks at.
        """
        self.stats.log_reads += -(-record.nbytes // self.page_size)
        return record

    # -- crash model ---------------------------------------------------------

    def crash_truncate(self) -> int:
        """Discard every record that never became durable.

        Models what a crash leaves on the log device: records whose bytes
        were all inside flushed pages (or covered by a completed force)
        survive; the in-memory suffix dies with the process.  Returns the
        number of records lost.
        """
        lost = len(self._records) - self._durable_count
        if lost:
            del self._records[self._durable_count:]
        total = sum(r.nbytes for r in self._records)
        self._current_fill = total % self.page_size
        # The process died: any open group-commit scope died with it.
        self._group_depth = 0
        self._group_pending = False
        return lost

    # -- introspection -------------------------------------------------------------

    def durable_records(self) -> int:
        """Length of the durable record prefix (see crash_truncate)."""
        return self._durable_count

    def __len__(self) -> int:
        return len(self._records)

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self._records)
