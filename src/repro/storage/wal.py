"""Write-ahead log for the RUM-tree's recovery options.

Section 3.4 of the paper describes three recovery options for the in-memory
Update Memo:

* **Option I** — no log at all;
* **Option II** — the UM (plus the stamp counter) is written to the log at
  periodic checkpoints;
* **Option III** — Option II plus a log record for *every* memo change,
  force-flushed so it is durable before the update completes.

The log is an append-only sequence of records.  Physical cost is accounted
in *pages*: records accumulate in the current log page and a ``log_write``
is charged whenever a page fills up, or immediately when a record is
force-flushed (Option III pays exactly the "+1" I/O per update of the cost
model in Section 4.2.3).  Reading the log back during recovery charges
``log_reads`` proportional to the pages scanned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from .iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Simulated on-disk size of one Update-Memo entry (the paper's ``E``):
#: oid (8) + S_latest (8) + N_old (4), padded.
UM_ENTRY_BYTES = 24

#: Simulated size of one memo-change log record (Option III).
MEMO_CHANGE_BYTES = 24

#: Simulated size of a checkpoint header (stamp counter + metadata).
CHECKPOINT_HEADER_BYTES = 32


@dataclass(frozen=True)
class LogRecord:
    """One durable log record.

    ``kind`` is ``"checkpoint"`` or ``"memo"``; ``payload`` carries the
    recovery data (a UM snapshot for checkpoints, an ``(oid, stamp)`` pair
    for memo changes); ``nbytes`` is the simulated on-disk size used for
    page accounting.
    """

    lsn: int
    kind: str
    payload: Any
    nbytes: int


class WriteAheadLog:
    """Append-only log with page-granular I/O accounting."""

    def __init__(self, page_size: int, stats: IOStats):
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.stats = stats
        self._records: List[LogRecord] = []
        self._current_fill = 0
        self._next_lsn = 0
        self._obs = None
        self._obs_appends = None
        self._obs_forced = None
        self._obs_page_writes = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry: append/force counts, page writes, log size."""
        if obs is None or not obs.metrics_on:
            self._obs = None
            self._obs_appends = self._obs_forced = None
            self._obs_page_writes = None
            return
        self._obs = obs
        reg = obs.registry
        self._obs_appends = reg.counter("wal.appends")
        self._obs_forced = reg.counter("wal.forced_flushes")
        self._obs_page_writes = reg.counter("wal.page_writes")
        reg.gauge("wal.records").set_function(self.__len__)
        reg.gauge("wal.bytes").set_function(self.total_bytes)

    # -- writing -------------------------------------------------------------

    def append(self, kind: str, payload: Any, nbytes: int,
               force: bool = False) -> LogRecord:
        """Append one record, charging page writes as pages fill.

        With ``force=True`` the partially filled current page is written
        immediately (one ``log_write``), modelling a forced flush.
        """
        if nbytes <= 0:
            raise ValueError("record size must be positive")
        record = LogRecord(self._next_lsn, kind, payload, nbytes)
        self._next_lsn += 1
        self._records.append(record)
        if self._obs_appends is not None:
            self._obs_appends.inc()

        remaining = nbytes
        while self._current_fill + remaining >= self.page_size:
            # The current page fills up (possibly several times for a large
            # record such as a UM checkpoint) -> one write per full page.
            remaining -= self.page_size - self._current_fill
            self._current_fill = 0
            self.stats.log_writes += 1
            if self._obs_page_writes is not None:
                self._obs_page_writes.inc()
        self._current_fill += remaining

        if force and self._current_fill > 0:
            self.stats.log_writes += 1
            # The page stays open for further appends; forcing it again
            # later costs another write, as in a real log device.
            if self._obs_forced is not None:
                self._obs_forced.inc()
                self._obs_page_writes.inc()
        return record

    def append_memo_change(self, oid: int, stamp: int,
                           force: bool = True) -> LogRecord:
        """Option III: log a single memo change (force-flushed by default)."""
        return self.append(
            "memo", (oid, stamp), MEMO_CHANGE_BYTES, force=force
        )

    def append_checkpoint(self, memo_snapshot: List[Tuple[int, int, int]],
                          stamp_counter: int) -> LogRecord:
        """Option II/III: log a full UM snapshot plus the stamp counter."""
        nbytes = CHECKPOINT_HEADER_BYTES + UM_ENTRY_BYTES * len(memo_snapshot)
        payload = (stamp_counter, list(memo_snapshot))
        record = self.append("checkpoint", payload, nbytes, force=True)
        if self._obs is not None:
            self._obs.event(
                "wal.checkpoint",
                lsn=record.lsn,
                entries=len(memo_snapshot),
                stamp=stamp_counter,
                nbytes=nbytes,
            )
        return record

    # -- reading (recovery) -----------------------------------------------------

    def last_checkpoint(self) -> Optional[LogRecord]:
        """The most recent checkpoint record, if any (no I/O charged: the
        log tail location is assumed to be known from the log header)."""
        for record in reversed(self._records):
            if record.kind == "checkpoint":
                return record
        return None

    def read_from(self, lsn: int) -> List[LogRecord]:
        """Return all records with ``record.lsn >= lsn``; charges
        ``log_reads`` for the pages occupied by the returned records."""
        selected = [r for r in self._records if r.lsn >= lsn]
        total = sum(r.nbytes for r in selected)
        self.stats.log_reads += -(-total // self.page_size) if total else 0
        return selected

    # -- introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self._records)
