"""Fault injection for the durable storage stack.

Crash-consistency claims are only testable if crashes can actually
happen, so this module provides a deterministic process-death model: a
:class:`FaultInjector` is armed at one of the registered *fault points*
(a named place in the storage code where a real process could die), and
when the running workload reaches that point the injector raises
:class:`SimulatedCrash`.  Everything the storage stack had made durable
before the crash point survives; everything after it is lost — exactly
like ``kill -9`` between two syscalls.

Three fault modes exist:

* ``crash`` — die *before* the instrumented action happens (the write /
  sync / force is lost entirely);
* ``torn`` — for page writes: persist only a prefix of the new page
  image (the rest keeps the old bytes), then die — the classic torn
  sector-sequence write of a power failure mid-page;
* ``corrupt`` — flip bytes in the written image and *continue silently*,
  modelling bit rot / a misdirected write that no crash announces.

The page-level modes are applied by :class:`FaultyDisk`, a wrapper that
interposes on any ``DiskManager``-shaped object; the intra-operation
points (metadata sync steps, WAL forces) are fired directly by
:class:`~repro.storage.filedisk.FileDiskManager` and
:class:`~repro.storage.wal.WriteAheadLog`, which both accept an optional
injector.  Components without an injector pay nothing: the hook is a
single ``is None`` check, the same discipline as the ``attach_obs``
instrumentation.

The registered fault points:

======================  ====================================================
``disk.page_write``     before a page write (the write never happens)
``disk.page_torn``      mid page write (prefix persisted, then crash)
``disk.sync.data``      after the data-file fsync, before any metadata write
``disk.meta.tmp``       after the metadata temp file is written, before the
                        atomic rename — ``disk.json`` must stay intact
``wal.append``          before a log record enters the log
``wal.force``           after a record is appended in memory, before the
                        forced flush makes it durable
``wal.checkpoint``      at the start of a checkpoint append (the checkpoint
                        record never becomes durable)
``memo.run_flush``      mid memo-run flush: the run file is (partially)
                        written but not yet named by the manifest — torn /
                        corrupt modes damage the run image itself
``memo.compact``        after a compaction wrote its output run, before the
                        manifest swaps it in (inputs must stay live)
``memo.manifest``       after the manifest temp file is written, before the
                        atomic rename — the previous manifest must survive
======================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional

from .disk import PageStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.metrics import Counter

#: Every fault point the storage stack fires, in rough workload order.
#: The crash-matrix harness iterates this tuple; adding an instrumented
#: site to the stack means adding its name here so the matrix covers it.
FAULT_POINTS = (
    "disk.page_write",
    "disk.page_torn",
    "disk.sync.data",
    "disk.meta.tmp",
    "wal.append",
    "wal.force",
    "wal.checkpoint",
    "memo.run_flush",
    "memo.compact",
    "memo.manifest",
)

#: Fault modes: ``crash`` loses the action, ``torn`` persists a prefix of
#: a page write, ``corrupt`` silently damages the written bytes.
MODES = ("crash", "torn", "corrupt")


class SimulatedCrash(BaseException):
    """The process model dies at a fault point.

    Deliberately a ``BaseException``: crash-safety code must not be able
    to swallow it with a broad ``except Exception`` — only the harness
    (or a test) that armed the injector catches it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class FaultInjector:
    """Arms one fault point and fires when the workload reaches it.

    ``skip`` delays the trigger past the first ``skip`` occurrences of
    the point, so a scenario can crash the 7th page write rather than
    the 1st.  After firing once the injector disarms itself — a crashed
    process does not crash twice — which also lets the harness reuse the
    same injector for the post-crash verification phase.
    """

    def __init__(self) -> None:
        self.point: Optional[str] = None
        self.mode = "crash"
        self.skip = 0
        self.torn_bytes = 0
        self.corrupt_bytes = 8
        self.fired: Optional[str] = None
        #: occurrences seen per point since the last ``arm`` (all points
        #: are counted, armed or not — useful for scenario discovery).
        self.hits: Dict[str, int] = {}
        self._obs_fired: Optional[Counter] = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry (``faults.fired`` counter)."""
        if obs is None or not obs.metrics_on:
            self._obs_fired = None
            return
        self._obs_fired = obs.registry.counter("faults.fired")

    def arm(
        self,
        point: str,
        mode: str = "crash",
        skip: int = 0,
        torn_bytes: int = 0,
        corrupt_bytes: int = 8,
    ) -> "FaultInjector":
        """Schedule a fault at the ``skip``-th next occurrence of ``point``."""
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; expected one of {FAULT_POINTS}"
            )
        if mode not in MODES:
            raise ValueError(f"unknown fault mode {mode!r}")
        if skip < 0:
            raise ValueError("skip must be non-negative")
        self.point = point
        self.mode = mode
        self.skip = skip
        self.torn_bytes = torn_bytes
        self.corrupt_bytes = corrupt_bytes
        self.fired = None
        self.hits = {}
        return self

    def disarm(self) -> None:
        self.point = None

    @property
    def armed(self) -> bool:
        return self.point is not None

    def fire(self, point: str) -> None:
        """Called by instrumented code when it reaches ``point``.

        Raises :class:`SimulatedCrash` when the armed countdown expires;
        otherwise returns and the action proceeds normally.  Page-level
        ``torn``/``corrupt`` modes are *not* handled here — they need the
        page image and are applied by :meth:`FaultyDisk.write_page`; for
        those points ``fire`` only answers the countdown via
        :meth:`should_trigger`.
        """
        if not self._count(point):
            return
        self._mark_fired(point)
        raise SimulatedCrash(point)

    def should_trigger(self, point: str) -> bool:
        """Countdown check for sites that apply the fault themselves."""
        return self._count(point)

    def _count(self, point: str) -> bool:
        self.hits[point] = self.hits.get(point, 0) + 1
        if self.point != point or self.fired is not None:
            return False
        if self.skip > 0:
            self.skip -= 1
            return False
        return True

    def _mark_fired(self, point: str) -> None:
        self.fired = point
        self.point = None  # disarm: a process dies once
        if self._obs_fired is not None:
            self._obs_fired.inc()


def torn_page(old: bytes, new: bytes, torn_bytes: int) -> bytes:
    """The image a power failure leaves mid-write: a prefix of ``new``
    followed by the remainder of ``old`` (default: half the page)."""
    if len(old) != len(new):
        raise ValueError("torn_page needs images of equal size")
    k = torn_bytes if torn_bytes > 0 else len(new) // 2
    k = max(1, min(k, len(new) - 1))
    return new[:k] + old[k:]


def corrupt_page(data: bytes, n_bytes: int, offset: Optional[int] = None) -> bytes:
    """``data`` with ``n_bytes`` bytes bit-flipped (deterministic offset:
    the middle of the page unless given), modelling silent bit rot."""
    if not data:
        return data
    n = max(1, min(n_bytes, len(data)))
    start = (len(data) - n) // 2 if offset is None else offset
    start = max(0, min(start, len(data) - n))
    damaged = bytearray(data)
    for i in range(start, start + n):
        damaged[i] ^= 0xFF
    return bytes(damaged)


class FaultyDisk:
    """Fault-injecting wrapper around any ``DiskManager``-shaped store.

    Interposes only on :meth:`write_page` (where page-level faults live)
    and :meth:`sync`/:meth:`close` (delegated, so an inner
    :class:`~repro.storage.filedisk.FileDiskManager` still fires its own
    metadata fault points); everything else passes straight through, so
    a buffer pool runs over the wrapper unchanged.
    """

    def __init__(self, inner: PageStore, faults: FaultInjector) -> None:
        self.inner = inner
        self.faults = faults

    # -- interposed writes --------------------------------------------------

    def write_page(self, page_id: int, data: bytes) -> None:
        faults = self.faults
        point = faults.point
        if (
            point is not None
            and point in ("disk.page_write", "disk.page_torn")
            and faults.should_trigger(point)
        ):
            if faults.mode == "corrupt":
                # Silent misdirected write: damaged bytes, no crash.
                faults._mark_fired(point)
                self.inner.write_page(
                    page_id, corrupt_page(bytes(data), faults.corrupt_bytes)
                )
                return
            if point == "disk.page_torn":
                old = bytes(self.inner.peek(page_id))
                self.inner.write_page(
                    page_id, torn_page(old, bytes(data), faults.torn_bytes)
                )
            # "disk.page_write" in crash mode: the write is lost entirely.
            faults._mark_fired(point)
            raise SimulatedCrash(point)
        self.inner.write_page(page_id, data)

    # -- plain delegation ---------------------------------------------------

    @property
    def page_size(self) -> int:
        return self.inner.page_size

    @property
    def reads(self) -> int:
        return self.inner.reads

    @property
    def writes(self) -> int:
        return self.inner.writes

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        self.faults.attach_obs(obs)
        attach = getattr(self.inner, "attach_obs", None)
        if attach is not None:
            attach(obs)

    def allocate(self) -> int:
        return self.inner.allocate()

    def free(self, page_id: int) -> None:
        self.inner.free(page_id)

    def read_page(self, page_id: int) -> bytes:
        return self.inner.read_page(page_id)

    def peek(self, page_id: int) -> bytes:
        return self.inner.peek(page_id)

    def is_allocated(self, page_id: int) -> bool:
        return self.inner.is_allocated(page_id)

    def page_ids(self) -> Iterator[int]:
        return self.inner.page_ids()

    def num_pages(self) -> int:
        return self.inner.num_pages()

    def total_bytes(self) -> int:
        return self.inner.total_bytes()

    def sync(self) -> None:
        sync = getattr(self.inner, "sync", None)
        if sync is not None:
            sync()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()
