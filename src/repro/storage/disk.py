"""Simulated paged disk.

The disk stores fixed-size pages of raw bytes addressed by integer page ids.
It deliberately knows nothing about R-trees: access-type accounting (leaf
vs. internal) happens in the buffer pool, which knows what it is reading.

Besides the page store itself the disk keeps a free list so page ids are
recycled, an allocation high-water mark, and an iteration API that the
recovery code (Section 3.4, Option I/II) uses to scan "every leaf entry in
the tree" after a simulated crash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.metrics import Counter


class PageStore(Protocol):
    """The structural interface every page store exposes.

    :class:`DiskManager`, :class:`~repro.storage.filedisk.FileDiskManager`
    and :class:`~repro.storage.faults.FaultyDisk` all satisfy it, so the
    buffer pool and the fault-injection wrapper can accept any of them
    interchangeably.
    """

    @property
    def page_size(self) -> int: ...

    @property
    def reads(self) -> int: ...

    @property
    def writes(self) -> int: ...

    def allocate(self) -> int: ...

    def free(self, page_id: int) -> None: ...

    def read_page(self, page_id: int) -> bytes: ...

    def peek(self, page_id: int) -> bytes: ...

    def write_page(self, page_id: int, data: bytes) -> None: ...

    def is_allocated(self, page_id: int) -> bool: ...

    def page_ids(self) -> Iterator[int]: ...

    def num_pages(self) -> int: ...

    def total_bytes(self) -> int: ...

#: Shared all-zero page images, one per page size.  Allocation is on the
#: update hot path (every split allocates), so freshly allocated pages
#: reuse one immutable zero page instead of building a new one each time.
_ZERO_PAGES: Dict[int, bytes] = {}


def zero_page(page_size: int) -> bytes:
    """An immutable all-zero page of ``page_size`` bytes (cached)."""
    page = _ZERO_PAGES.get(page_size)
    if page is None:
        page = _ZERO_PAGES[page_size] = b"\x00" * page_size
    return page


class PageNotAllocatedError(KeyError):
    """Raised when reading or writing a page id that was never allocated."""


class DiskManager:
    """A dictionary-backed page store with fixed page size.

    Pages survive a *simulated crash* (see :meth:`crash`): crashing clears
    nothing on the disk — it is the caller's in-memory state (buffer pool,
    update memo, stamp counter) that is discarded, exactly the failure model
    of Section 3.4.
    """

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._pages: Dict[int, bytes] = {}
        self._free: List[int] = []
        self._next_id = 0
        self.reads = 0
        self.writes = 0
        # Telemetry counters bound by attach_obs(); None = disabled, so
        # the hot-path cost without observability is a single None check.
        self._obs_allocs: Optional[Counter] = None
        self._obs_frees: Optional[Counter] = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind (or with ``None``/level ``off``, unbind) telemetry.

        Page reads and writes are already tallied unconditionally as the
        plain ints ``self.reads``/``self.writes`` — ``disk.page_reads``
        and ``disk.page_writes`` are lazy gauges over those (values
        count from manager construction, not from attach), so the
        per-page hot path carries zero instrumentation cost at any
        level.  Allocations/frees are rare and keep real counters; the
        resident page count and byte footprint are callback gauges
        sampled only at snapshot time.
        """
        if obs is None or not obs.metrics_on:
            self._obs_allocs = self._obs_frees = None
            return
        reg = obs.registry
        self._obs_allocs = reg.counter("disk.allocations")
        self._obs_frees = reg.counter("disk.frees")
        reg.gauge("disk.page_reads").set_function(lambda: float(self.reads))
        reg.gauge("disk.page_writes").set_function(
            lambda: float(self.writes)
        )
        reg.gauge("disk.pages").set_function(self.num_pages)
        reg.gauge("disk.bytes").set_function(self.total_bytes)

    # -- allocation ----------------------------------------------------------

    def allocate(self) -> int:
        """Reserve a fresh page id (recycling freed ids first)."""
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._pages[page_id] = zero_page(self.page_size)
        if self._obs_allocs is not None:
            self._obs_allocs.inc()
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page; its id becomes available for reuse."""
        if page_id not in self._pages:
            raise PageNotAllocatedError(page_id)
        del self._pages[page_id]
        self._free.append(page_id)
        if self._obs_frees is not None:
            self._obs_frees.inc()

    # -- I/O -----------------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        """Fetch the current contents of a page."""
        try:
            data = self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None
        self.reads += 1
        return data

    def peek(self, page_id: int) -> bytes:
        """Uncounted read for introspection (metrics, invariant checks)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotAllocatedError(page_id) from None

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite a page; ``data`` must be exactly one page long."""
        if page_id not in self._pages:
            raise PageNotAllocatedError(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page {page_id}: write of {len(data)} bytes to a "
                f"{self.page_size}-byte page"
            )
        # bytes(bytes_obj) is a no-op reference; only mutable buffers
        # (bytearray/memoryview) are actually copied here.
        self._pages[page_id] = bytes(data)
        self.writes += 1

    # -- introspection ---------------------------------------------------------

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._pages

    def page_ids(self) -> Iterator[int]:
        """All currently allocated page ids (recovery scans use this)."""
        return iter(sorted(self._pages))

    def num_pages(self) -> int:
        return len(self._pages)

    def total_bytes(self) -> int:
        """Bytes occupied on the simulated disk."""
        return len(self._pages) * self.page_size
