"""Buffer pool implementing the paper's I/O-accounting model.

Section 4 of the paper analyses disk accesses under the standing assumption
that *"the internal R-tree nodes are cached in the memory buffer"*, so all
counted costs are **leaf-node** reads and writes.  This buffer pool encodes
that model directly:

* **Internal pages** are cached permanently after their first load and are
  written back lazily; their I/O is tracked separately (``internal_*``
  counters) and excluded from the headline metric.
* **Leaf pages** live in an *operation-scoped* cache.  Within one logical
  operation (an update, a query, a token-cleaning step ...) each distinct
  leaf page is read from disk at most once and written back at most once at
  the end of the operation.  This is exactly why the RUM-tree's
  clean-upon-touch optimisation is free (Section 3.3.3): the cleaning reuses
  the read and the write that the insertion pays for anyway.

Usage::

    with buffer.operation():
        node = buffer.get_node(page_id)   # 1 leaf read (at most once/op)
        node.entries.append(entry)
        buffer.mark_dirty(node)           # 1 leaf write, charged at exit

Accesses outside an operation degrade gracefully to read-through /
write-through with the same counters; the recovery scans use that mode.

A **batch scope** (:meth:`BufferPool.batch_scope`) stretches the same
mechanism over many logical operations: every operation opened inside the
scope flattens into it, so a page touched by several updates of one batch
is read at most once and written back at most once — at scope exit, in
ascending page-id order so the disk sees one sequential sweep.  The scope
reports how many dirty-marks it coalesced away, which is the batching
pipeline's headline I/O saving.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional, Set

from .disk import PageStore
from .iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.concurrency.primitives import LockLike
    from repro.concurrency.racecheck import RaceChecker
    from repro.obs import Observability
    from repro.obs.metrics import Counter
    from repro.rtree.node import Node

    from .codec import NodeCodec


#: Hot-path marker for lint rule REP009: bulk MBR predicates in this module
#: must go through :mod:`repro.kernels` (see docs/LINT.md).
HOT_PATH = True


@dataclass
class BatchScopeStats:
    """What one :meth:`BufferPool.batch_scope` saw and saved.

    ``write_marks`` counts every leaf ``mark_dirty`` inside the scope;
    ``pages_written`` the distinct dirty pages actually written at exit.
    Their difference — :attr:`coalesced_writes` — is the number of leaf
    writes the batch amortised away versus per-operation writeback.
    """

    write_marks: int = 0
    pages_written: int = 0

    @property
    def coalesced_writes(self) -> int:
        return max(0, self.write_marks - self.pages_written)


class _OperationScope:
    """Reusable, stateless context manager for :meth:`BufferPool.operation`.

    The operation scope sits on every query and update hot path; a shared
    ``__slots__`` instance avoids the generator machinery a
    ``@contextmanager`` would allocate per entry.  All state (the nesting
    depth) lives on the pool, so one instance serves nested uses too.
    """

    __slots__ = ("_pool",)

    def __init__(self, pool: "BufferPool") -> None:
        self._pool = pool

    def __enter__(self) -> None:
        pool = self._pool
        guard = pool._guard
        if guard is None:
            pool._op_depth += 1
        else:
            with guard:
                pool._op_depth += 1

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pool = self._pool
        guard = pool._guard
        if guard is None:
            pool._op_depth -= 1
            if pool._op_depth == 0:
                pool._flush_op_cache()
            return
        with guard:
            pool._op_depth -= 1
            if pool._op_depth == 0:
                pool._flush_op_cache()


class BufferPool:
    """Operation-scoped leaf cache plus a pinned internal-node cache.

    ``leaf_cache_pages`` optionally keeps that many leaf pages resident in
    an LRU *across* operations (write-back on eviction).  The paper's cost
    model assumes no such cache — every leaf access is a disk access — so
    the default is 0; the buffer-size ablation uses positive values to
    show how a real buffer manager would shrink all measured costs without
    changing any of the comparisons.

    ``version`` is a monotone counter bumped by every state-changing call
    (``mark_dirty``, ``free_node``, ``drop_volatile``).  Volatile
    acceleration structures snapshot it when built and compare it on use:
    an equal version guarantees no page the structure summarises has
    changed since (see :mod:`repro.rtree.mirror`).
    """

    def __init__(
        self,
        disk: PageStore,
        codec: "NodeCodec",
        stats: IOStats,
        leaf_cache_pages: int = 0,
    ) -> None:
        if disk.page_size != codec.node_size:
            raise ValueError(
                f"disk page size {disk.page_size} != codec node size "
                f"{codec.node_size}"
            )
        if leaf_cache_pages < 0:
            raise ValueError("leaf_cache_pages must be non-negative")
        self.disk = disk
        self.codec = codec
        self.stats = stats
        self.leaf_cache_pages = leaf_cache_pages
        #: Monotone modification counter (see the class docstring).
        self.version = 0
        self._op_scope = _OperationScope(self)
        self._internal_cache: Dict[int, "Node"] = {}
        self._dirty_internal: Set[int] = set()
        # The operation caches are the pool's shared mutable core;
        # concurrent tree operations serialise behind the owning tree's
        # structure latch (RTreeBase.latch, write mode).
        self._op_leaf_cache: Dict[int, "Node"] = {}  # guarded-by: latch
        self._dirty_leaves: Set[int] = set()  # guarded-by: latch
        # LRU of resident leaf pages (insertion order = recency) and the
        # subset whose in-memory state is newer than the disk page.
        self._lru: Dict[int, "Node"] = {}
        self._lru_dirty: Set[int] = set()
        self._op_depth = 0
        #: Stats of the innermost open batch scope (None outside one).
        self._batch: Optional[BatchScopeStats] = None
        #: Lifetime cache tallies, kept as plain ints *unconditionally*:
        #: one integer add per page access costs the same with or
        #: without observability attached, which keeps the per-page hot
        #: paths off the metrics-level overhead budget entirely.
        #: ``attach_obs`` mirrors them into lazy gauges.
        self.hit_count = 0
        self.miss_count = 0
        self.write_back_count = 0
        # Telemetry counters bound by attach_obs(); None = disabled.
        self._obs_evictions: Optional[Counter] = None
        self._obs_batch_scopes: Optional[Counter] = None
        self._obs_batch_coalesced: Optional[Counter] = None
        self._rc: Optional["RaceChecker"] = None
        # Shared-access guard (None = single-writer discipline; see
        # enable_shared_access).  When set, every cache-touching entry
        # point serialises behind it.
        self._guard: Optional["LockLike"] = None

    def enable_shared_access(self) -> "BufferPool":
        """Allow concurrent *read-latched* tree operations on this pool.

        The pool's default contract is the single-writer discipline of
        ``RTreeBase.latch`` held in **write** mode: every entry point
        assumes it is the only one running.  Read-only tree operations,
        however, still mutate the pool — ``get_node`` fills the
        operation cache, reorders the LRU and bumps the hit tallies —
        so two queries sharing the latch in read mode would race on the
        cache structures.  Calling this once installs an internal mutex
        (built via :func:`repro.concurrency.primitives.make_lock`, so
        the race detector tracks it) that every cache-touching entry
        point then takes, writers included: the Eraser lockset argument
        needs the guard in *every* access's lock set, not only the
        readers'.

        The guard serialises only the short in-memory cache sections,
        not disk time, and the ``_guard is None`` fast path keeps the
        default single-writer mode at zero overhead.  Returns ``self``
        for chaining.  Note that per-operation I/O *attribution* becomes
        approximate under read concurrency: two overlapping queries may
        each observe the other's cache fills.
        """
        if self._guard is None:
            from repro.concurrency.primitives import make_lock

            self._guard = make_lock()
        return self

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry: cache hits/misses, evictions, write-backs.

        A *hit* is any ``get_node`` served from the internal cache, the
        operation cache, or the resident LRU; a *miss* reads the disk.
        Write-backs count every dirty page written (operation end, LRU
        eviction, write-through, and explicit ``flush``).  Hits, misses
        and write-backs happen a dozen times per tree operation, so they
        are tallied as plain ints on the pool itself and exposed here as
        lazy gauges (values count from pool construction, not from
        attach); rarer events keep real counters.  The attach cascades
        to the disk manager so one call wires the whole stack.
        """
        if obs is None or not obs.metrics_on:
            self._obs_evictions = None
            self._obs_batch_scopes = self._obs_batch_coalesced = None
        else:
            reg = obs.registry
            self._obs_evictions = reg.counter("buffer.evictions")
            self._obs_batch_scopes = reg.counter("buffer.batch_scopes")
            self._obs_batch_coalesced = reg.counter(
                "buffer.batch_coalesced_writes"
            )
            reg.gauge("buffer.hits").set_function(
                lambda: float(self.hit_count)
            )
            reg.gauge("buffer.misses").set_function(
                lambda: float(self.miss_count)
            )
            reg.gauge("buffer.write_backs").set_function(
                lambda: float(self.write_back_count)
            )
            reg.gauge("buffer.internal_cached").set_function(
                self.cached_internal_nodes
            )
            reg.gauge("buffer.lru_resident").set_function(
                lambda: len(self._lru)
            )
        attach = getattr(self.disk, "attach_obs", None)
        if attach is not None:
            attach(obs)

    def attach_racecheck(self, checker: Optional["RaceChecker"]) -> None:
        """Bind (or unbind) the Eraser race detector.

        The pool is probed as one coarse location (``caches``): its
        internal structures (operation cache, LRU, dirty sets, version)
        are mutated together by every page access, so any two
        unsynchronised operations conflict — finer granularity would
        only delay the report.
        """
        self._rc = checker

    # -- operation scope ---------------------------------------------------

    def operation(self) -> _OperationScope:
        """Group page accesses into one logical operation.

        Nested uses are flattened into the outermost operation, so a
        clean-upon-touch step nested inside an insert shares the insert's
        page accesses, as in the paper.
        """
        return self._op_scope

    @contextmanager
    def batch_scope(self) -> Iterator[BatchScopeStats]:
        """Pin pages across many operations; one ordered flush at exit.

        Behaves like an :meth:`operation` that outlives every operation
        opened inside it (those flatten into the scope), so a leaf page
        touched by several updates of one batch is read once and written
        once.  Yields a :class:`BatchScopeStats` that, after exit, reports
        how many leaf writes the coalescing saved.  Nested batch scopes
        flatten into the outermost one (the inner scope's stats then only
        see its own dirty-marks; pages are written by the outer exit).
        """
        stats = BatchScopeStats()
        previous = self._batch
        self._batch = stats
        self._op_depth += 1
        try:
            yield stats
        finally:
            self._op_depth -= 1
            self._batch = previous
            if self._op_depth == 0:
                written = self._flush_op_cache()
                stats.pages_written = written
                if self._obs_batch_scopes is not None:
                    self._obs_batch_scopes.inc()
                    self._obs_batch_coalesced.inc(stats.coalesced_writes)

    @property
    def in_operation(self) -> bool:
        return self._op_depth > 0

    def _flush_op_cache(self) -> int:  # holds: latch
        """Write back the operation cache; returns leaf pages written.

        Dirty pages go out in ascending page-id order so a file-backed
        store sees one sequential sweep rather than hash-order seeks.
        """
        written = 0
        if self.leaf_cache_pages:
            # Hand the operation's pages to the resident LRU; dirty pages
            # are written back on eviction instead of at operation end.
            for page_id, node in self._op_leaf_cache.items():
                self._lru_insert(
                    page_id, node, dirty=page_id in self._dirty_leaves
                )
        else:
            for page_id in sorted(self._dirty_leaves):
                node = self._op_leaf_cache[page_id]
                self.disk.write_page(page_id, self._page_bytes(node))
                self.stats.record_write(is_leaf=True)
                written += 1
            self.write_back_count += written
        self._dirty_leaves.clear()
        self._op_leaf_cache.clear()
        return written

    def _page_bytes(self, node: "Node") -> bytes:
        """The page image to write for ``node``.

        Re-emits the cached clean image when the node was never dirtied
        since its last encode/decode; ``mark_dirty`` clears the cache, so
        a stale image can never reach the disk.
        """
        data = node.cached_bytes
        if data is None:
            data = self.codec.encode(node)
            node.cached_bytes = data
        return data

    # -- resident leaf LRU (buffer-size ablation) ----------------------------

    def _lru_insert(self, page_id: int, node: "Node", dirty: bool) -> None:
        if page_id in self._lru:
            del self._lru[page_id]  # refresh recency
        self._lru[page_id] = node
        if dirty:
            self._lru_dirty.add(page_id)
        while len(self._lru) > self.leaf_cache_pages:
            victim_id = next(iter(self._lru))
            self._lru_evict(victim_id)

    def _lru_evict(self, page_id: int) -> None:
        node = self._lru.pop(page_id)
        if self._obs_evictions is not None:
            self._obs_evictions.inc()
        if page_id in self._lru_dirty:
            self._lru_dirty.discard(page_id)
            self.disk.write_page(page_id, self._page_bytes(node))
            self.stats.record_write(is_leaf=True)
            self.write_back_count += 1

    def _lru_get(self, page_id: int) -> "Node":
        node = self._lru.pop(page_id)
        self._lru[page_id] = node  # refresh recency
        return node

    # -- node access ---------------------------------------------------------

    def get_node(self, page_id: int) -> "Node":  # holds: latch
        """Fetch a node, charging I/O according to the accounting model."""
        guard = self._guard
        if guard is None:
            return self._get_node_inner(page_id)
        with guard:
            return self._get_node_inner(page_id)

    def _get_node_inner(self, page_id: int) -> "Node":  # holds: latch
        if self._rc is not None:
            self._rc.access(self, "caches", write=True)
        node = self._internal_cache.get(page_id)
        if node is not None:
            self.hit_count += 1
            return node
        node = self._op_leaf_cache.get(page_id)
        if node is not None:
            self.hit_count += 1
            return node
        if page_id in self._lru:
            node = self._lru_get(page_id)
            self.hit_count += 1
            if self.in_operation:
                # Move into the operation cache, carrying the dirty flag.
                del self._lru[page_id]
                self._op_leaf_cache[page_id] = node
                if page_id in self._lru_dirty:
                    self._lru_dirty.discard(page_id)
                    self._dirty_leaves.add(page_id)
            return node
        data = self.disk.read_page(page_id)
        node = self.codec.decode(page_id, data, lazy=True)
        self.stats.record_read(is_leaf=node.is_leaf)
        self.miss_count += 1
        if node.is_leaf:
            if self.in_operation:
                self._op_leaf_cache[page_id] = node
            elif self.leaf_cache_pages:
                self._lru_insert(page_id, node, dirty=False)
        else:
            self._internal_cache[page_id] = node
        return node

    def charge_leaf_reads(self, page_ids: Iterable[int]) -> None:
        """Charge buffered leaf reads without materialising the nodes.

        Accounting-equivalent to ``get_node`` on each page inside one
        :meth:`operation`, for callers that already know the pages'
        contents (the query mirror answers from memory but must still pay
        the paper's per-leaf read cost): cache hits and misses are
        recorded identically, checksums are still verified on every page
        actually read, and with a resident LRU configured the decoded
        page enters the LRU exactly as an operation flush would have left
        it.  Callers must pass distinct page ids and must not be inside
        an open operation (an operation's cache would have deduplicated
        repeat reads; this path has no cache to do so).
        """
        guard = self._guard
        if guard is None:
            self._charge_leaf_reads_inner(page_ids)
        else:
            with guard:
                self._charge_leaf_reads_inner(page_ids)

    def _charge_leaf_reads_inner(self, page_ids: Iterable[int]) -> None:
        lru = self._lru
        record_read = self.stats.record_read
        read_page = self.disk.read_page
        verify = self.codec.checksums
        n_hits = 0
        n_misses = 0
        for page_id in page_ids:
            if page_id in lru:
                self._lru_get(page_id)  # refresh recency
                n_hits += 1
                continue
            data = read_page(page_id)
            record_read(True)
            n_misses += 1
            if self.leaf_cache_pages:
                self._lru_insert(
                    page_id,
                    self.codec.decode(page_id, data, lazy=True),
                    dirty=False,
                )
            elif verify:
                self.codec.verify_page(page_id, data)
        # Settle the cache tallies once per charge batch: this runs on
        # the mirror-served query path, where per-page increments are
        # measurable against the metrics-level overhead budget.
        self.hit_count += n_hits
        self.miss_count += n_misses

    def peek_node(self, page_id: int) -> "Node":  # holds: latch
        """Read a node *without* charging I/O or touching any cache.

        Serves from whichever cache currently holds the page (so dirty
        in-memory state is always visible) and otherwise decodes straight
        off the disk image; the decoded node is deliberately **not**
        entered into any cache and no read is recorded.  This is the
        accessor for volatile acceleration structures — e.g. the query
        mirror's build walk — whose construction must not perturb the
        paper's leaf-I/O accounting.  It must never be used on an
        operation's data path: pages read here bypass the once-per-
        operation accounting contract entirely.
        """
        guard = self._guard
        if guard is None:
            return self._peek_node_inner(page_id)
        with guard:
            return self._peek_node_inner(page_id)

    def _peek_node_inner(self, page_id: int) -> "Node":  # holds: latch
        if self._rc is not None:
            self._rc.access(self, "caches", write=False)
        node = self._internal_cache.get(page_id)
        if node is not None:
            return node
        node = self._op_leaf_cache.get(page_id)
        if node is not None:
            return node
        node = self._lru.get(page_id)
        if node is not None:
            return node
        return self.codec.decode(
            page_id, self.disk.peek(page_id), lazy=True
        )

    def residency(self, page_id: int) -> str:  # holds: latch
        """Which buffer layer currently holds ``page_id``.

        Returns ``"internal"``, ``"op"`` (operation-scoped leaf cache),
        ``"lru"``, or ``"disk"``.  Pure inspection: no cache is touched
        and no I/O is charged — the EXPLAIN traversals call this right
        before ``get_node`` to report the hit/miss a visit is about to
        take without perturbing the accounting they are explaining.
        """
        if page_id in self._internal_cache:
            return "internal"
        if page_id in self._op_leaf_cache:
            return "op"
        if page_id in self._lru:
            return "lru"
        return "disk"

    def mark_dirty(self, node: "Node") -> None:  # holds: latch
        """Record that ``node`` was modified and must reach disk.

        Also invalidates the node's cached page image and coordinate
        column block: the in-memory state has diverged from the bytes it
        was decoded from (or last encoded to), so the next write must
        re-encode and the next kernel call must rebuild its columns.
        """
        guard = self._guard
        if guard is None:
            self._mark_dirty_inner(node)
        else:
            with guard:
                self._mark_dirty_inner(node)

    def _mark_dirty_inner(self, node: "Node") -> None:  # holds: latch
        if self._rc is not None:
            self._rc.access(self, "caches", write=True)
        self.version += 1
        node.cached_bytes = None
        node.columns = None
        if node.is_leaf:
            batch = self._batch
            if batch is not None:
                batch.write_marks += 1
            if self.in_operation:
                self._op_leaf_cache[node.page_id] = node
                self._dirty_leaves.add(node.page_id)
            elif self.leaf_cache_pages:
                self._lru_insert(node.page_id, node, dirty=True)
            else:
                self.disk.write_page(
                    node.page_id, self._page_bytes(node)
                )
                self.stats.record_write(is_leaf=True)
                self.write_back_count += 1
        else:
            self._internal_cache[node.page_id] = node
            self._dirty_internal.add(node.page_id)

    def new_node(self, is_leaf: bool) -> "Node":
        """Allocate a fresh page and return its (dirty) node.

        A new leaf costs one leaf write when the operation completes; it is
        never charged a read.
        """
        # Local import: the node model depends on this package (via the
        # codec), so importing it at module load time would be circular.
        from repro.rtree.node import Node

        page_id = self.disk.allocate()
        node = Node(page_id, is_leaf)
        self.mark_dirty(node)
        return node

    def free_node(self, node: "Node") -> None:  # holds: latch
        """Release a node's page (leaf condense / root collapse)."""
        guard = self._guard
        if guard is None:
            self._free_node_inner(node)
        else:
            with guard:
                self._free_node_inner(node)

    def _free_node_inner(self, node: "Node") -> None:  # holds: latch
        if self._rc is not None:
            self._rc.access(self, "caches", write=True)
        self.version += 1
        page_id = node.page_id
        self._internal_cache.pop(page_id, None)
        self._dirty_internal.discard(page_id)
        self._op_leaf_cache.pop(page_id, None)
        self._dirty_leaves.discard(page_id)
        self._lru.pop(page_id, None)
        self._lru_dirty.discard(page_id)
        self.disk.free(page_id)

    # -- durability ------------------------------------------------------------

    def flush(self) -> None:
        """Write every dirty page to disk (internal pages included).

        Internal writes are counted on the ``internal_writes`` channel; the
        headline leaf metric is unaffected, matching the paper's model where
        directory maintenance happens in the background.
        """
        guard = self._guard
        if guard is None:
            self._flush_inner()
        else:
            with guard:
                self._flush_inner()

    def _flush_inner(self) -> None:
        if self._rc is not None:
            self._rc.access(self, "caches", write=True)
        if self.in_operation:
            raise RuntimeError("flush() inside an operation")
        self._flush_op_cache()
        for page_id in sorted(self._lru_dirty):
            node = self._lru[page_id]
            self.disk.write_page(page_id, self._page_bytes(node))
            self.stats.record_write(is_leaf=True)
            self.write_back_count += 1
        self._lru_dirty.clear()
        for page_id in sorted(self._dirty_internal):
            node = self._internal_cache[page_id]
            self.disk.write_page(page_id, self._page_bytes(node))
            self.stats.record_write(is_leaf=False)
            self.write_back_count += 1
        self._dirty_internal.clear()

    def checkpoint(self) -> None:
        """Make every written page durable: flush all dirty pages, then
        sync the underlying store (a no-op for the in-memory disk, a real
        fsync + atomic metadata write for :class:`FileDiskManager`).

        This is the durability tick of the crash-simulation harness: the
        state as of the last completed ``checkpoint()`` is what a crash
        is guaranteed to preserve.
        """
        self.flush()
        sync = getattr(self.disk, "sync", None)
        if sync is not None:
            sync()

    def drop_volatile(self) -> None:  # holds: latch
        """Forget all cached nodes *without* writing them.

        Combined with :meth:`flush` this simulates the crash model of
        Section 3.4: ``flush(); drop_volatile()`` leaves the on-disk tree
        intact while discarding every in-memory structure.
        """
        guard = self._guard
        if guard is None:
            self._drop_volatile_inner()
        else:
            with guard:
                self._drop_volatile_inner()

    def _drop_volatile_inner(self) -> None:  # holds: latch
        if self._rc is not None:
            self._rc.access(self, "caches", write=True)
        self.version += 1
        self._internal_cache.clear()
        self._dirty_internal.clear()
        self._op_leaf_cache.clear()
        self._dirty_leaves.clear()
        self._lru.clear()
        self._lru_dirty.clear()

    # -- introspection -----------------------------------------------------------

    def cached_internal_nodes(self) -> int:
        return len(self._internal_cache)
