"""File-backed page store: the same interface as :class:`DiskManager`,
persisted to a real file.

The in-memory :class:`~repro.storage.disk.DiskManager` is what the
experiments use (its counters are the metric); this variant exists so a
library user can actually keep an index across processes.  Pages live in a
flat ``pages.bin`` file at ``page_id * page_size`` offsets; the allocation
state (next id, free list) is saved to ``disk.json`` by :meth:`sync` and
restored by :meth:`open`.

The I/O counters have the same meaning as the in-memory manager's, so a
tree running over a file behaves identically in all measurements.

Crash consistency: :meth:`sync` first flushes and fsyncs the page file,
then replaces ``disk.json`` atomically (write to a temp file, fsync it,
``os.replace``), so a crash at *any* point of a sync leaves either the
previous complete metadata or the new complete metadata — never a torn
or stale-beyond-fsync ``disk.json``.  The optional
:class:`~repro.storage.faults.FaultInjector` hooks (``disk.sync.data``,
``disk.meta.tmp``) let the crash-simulation suite kill the process model
between exactly those steps and verify the guarantee.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import TYPE_CHECKING, BinaryIO, Iterator, List, Optional, Set, Union

from .disk import PageNotAllocatedError, zero_page

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.obs.metrics import Counter
    from .faults import FaultInjector

PAGES_FILE = "pages.bin"
META_FILE = "disk.json"
META_TMP_FILE = "disk.json.tmp"


class FileDiskManager:
    """Paged storage backed by a directory on the real filesystem."""

    def __init__(
        self,
        page_size: int,
        directory: Union[str, "os.PathLike[str]"],
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.faults = faults
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._path = self.directory / PAGES_FILE
        mode = "r+b" if self._path.exists() else "w+b"
        self._file: BinaryIO = open(self._path, mode)
        self._allocated: Set[int] = set()
        self._free: List[int] = []
        self._next_id = 0
        self.reads = 0
        self.writes = 0
        self._obs_syncs: Optional[Counter] = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry (same channel names as the in-memory manager,
        plus ``disk.syncs`` for durability points).  Page reads/writes
        ride the unconditional plain-int tallies as lazy gauges, exactly
        like :class:`~repro.storage.disk.DiskManager`."""
        if obs is None or not obs.metrics_on:
            self._obs_syncs = None
            return
        reg = obs.registry
        self._obs_syncs = reg.counter("disk.syncs")
        reg.gauge("disk.page_reads").set_function(lambda: float(self.reads))
        reg.gauge("disk.page_writes").set_function(
            lambda: float(self.writes)
        )
        reg.gauge("disk.pages").set_function(self.num_pages)
        reg.gauge("disk.bytes").set_function(self.total_bytes)

    # -- persistence of the allocation state --------------------------------

    @classmethod
    def open(
        cls,
        directory: Union[str, "os.PathLike[str]"],
        faults: Optional["FaultInjector"] = None,
    ) -> "FileDiskManager":
        """Re-open a directory previously written by :meth:`sync`."""
        root = pathlib.Path(directory)
        meta = json.loads((root / META_FILE).read_text())
        # A leftover temp file is a sync that crashed before going live;
        # its contents were never the authoritative state.
        tmp_path = root / META_TMP_FILE
        if tmp_path.exists():
            tmp_path.unlink()
        disk = cls(meta["page_size"], root, faults=faults)
        disk._allocated = set(meta["allocated"])
        disk._free = list(meta["free"])
        disk._next_id = meta["next_id"]
        return disk

    def sync(self) -> None:
        """Flush the page file and persist the allocation state.

        The metadata write is crash-safe: the new ``disk.json`` is
        written to a temp file, fsynced, and moved into place with
        ``os.replace`` (atomic on POSIX and Windows), so a crash during
        a sync can never leave torn or partially written metadata — a
        reopen sees either the previous state or the new one, complete.
        """
        if self._obs_syncs is not None:
            self._obs_syncs.inc()
        self._file.flush()
        os.fsync(self._file.fileno())
        if self.faults is not None:
            # Crash window: pages durable, metadata not yet touched.
            self.faults.fire("disk.sync.data")
        payload = json.dumps(
            {
                "page_size": self.page_size,
                "allocated": sorted(self._allocated),
                "free": self._free,
                "next_id": self._next_id,
            }
        )
        tmp_path = self.directory / META_TMP_FILE
        with open(tmp_path, "w") as tmp:
            tmp.write(payload)
            tmp.flush()
            os.fsync(tmp.fileno())
        if self.faults is not None:
            # Crash window: new metadata fully written but not yet live;
            # disk.json must still hold the previous complete state.
            self.faults.fire("disk.meta.tmp")
        os.replace(tmp_path, self.directory / META_FILE)

    def close(self) -> None:
        self.sync()
        self._file.close()

    # -- DiskManager interface -----------------------------------------------

    def allocate(self) -> int:
        if self._free:
            page_id = self._free.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        self._allocated.add(page_id)
        self._write_raw(page_id, zero_page(self.page_size))
        return page_id

    def free(self, page_id: int) -> None:
        if page_id not in self._allocated:
            raise PageNotAllocatedError(page_id)
        self._allocated.discard(page_id)
        self._free.append(page_id)

    def _read_raw(self, page_id: int) -> bytes:
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:  # sparse tail
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def _write_raw(self, page_id: int, data: bytes) -> None:
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    def read_page(self, page_id: int) -> bytes:
        if page_id not in self._allocated:
            raise PageNotAllocatedError(page_id)
        self.reads += 1
        return self._read_raw(page_id)

    def peek(self, page_id: int) -> bytes:
        """Uncounted read for introspection (metrics, invariant checks)."""
        if page_id not in self._allocated:
            raise PageNotAllocatedError(page_id)
        return self._read_raw(page_id)

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id not in self._allocated:
            raise PageNotAllocatedError(page_id)
        if len(data) != self.page_size:
            raise ValueError(
                f"page {page_id}: write of {len(data)} bytes to a "
                f"{self.page_size}-byte page"
            )
        self.writes += 1
        self._write_raw(page_id, bytes(data))

    # -- introspection ----------------------------------------------------------

    def is_allocated(self, page_id: int) -> bool:
        return page_id in self._allocated

    def page_ids(self) -> Iterator[int]:
        return iter(sorted(self._allocated))

    def num_pages(self) -> int:
        return len(self._allocated)

    def total_bytes(self) -> int:
        return len(self._allocated) * self.page_size
