"""Disk-access accounting.

Every experiment in the paper reports *numbers of disk accesses*; Section 4
explicitly restricts the analysis to **leaf-node** accesses because internal
nodes are assumed to be cached in the memory buffer.  :class:`IOStats` keeps
separate counters for every access category so that the headline metric
(leaf reads + leaf writes) can be computed without hiding the rest.

Counters are plain integers; snapshots and deltas are cheap value objects so
that a harness can measure the exact cost of a single logical operation::

    before = stats.snapshot()
    tree.update(oid, rect)
    cost = stats.snapshot() - before
    print(cost.leaf_total)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Dict


@dataclass(frozen=True)
class IOSnapshot:
    """An immutable copy of all I/O counters at one instant.

    Subtracting two snapshots yields the per-interval cost, also as an
    :class:`IOSnapshot`.
    """

    leaf_reads: int = 0
    leaf_writes: int = 0
    internal_reads: int = 0
    internal_writes: int = 0
    index_reads: int = 0
    index_writes: int = 0
    log_writes: int = 0
    log_reads: int = 0
    memo_reads: int = 0
    memo_writes: int = 0

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def leaf_total(self) -> int:
        """Leaf-node disk accesses — the paper's headline metric."""
        return self.leaf_reads + self.leaf_writes

    @property
    def index_total(self) -> int:
        """Secondary-index disk accesses (FUR-tree only)."""
        return self.index_reads + self.index_writes

    @property
    def log_total(self) -> int:
        """Write-ahead-log disk accesses (recovery options II/III)."""
        return self.log_writes + self.log_reads

    @property
    def memo_total(self) -> int:
        """Disk-resident Update-Memo run accesses (spilled memo only).

        Zero for the paper's pure in-RAM memo; the LSM-tiered memo
        (:mod:`repro.core.memo_lsm`) charges its run flushes, probes,
        compactions and manifest writes here.
        """
        return self.memo_reads + self.memo_writes

    @property
    def counted_total(self) -> int:
        """Everything the paper charges an update/query with.

        Leaf accesses plus the auxiliary structures that the respective
        approach pays for: the FUR-tree's secondary index, the RUM-tree's
        log traffic, and — when the Update Memo is spilled to disk — its
        run I/O.  Internal-node accesses are excluded, matching the
        "internal nodes are cached" assumption of Section 4.
        """
        return (
            self.leaf_total + self.index_total + self.log_total
            + self.memo_total
        )

    @property
    def grand_total(self) -> int:
        """All accesses including internal nodes (for honesty checks)."""
        return (
            self.counted_total + self.internal_reads + self.internal_writes
        )

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain ``{field: value}`` dict.

        The canonical serialisation used by the telemetry exporters and
        anywhere else a snapshot must become JSON — field order matches
        the dataclass declaration.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}


class IOStats:
    """Mutable disk-access counters shared by one storage stack.

    A single :class:`IOStats` instance is threaded through the disk, the
    buffer pool, the secondary index, and the write-ahead log of one tree so
    that one snapshot captures the complete cost of an operation.
    """

    __slots__ = (
        "leaf_reads",
        "leaf_writes",
        "internal_reads",
        "internal_writes",
        "index_reads",
        "index_writes",
        "log_writes",
        "log_reads",
        "memo_reads",
        "memo_writes",
        "_tls",
    )

    leaf_reads: int
    leaf_writes: int
    internal_reads: int
    internal_writes: int
    index_reads: int
    index_writes: int
    log_writes: int
    log_reads: int
    memo_reads: int
    memo_writes: int

    def __init__(self) -> None:
        # Per-thread leaf-access tally: under read concurrency the
        # shared counters cannot attribute I/O to one operation (two
        # overlapping queries each see the other's accesses), so hot
        # paths that must charge *their own* work — the serving
        # router's simulated disk channel, the throughput harness —
        # diff :meth:`thread_leaf_io` instead.
        self._tls = threading.local()
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.leaf_reads = 0
        self.leaf_writes = 0
        self.internal_reads = 0
        self.internal_writes = 0
        self.index_reads = 0
        self.index_writes = 0
        self.log_writes = 0
        self.log_reads = 0
        self.memo_reads = 0
        self.memo_writes = 0

    def snapshot(self) -> IOSnapshot:
        """Return an immutable copy of the current counters."""
        return IOSnapshot(
            leaf_reads=self.leaf_reads,
            leaf_writes=self.leaf_writes,
            internal_reads=self.internal_reads,
            internal_writes=self.internal_writes,
            index_reads=self.index_reads,
            index_writes=self.index_writes,
            log_writes=self.log_writes,
            log_reads=self.log_reads,
            memo_reads=self.memo_reads,
            memo_writes=self.memo_writes,
        )

    # -- recording helpers -------------------------------------------------

    def record_read(self, is_leaf: bool) -> None:
        """Charge one page read to the leaf or internal counter."""
        if is_leaf:
            self.leaf_reads += 1
            tls = self._tls
            tls.leaf_io = getattr(tls, "leaf_io", 0) + 1
        else:
            self.internal_reads += 1

    def record_write(self, is_leaf: bool) -> None:
        """Charge one page write to the leaf or internal counter."""
        if is_leaf:
            self.leaf_writes += 1
            tls = self._tls
            tls.leaf_io = getattr(tls, "leaf_io", 0) + 1
        else:
            self.internal_writes += 1

    def thread_leaf_io(self) -> int:
        """Leaf accesses recorded *by the calling thread* (monotone).

        Unlike the shared counters this is exact under concurrency:
        diff two readings around an operation to get the leaf I/O that
        operation itself performed, regardless of what other threads
        did in between.
        """
        count: int = getattr(self._tls, "leaf_io", 0)
        return count

    def __repr__(self) -> str:
        fields_repr = ", ".join(
            f"{name}={value}"
            for name, value in self.snapshot().as_dict().items()
        )
        return f"IOStats({fields_repr})"
