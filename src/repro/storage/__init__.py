"""Paged-disk storage substrate with the paper's I/O-accounting model.

The stack, bottom-up:

* :class:`~repro.storage.disk.DiskManager` — fixed-size pages of raw bytes;
* :class:`~repro.storage.codec.NodeCodec` — binary page layout (fanout is
  derived from node size, as in Table 1 of the paper);
* :class:`~repro.storage.buffer.BufferPool` — internal nodes pinned in
  memory, leaf accesses counted per logical operation (Section 4);
* :class:`~repro.storage.wal.WriteAheadLog` — log for recovery options
  II/III (Section 3.4);
* :class:`~repro.storage.iostats.IOStats` — the counters every experiment
  reports.
"""

from .buffer import BufferPool
from .codec import NodeCodec, PageOverflowError
from .disk import DiskManager, PageNotAllocatedError
from .filedisk import FileDiskManager
from .iostats import IOSnapshot, IOStats
from .wal import (
    CHECKPOINT_HEADER_BYTES,
    MEMO_CHANGE_BYTES,
    UM_ENTRY_BYTES,
    LogRecord,
    WriteAheadLog,
)

__all__ = [
    "BufferPool",
    "NodeCodec",
    "PageOverflowError",
    "DiskManager",
    "FileDiskManager",
    "PageNotAllocatedError",
    "IOSnapshot",
    "IOStats",
    "WriteAheadLog",
    "LogRecord",
    "UM_ENTRY_BYTES",
    "MEMO_CHANGE_BYTES",
    "CHECKPOINT_HEADER_BYTES",
]
