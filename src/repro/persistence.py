"""Save and re-open indexes on the real filesystem.

The experiments run over the in-memory disk simulator; a downstream user
of the library also wants an index that survives the process.  This module
persists any of the three tree variants to a directory —

* ``pages.bin`` + ``disk.json`` — the raw pages and allocation state
  (:class:`~repro.storage.filedisk.FileDiskManager` layout);
* ``tree.json`` — the structural metadata (root page, height, parent
  directory), the tree's configuration, and the variant's volatile side
  structures: the RUM-tree's stamp counter and Update Memo (exactly the
  checkpoint of recovery Option II) or the FUR-tree's secondary index —

and re-opens it with :func:`load_tree`::

    from repro.persistence import save_tree, load_tree

    save_tree(tree, "fleet_index")
    ...
    tree = load_tree("fleet_index")

Loading does not replay anything: the pages come back verbatim, the memo
comes back from its snapshot, and updates resume immediately.  (A crash
*without* a save is the paper's recovery problem — see
:mod:`repro.core.recovery`.)
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Union

from repro.core.rum import RUMTree
from repro.rtree.fur import FURTree
from repro.rtree.rstar import RStarTree
from repro.storage.buffer import BufferPool
from repro.storage.codec import NodeCodec, stamp_checksum
from repro.storage.filedisk import FileDiskManager
from repro.storage.iostats import IOStats

TREE_META_FILE = "tree.json"

_KINDS = {RStarTree: "rstar", FURTree: "fur", RUMTree: "rum"}


def _source_free_list(source) -> list:
    """The disk's freed-page-id list (both disk managers keep ``_free``)."""
    return list(getattr(source, "_free", ()))


def save_tree(tree, directory: Union[str, os.PathLike]) -> None:
    """Persist ``tree`` (any variant) into ``directory``."""
    kind = _KINDS.get(type(tree))
    if kind is None:
        raise TypeError(f"cannot persist a {type(tree).__name__}")
    tree.buffer.flush()

    directory = pathlib.Path(directory)
    source = tree.buffer.disk
    stamp = tree.buffer.codec.checksums
    target = FileDiskManager(source.page_size, directory)
    for page_id in source.page_ids():
        # Raw copy outside the counted channels: persistence is not an
        # experiment operation.  Pages from a checksum-free in-memory
        # codec get their crc32 stamped here, so the on-disk copy can be
        # verified for torn writes when it is reopened.
        data = source.peek(page_id)
        target._allocated.add(page_id)
        target._write_raw(
            page_id, data if stamp else stamp_checksum(data)
        )
    # Carry the source's allocation state verbatim: dropping the free
    # list (or recomputing next_id past it) would leak every freed page
    # id forever across save/load cycles.
    target._free = [
        pid for pid in _source_free_list(source)
        if pid not in target._allocated
    ]
    target._next_id = max(
        getattr(source, "_next_id", 0),
        max(target._allocated, default=-1) + 1,
    )
    target.sync()
    target.close()

    meta = {
        "kind": kind,
        "node_size": source.page_size,
        "rum_leaves": tree.buffer.codec.rum_leaves,
        "root_id": tree.root_id,
        "height": tree.height,
        "parent": list(tree.parent.items()),
        "maintain_leaf_ring": tree.maintain_leaf_ring,
    }
    if kind == "rum":
        meta["stamp_counter"] = tree.stamps.current
        meta["memo"] = tree.memo.snapshot()
        meta["inspection_ratio"] = tree.cleaner.inspection_ratio
        meta["n_tokens"] = tree.cleaner.n_tokens
        meta["clean_upon_touch"] = tree.clean_upon_touch
    elif kind == "fur":
        meta["extension"] = tree.extension
        meta["index"] = [
            [leaf.page_id, [entry.oid for entry in leaf.entries]]
            for leaf in tree.iter_leaf_nodes()
        ]
    (directory / TREE_META_FILE).write_text(json.dumps(meta))


def load_tree(directory: Union[str, os.PathLike]):
    """Re-open an index saved by :func:`save_tree`.

    Returns a fully functional tree of the saved variant running over a
    :class:`FileDiskManager` on ``directory``; further updates write to
    the same files (call :meth:`FileDiskManager.sync` or
    :func:`save_tree` again to persist the volatile structures).
    """
    directory = pathlib.Path(directory)
    meta = json.loads((directory / TREE_META_FILE).read_text())
    disk = FileDiskManager.open(directory)
    # Checksums on: pages coming off the real filesystem are verified on
    # decode, so a torn or corrupted page raises PageChecksumError
    # instead of silently decoding (pages saved before checksums existed
    # carry a stored crc of 0 and verify trivially).
    codec = NodeCodec(
        meta["node_size"], rum_leaves=meta["rum_leaves"], checksums=True
    )
    buffer = BufferPool(disk, codec, IOStats())
    attach = {
        "root_id": meta["root_id"],
        "height": meta["height"],
        "parent": {int(child): parent for child, parent in meta["parent"]},
    }

    kind = meta["kind"]
    if kind == "rstar":
        return RStarTree(buffer, attach=attach)
    if kind == "fur":
        tree = FURTree(buffer, extension=meta["extension"], attach=attach)
        tree.index.assign_many(
            (oid, page_id)
            for page_id, oids in meta["index"]
            for oid in oids
        )
        tree.stats.reset()  # the index rebuild is not workload cost
        return tree
    if kind == "rum":
        tree = RUMTree(
            buffer,
            inspection_ratio=meta["inspection_ratio"],
            n_tokens=meta["n_tokens"],
            clean_upon_touch=meta["clean_upon_touch"],
            attach=attach,
        )
        tree.stamps.restore(meta["stamp_counter"])
        tree.memo.restore(iter(map(tuple, meta["memo"])))
        return tree
    raise ValueError(f"unknown tree kind {kind!r} in {directory}")
