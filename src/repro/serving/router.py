"""The shard router: Z-order partition, fan-out queries, migrations.

Partitioning
------------
``n_shards`` (a power of two) fixes ``b = log2(n_shards)`` leading bits
of the 32-bit Morton key; shard ``i`` owns exactly the prefix cell
:func:`repro.rtree.zorder.shard_region` describes.  An object is routed
by the *centre of its new rectangle*, so updates are single-shard
unless the object crosses a cell boundary.

Cross-shard migration (the two-shard stamp-ordering rule)
---------------------------------------------------------
All shards draw stamps from **one shared counter**, so stamps are
comparable across shards and each shard's stream is a strictly
monotone subsequence — per-shard Lemma 1 holds unchanged.  A boundary
crossing becomes:

1. insert on the **new** shard at stamp ``s1`` (a plain memo-based
   insert);
2. memo-only delete on the **old** shard at stamp ``s2 > s1`` (no tree
   page is touched — the paper's cheap-delete is what makes migration
   affordable).

Insert-before-delete means a concurrent fan-out query can momentarily
see the object on both shards but never on neither; the merge dedups
per oid by **maximum stamp**, so the transient duplicate always
resolves to the newer rectangle.  Both steps run under the object's
stripe lock (one lock per oid stripe), which serialises migrations of
the same object; the two shard latches are taken one at a time, never
nested, so no latch-order cycle exists.  See docs/SHARDING.md for the
full argument.

Concurrency
-----------
Queries hold the target shard's latch in **read** mode (the shard's
buffer pool is switched into shared-access mode at construction);
updates hold it in write mode.  The optional ``io_latency`` models one
disk channel per shard: after releasing the structure latch, the
operation sleeps its measured leaf I/O times ``io_latency`` while
holding the shard's I/O-channel lock — sleeps on different shards
overlap (the GIL is released), which is exactly the parallelism
sharding buys on real hardware.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)

from repro.concurrency import racecheck
from repro.concurrency.primitives import LockLike, make_lock
from repro.core.stamp import StampCounter
from repro.factory import build_rum_tree
from repro.rtree.geometry import Rect
from repro.rtree.zorder import (
    shard_bits,
    shard_for_point,
    shard_region,
    shards_for_window,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrency.racecheck import RaceChecker
    from repro.core.rum import RUMTree
    from repro.obs import Observability
    from repro.obs.metrics import Counter

#: Default shard-tree node size: the serving layer favours small nodes
#: (shard trees are small; short descents beat page capacity).
DEFAULT_SHARD_NODE_SIZE = 2048


class Shard:
    """One partition: a full RUM-tree stack plus its cell and I/O lock."""

    __slots__ = ("index", "tree", "region", "io_lock")

    def __init__(self, index: int, tree: "RUMTree", region: Rect) -> None:
        self.index = index
        self.tree = tree
        self.region = region
        #: Serialises the shard's simulated disk channel (io_latency>0).
        self.io_lock: LockLike = make_lock()


class ShardRouter:
    """Routes updates, deletes, and fan-out queries over Z-order shards.

    Parameters
    ----------
    n_shards:
        Power-of-two shard count (1 = a single-tree deployment behind
        the same API, the benchmark baseline).
    node_size, recovery_option, memo_dir, tree_kwargs:
        Forwarded to :func:`repro.factory.build_rum_tree` per shard
        (``memo_dir`` gets a ``shard-<i>`` subdirectory each; with a
        recovery option each shard keeps its own WAL).
    io_latency:
        Seconds of simulated disk time per leaf access, served by one
        I/O channel per shard (0 disables the simulation).
    fanout_workers:
        Worker-pool size for multi-shard queries (default:
        ``n_shards``).
    stripes:
        Number of oid stripes in the routing directory; each stripe has
        its own lock, so updates of different objects rarely contend.
    """

    def __init__(
        self,
        n_shards: int = 4,
        *,
        node_size: int = DEFAULT_SHARD_NODE_SIZE,
        recovery_option: Optional[str] = None,
        memo_dir: Optional[str] = None,
        io_latency: float = 0.0,
        fanout_workers: Optional[int] = None,
        stripes: int = 64,
        obs: Optional["Observability"] = None,
        **tree_kwargs: Any,
    ) -> None:
        self._bits = shard_bits(n_shards)
        self.n_shards = n_shards
        self.io_latency = io_latency
        #: One stamp stream for every shard: cross-shard comparability
        #: is the serving layer's ordering rule (module docstring).
        self.stamps = StampCounter()
        self.shards: List[Shard] = []
        for i in range(n_shards):
            shard_memo_dir = (
                f"{memo_dir}/shard-{i}" if memo_dir is not None else None
            )
            tree = build_rum_tree(
                node_size=node_size,
                recovery_option=recovery_option,
                memo_dir=shard_memo_dir,
                stamp_counter=self.stamps,
                **tree_kwargs,
            )
            # Queries run under the shard latch in *read* mode; the pool
            # must serialise its own cache mutations across them.
            tree.buffer.enable_shared_access()
            self.shards.append(Shard(i, tree, Rect(*shard_region(i, self._bits))))
        # Routing directory: oid -> shard index, striped by oid.  Every
        # access happens under the oid's stripe lock.
        if stripes < 1:
            raise ValueError("stripes must be positive")
        self._stripes = stripes
        self._stripe_locks: List[LockLike] = [
            make_lock() for _ in range(stripes)
        ]
        self._directory: List[Dict[int, int]] = [{} for _ in range(stripes)]
        # Largest half-extent of any rectangle ever routed (protected by
        # its own lock): queries grow their window by it so an object
        # whose rect spills past its centre's cell is still found.
        self._extent_lock: LockLike = make_lock()
        self._max_half_extent = 0.0
        # Router tallies (protected by _stats_lock); attach_obs mirrors
        # them into counters.
        self._stats_lock: LockLike = make_lock()
        self._n_updates = 0
        self._n_migrations = 0
        self._n_queries = 0
        self._n_knn = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._fanout_workers = (
            fanout_workers if fanout_workers is not None else n_shards
        )
        self._rc: Optional["RaceChecker"] = racecheck.from_env()
        self._obs_migrations: Optional["Counter"] = None
        self._obs_fanout: Optional["Counter"] = None
        if self._rc is not None:
            self.attach_racecheck(self._rc)
        if obs is not None:
            self.attach_obs(obs)

    # -- attach cascades ---------------------------------------------------

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind router counters and cascade to every shard's stack.

        Shards share one registry, so per-tree counters (updates,
        queries, memo activity ...) aggregate across shards; per-tree
        gauges (height, memo size) reflect the last shard attached.
        """
        if obs is None or not obs.metrics_on:
            self._obs_migrations = None
            self._obs_fanout = None
        else:
            reg = obs.registry
            self._obs_migrations = reg.counter("router.migrations")
            self._obs_fanout = reg.counter("router.fanout_queries")
            reg.gauge("router.shards").set_function(
                lambda: float(self.n_shards)
            )
            reg.gauge("router.objects").set_function(
                lambda: float(self.count_objects())
            )
        for shard in self.shards:
            shard.tree.attach_obs(obs)

    def attach_racecheck(self, checker: Optional["RaceChecker"]) -> None:
        """Bind the race detector here and in every shard's stack."""
        self._rc = checker
        for shard in self.shards:
            shard.tree.attach_racecheck(checker)

    # -- routing helpers ---------------------------------------------------

    def shard_for_rect(self, rect: Rect) -> int:
        """Index of the shard ``rect``'s centre routes to."""
        return shard_for_point(
            (rect.xmin + rect.xmax) * 0.5,
            (rect.ymin + rect.ymax) * 0.5,
            self._bits,
        )

    def _note_extent(self, rect: Rect) -> None:
        half = max(rect.xmax - rect.xmin, rect.ymax - rect.ymin) * 0.5
        with self._extent_lock:
            if half > self._max_half_extent:
                self._max_half_extent = half

    def _query_pad(self) -> float:
        with self._extent_lock:
            return self._max_half_extent

    def _simulate_io(self, shard: Shard, leaf_io: int) -> None:
        """One disk channel per shard: sleeps on different shards overlap."""
        if self.io_latency > 0.0 and leaf_io > 0:
            with shard.io_lock:
                time.sleep(leaf_io * self.io_latency)

    @staticmethod
    def _leaf_io(tree: "RUMTree") -> int:
        # Per-thread tally: exact even when other operations overlap on
        # the same shard (the shared counters would cross-charge them).
        return tree.stats.thread_leaf_io()

    # -- update path -------------------------------------------------------

    def upsert(self, oid: int, rect: Rect) -> Dict[str, Any]:
        """Insert ``oid`` or move it to ``rect`` (routes by new centre).

        Returns ``{"shard": target, "migrated": bool}``.  A boundary
        crossing inserts on the new shard first, then memo-deletes on
        the old one, both under the oid's stripe lock (see the module
        docstring for why this order is the safe one).
        """
        target = self.shard_for_rect(rect)
        self._note_extent(rect)
        stripe = oid % self._stripes
        migrated = False
        with self._stripe_locks[stripe]:
            if self._rc is not None:
                self._rc.access(self, f"directory[{stripe}]", write=True)
            old = self._directory[stripe].get(oid)
            self._directory[stripe][oid] = target
            new_shard = self.shards[target]
            if old is None or old == target:
                with new_shard.tree.latch.write():
                    before = self._leaf_io(new_shard.tree)
                    new_shard.tree.update_object(oid, None, rect)
                    leaf_io = self._leaf_io(new_shard.tree) - before
                self._simulate_io(new_shard, leaf_io)
            else:
                migrated = True
                old_shard = self.shards[old]
                # Step 1: insert on the new shard (stamp s1).
                with new_shard.tree.latch.write():
                    before = self._leaf_io(new_shard.tree)
                    new_shard.tree.insert_object(oid, rect)
                    leaf_io = self._leaf_io(new_shard.tree) - before
                self._simulate_io(new_shard, leaf_io)
                # Step 2: memo-only delete on the old shard (stamp
                # s2 > s1): no tree page is touched, the old entries
                # become garbage for the old shard's cleaner.
                with old_shard.tree.latch.write():
                    old_shard.tree.delete_object(oid)
        with self._stats_lock:
            self._n_updates += 1
            if migrated:
                self._n_migrations += 1
        if migrated and self._obs_migrations is not None:
            self._obs_migrations.inc()
        return {"shard": target, "migrated": migrated}

    #: ``insert`` and ``update`` are the same operation under the memo
    #: approach (Section 3.2.1); both route by the new position.
    insert = upsert
    update = upsert

    def delete(self, oid: int) -> bool:
        """Remove ``oid``; returns whether it existed."""
        stripe = oid % self._stripes
        with self._stripe_locks[stripe]:
            if self._rc is not None:
                self._rc.access(self, f"directory[{stripe}]", write=True)
            old = self._directory[stripe].pop(oid, None)
            if old is None:
                return False
            shard = self.shards[old]
            with shard.tree.latch.write():
                shard.tree.delete_object(oid)
        with self._stats_lock:
            self._n_updates += 1
        return True

    # -- query fan-out -----------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=self._fanout_workers,
                thread_name_prefix="shard-fanout",
            )
            self._pool = pool
        return pool

    def _fan_out(
        self, targets: List[int], job: Callable[[Shard], Any]
    ) -> List[Any]:
        """Run ``job`` on every target shard, pooled when >1 target."""
        if len(targets) == 1:
            return [job(self.shards[targets[0]])]
        pool = self._ensure_pool()
        futures = [
            pool.submit(job, self.shards[index]) for index in targets
        ]
        return [f.result() for f in futures]

    def _query_shard(
        self, shard: Shard, window: Rect
    ) -> List[Tuple[int, Rect, int]]:
        """Memo-filtered range search on one shard, keeping stamps."""
        tree = shard.tree
        with tree.latch.read():
            before = self._leaf_io(tree)
            raw = tree.range_search(window)
            latest = tree.memo.latest_stamp
            results: List[Tuple[int, Rect, int]] = []
            for entry in raw:
                s_latest = latest(entry.oid)
                if s_latest is None or entry.stamp == s_latest:
                    results.append((entry.oid, entry.rect, entry.stamp))
            leaf_io = self._leaf_io(tree) - before
        self._simulate_io(shard, leaf_io)
        return results

    def query(self, window: Rect) -> List[Tuple[int, Rect]]:
        """All live objects intersecting ``window``, merged over shards.

        The window is grown by the largest object half-extent before
        computing the fan-out (an object routes by its centre but its
        rectangle may spill into the window from a neighbouring cell);
        each shard still evaluates the *original* window.  The merge
        dedups per oid by maximum stamp — during a migration the object
        may transiently exist on two shards, and the higher stamp is by
        construction the newer rectangle.
        """
        pad = self._query_pad()
        grown = Rect(
            window.xmin - pad,
            window.ymin - pad,
            window.xmax + pad,
            window.ymax + pad,
        )
        targets = shards_for_window(grown, self._bits)
        parts = self._fan_out(
            targets, lambda shard: self._query_shard(shard, window)
        )
        best: Dict[int, Tuple[int, Rect]] = {}
        for part in parts:
            for oid, rect, stamp in part:
                seen = best.get(oid)
                if seen is None or stamp > seen[0]:
                    best[oid] = (stamp, rect)
        with self._stats_lock:
            self._n_queries += 1
        if self._obs_fanout is not None and len(targets) > 1:
            self._obs_fanout.inc()
        return sorted(
            (oid, rect) for oid, (_stamp, rect) in best.items()
        )

    def _knn_shard(
        self, shard: Shard, x: float, y: float, k: int
    ) -> List[Tuple[float, int, int, Rect]]:
        """The shard's ``k`` nearest live objects (a bounded candidate
        heap: the best-first stream is already distance-ordered, so the
        first ``k`` memo-latest entries are the shard-local answer)."""
        tree = shard.tree
        candidates: List[Tuple[float, int, int, Rect]] = []
        with tree.latch.read():
            before = self._leaf_io(tree)
            for entry, dist in tree.iter_nearest(x, y):
                if tree.memo.check_status(entry.oid, entry.stamp) != "LATEST":
                    continue
                candidates.append((dist, entry.oid, entry.stamp, entry.rect))
                if len(candidates) == k:
                    break
            leaf_io = self._leaf_io(tree) - before
        self._simulate_io(shard, leaf_io)
        return candidates

    def nearest_neighbors(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        """The ``k`` live objects nearest ``(x, y)``, nearest first.

        Every shard contributes at most ``k`` candidates (its own kNN
        answer); the merge dedups by maximum stamp, then takes the ``k``
        globally nearest.  No distance-based shard pruning: with at most
        ``k * n_shards`` candidates the merge is already cheap, and the
        per-shard best-first search prunes internally.
        """
        if k <= 0:
            return []
        targets = list(range(self.n_shards))
        parts = self._fan_out(
            targets, lambda shard: self._knn_shard(shard, x, y, k)
        )
        best: Dict[int, Tuple[int, float, Rect]] = {}
        for part in parts:
            for dist, oid, stamp, rect in part:
                seen = best.get(oid)
                if seen is None or stamp > seen[0]:
                    best[oid] = (stamp, dist, rect)
        ranked = sorted(
            (dist, oid, rect)
            for oid, (_stamp, dist, rect) in best.items()
        )
        with self._stats_lock:
            self._n_knn += 1
        return [(oid, rect) for _dist, oid, rect in ranked[:k]]

    # -- introspection -----------------------------------------------------

    def count_objects(self) -> int:
        """Live objects according to the routing directory."""
        total = 0
        for stripe in range(self._stripes):
            with self._stripe_locks[stripe]:
                if self._rc is not None:
                    self._rc.access(
                        self, f"directory[{stripe}]", write=False
                    )
                total += len(self._directory[stripe])
        return total

    def shard_object_counts(self) -> List[int]:
        """Directory objects per shard (the routing balance)."""
        counts = [0] * self.n_shards
        for stripe in range(self._stripes):
            with self._stripe_locks[stripe]:
                if self._rc is not None:
                    self._rc.access(
                        self, f"directory[{stripe}]", write=False
                    )
                for target in self._directory[stripe].values():
                    counts[target] += 1
        return counts

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: routing balance, tallies, leaf I/O."""
        with self._stats_lock:
            tallies = {
                "updates": self._n_updates,
                "migrations": self._n_migrations,
                "queries": self._n_queries,
                "knn": self._n_knn,
            }
        per_shard = []
        for shard in self.shards:
            stats = shard.tree.stats
            per_shard.append(
                {
                    "index": shard.index,
                    "region": [
                        shard.region.xmin,
                        shard.region.ymin,
                        shard.region.xmax,
                        shard.region.ymax,
                    ],
                    "leaf_reads": stats.leaf_reads,
                    "leaf_writes": stats.leaf_writes,
                }
            )
        return {
            "n_shards": self.n_shards,
            "objects": self.count_objects(),
            "objects_per_shard": self.shard_object_counts(),
            "stamp": self.stamps.current,
            "tallies": tallies,
            "shards": per_shard,
        }

    def close(self) -> None:
        """Shut the fan-out pool down (idempotent)."""
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
