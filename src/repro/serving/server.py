"""Thread-per-connection socket server fronting a :class:`ShardRouter`.

One accept thread plus one thread per client connection; each
connection processes frames of the :mod:`~repro.serving.protocol` in
order, so a single client observes its own operations sequentially
while different clients execute concurrently (the router's stripe
locks and shard latches provide the synchronisation).

When the race detector is active, every served thread is bracketed
with fork/join happens-before edges, so the detector can tell the
single-threaded setup phase (loading the shards) from genuinely
concurrent accesses.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.concurrency import racecheck
from repro.concurrency.primitives import make_lock

from .protocol import (
    rect_from_wire,
    recv_frame,
    results_to_wire,
    send_frame,
)
from .router import ShardRouter


class ShardServer:
    """Serves a router over TCP; start/stop from the owning thread."""

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conn_socks: Dict[int, socket.socket] = {}
        self._conn_lock = make_lock()
        self._running = False
        self._rc = racecheck.from_env()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server is not running")
        addr: Tuple[str, int] = self._listener.getsockname()[:2]
        return addr

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spawn the accept thread; returns the address."""
        if self._running:
            raise RuntimeError("server already running")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        # Closing a socket does not wake a blocked accept() on every
        # platform; the accept loop polls on a short timeout instead and
        # rechecks the running flag between waits.
        listener.settimeout(0.2)
        self._listener = listener
        self._running = True
        thread = threading.Thread(
            target=self._accept_loop, name="shard-accept", daemon=True
        )
        self._accept_thread = thread
        if self._rc is not None:
            self._rc.note_fork(thread)
        thread.start()
        return self.address

    def stop(self) -> None:
        """Stop accepting, join every connection thread, close the pool."""
        if not self._running:
            return
        self._running = False
        accept_thread = self._accept_thread
        if accept_thread is not None:
            accept_thread.join()
            if self._rc is not None:
                self._rc.note_join(accept_thread)
            self._accept_thread = None
        listener = self._listener
        if listener is not None:
            listener.close()
        with self._conn_lock:
            conns = list(self._conn_threads)
            self._conn_threads.clear()
            socks = list(self._conn_socks.values())
            self._conn_socks.clear()
        for sock in socks:
            # Unblock any connection thread parked in recv(): shutdown
            # delivers EOF to the reader even from another thread.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already closed by the connection thread
        for thread in conns:
            thread.join()
            if self._rc is not None:
                self._rc.note_join(thread)
        self._listener = None
        self.router.close()

    def __enter__(self) -> "ShardServer":
        self.start()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.stop()

    # -- serving loops -----------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        if listener is None:  # start() assigns it before spawning us
            raise RuntimeError("accept loop started without a listener")
        while self._running:
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue  # recheck the running flag
            except OSError:
                return  # listener torn down
            conn.settimeout(None)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="shard-conn",
                daemon=True,
            )
            with self._conn_lock:
                self._conn_threads.append(thread)
                self._conn_socks[conn.fileno()] = conn
            if self._rc is not None:
                self._rc.note_fork(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        fd = conn.fileno()
        try:
            while True:
                request = recv_frame(conn)
                if request is None:
                    return
                send_frame(conn, self._handle(request))
        except (ConnectionError, OSError, ValueError):
            return  # peer vanished or sent garbage: drop the connection
        finally:
            with self._conn_lock:
                self._conn_socks.pop(fd, None)
            conn.close()

    def _handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request; protocol errors become error responses.

        Only ``Exception`` is caught — a ``SimulatedCrash`` or a
        ``KeyboardInterrupt`` must still tear the server down.
        """
        try:
            return {"ok": True, "result": self._dispatch(request)}
        # One request must never kill the connection: any dispatch failure
        # (bad op, malformed rect, shard-level error) becomes an error
        # response.  SimulatedCrash/KeyboardInterrupt derive from
        # BaseException and still propagate.
        # lint: disable=REP001
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, request: Dict[str, Any]) -> Any:
        op = request.get("op")
        router = self.router
        if op == "ping":
            return "pong"
        if op in ("insert", "update"):
            return router.upsert(
                int(request["oid"]), rect_from_wire(request["rect"])
            )
        if op == "delete":
            return {"existed": router.delete(int(request["oid"]))}
        if op == "query":
            return results_to_wire(
                router.query(rect_from_wire(request["window"]))
            )
        if op == "knn":
            return results_to_wire(
                router.nearest_neighbors(
                    float(request["x"]),
                    float(request["y"]),
                    int(request["k"]),
                )
            )
        if op == "count":
            return router.count_objects()
        if op == "stats":
            return router.stats()
        raise ValueError(f"unknown op {op!r}")
