"""Blocking client for the shard server's JSON protocol.

One socket, one in-flight request at a time (the protocol is strictly
request/response per connection); open several clients for concurrent
load — the open-loop benchmark gives each client thread its own.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.rtree.geometry import Rect

from .protocol import recv_frame, rect_from_wire, rect_to_wire, send_frame


class ServingClient:
    """Connects on construction; use as a context manager to close."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def request(self, message: Dict[str, Any]) -> Any:
        """One round trip; raises on transport or server-side errors."""
        send_frame(self._sock, message)
        response = recv_frame(self._sock)
        if response is None:
            raise ConnectionError("server closed the connection")
        if not response.get("ok"):
            raise RuntimeError(
                f"server error: {response.get('error', 'unknown')}"
            )
        return response.get("result")

    # -- convenience wrappers ----------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}) == "pong")

    def upsert(self, oid: int, rect: Rect) -> Dict[str, Any]:
        result: Dict[str, Any] = self.request(
            {"op": "update", "oid": oid, "rect": rect_to_wire(rect)}
        )
        return result

    def delete(self, oid: int) -> bool:
        return bool(self.request({"op": "delete", "oid": oid})["existed"])

    def query(self, window: Rect) -> List[Tuple[int, Rect]]:
        wire = self.request(
            {"op": "query", "window": rect_to_wire(window)}
        )
        return [(int(oid), rect_from_wire(coords)) for oid, coords in wire]

    def nearest_neighbors(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        wire = self.request({"op": "knn", "x": x, "y": y, "k": k})
        return [(int(oid), rect_from_wire(coords)) for oid, coords in wire]

    def count(self) -> int:
        return int(self.request({"op": "count"}))

    def stats(self) -> Dict[str, Any]:
        result: Dict[str, Any] = self.request({"op": "stats"})
        return result
