"""Sharded multi-tree serving layer.

A single RUM-tree behind one structure latch caps throughput at one
core (and one I/O channel) no matter how fast the per-operation kernels
get.  This package scales *out* instead: the unit square is partitioned
into Z-order prefix cells (:mod:`repro.rtree.zorder`), each cell owning
a complete RUM-tree storage stack — tree + buffer + memo + optional WAL
— and a :class:`~repro.serving.router.ShardRouter` routes updates by
position, fans range/kNN queries out to the overlapping shards on a
worker pool, and merges the answers.

The paper's own thesis makes the partition cheap to maintain: an object
whose movement crosses a shard boundary is an *insert* on the new shard
plus a *memo-only delete* on the old one (Section 3.2.1 — the delete
touches no tree page), ordered under one shared stamp counter so the
merge can always tell the latest version (docs/SHARDING.md).

:mod:`~repro.serving.server` fronts a router with a thread-pool socket
server speaking the length-prefixed JSON protocol of
:mod:`~repro.serving.protocol`; :mod:`~repro.serving.client` is the
matching blocking client.
"""

from .client import ServingClient
from .router import ShardRouter
from .server import ShardServer

__all__ = ["ShardRouter", "ShardServer", "ServingClient"]
