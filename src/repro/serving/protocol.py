"""Length-prefixed JSON wire protocol for the shard server.

Framing: every message is a 4-byte **big-endian unsigned length**
followed by that many bytes of UTF-8 JSON (one object per frame).
Oversized frames are rejected before allocation (:data:`MAX_FRAME`),
so a corrupt length prefix cannot balloon memory.

Requests are JSON objects with an ``op`` field::

    {"op": "ping"}
    {"op": "insert",  "oid": 7, "rect": [x1, y1, x2, y2]}
    {"op": "update",  "oid": 7, "rect": [x1, y1, x2, y2]}
    {"op": "delete",  "oid": 7}
    {"op": "query",   "window": [x1, y1, x2, y2]}
    {"op": "knn",     "x": 0.5, "y": 0.5, "k": 8}
    {"op": "count"}
    {"op": "stats"}

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": "<message>"}``.  Query and kNN results are lists of
``[oid, [x1, y1, x2, y2]]`` pairs.  The connection is persistent:
frames are processed in order until the client closes its end.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.rtree.geometry import Rect

#: Hard cap on one frame's payload (1 MiB of JSON is far beyond any
#: legitimate request or response at the supported scales).
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")


def rect_to_wire(rect: Rect) -> List[float]:
    return [rect.xmin, rect.ymin, rect.xmax, rect.ymax]


def rect_from_wire(coords: Sequence[float]) -> Rect:
    if len(coords) != 4:
        raise ValueError(f"rect needs 4 coordinates, got {len(coords)}")
    return Rect(
        float(coords[0]), float(coords[1]),
        float(coords[2]), float(coords[3]),
    )


def results_to_wire(
    results: Sequence[Tuple[int, Rect]]
) -> List[List[Any]]:
    return [[oid, rect_to_wire(rect)] for oid, rect in results]


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialise ``message`` and write one length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ValueError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on a clean EOF at a frame edge."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # clean close between frames
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` when the peer closed the connection."""
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame length {length} exceeds MAX_FRAME")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ConnectionError("connection closed before frame payload")
    message = json.loads(payload.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("frame payload must be a JSON object")
    return message
