"""The RUM-tree: R-tree with Update Memo (Section 3).

The memo-based update approach reduces an update to a plain insertion: the
old entry is *not* located or deleted — it simply becomes obsolete, and the
Update Memo (:mod:`repro.core.memo`) remembers which entry of each object is
the latest.  Obsolete entries are physically removed later by the garbage
cleaner (:mod:`repro.core.cleaner`), either when a cleaning token visits
their leaf or for free when an insertion touches it (*clean-upon-touch*,
Section 3.3.3).

Queries run the ordinary R-tree search and then filter the raw answer set
through the memo (Figure 3b), so the tree always returns exactly the latest
values even though multiple entries per object coexist.

Logging for the three crash-recovery options of Section 3.4 is integrated
here; the recovery procedures themselves live in
:mod:`repro.core.recovery`.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrency.racecheck import RaceChecker
    from repro.obs import Observability
    from repro.obs.explain import ExplainReport

    from .batch import BatchPlan, BatchResult

from repro.storage.buffer import BufferPool
from repro.storage.wal import WriteAheadLog

from repro.rtree.base import RTreeBase
from repro.rtree.geometry import Rect
from repro.rtree.node import LeafEntry, Node

from .cleaner import GarbageCleaner
from .memo import UpdateMemo
from .stamp import StampCounter

#: Recovery options of Section 3.4.
RECOVERY_NONE = "I"      # no log
RECOVERY_CHECKPOINT = "II"   # UM snapshot at checkpoints
RECOVERY_FULL_LOG = "III"    # checkpoints + every memo change

_RECOVERY_OPTIONS = (RECOVERY_NONE, RECOVERY_CHECKPOINT, RECOVERY_FULL_LOG)


class RUMTree(RTreeBase):
    """R-tree with Update Memo.

    Parameters
    ----------
    buffer:
        Storage stack; its codec must use the RUM leaf-entry layout
        (``NodeCodec(..., rum_leaves=True)``) so that stamps survive on
        disk — :func:`repro.factory.build_rum_tree` wires this up.
    inspection_ratio:
        ``ir`` of the garbage cleaner — leaf nodes inspected per update
        (Figure 10 sweeps 0–100%).  Together with ``n_tokens`` this fixes
        the token inspection interval ``I = n_tokens / ir``.
    n_tokens:
        Number of parallel cleaning tokens (Figure 7).
    clean_upon_touch:
        Also clean every leaf touched by an insertion, at zero extra I/O
        (Section 3.3.3).  This is the paper's "RUM-tree*touch*" variant;
        switching it off gives "RUM-tree*token*".
    stamp_counter:
        Optionally share a :class:`~repro.core.stamp.StampCounter` with
        other trees (the sharded serving layer passes one counter to all
        its shards so stamps are comparable across them); ``None`` gives
        the tree a private counter.
    recovery_option:
        ``None`` or one of ``"I"``, ``"II"``, ``"III"`` (Section 3.4).
        Options II/III require a :class:`WriteAheadLog`.
    checkpoint_interval:
        Updates between UM checkpoints for options II/III (the paper logs
        one checkpoint every 10,000 updates).
    """

    name = "RUM-tree"

    def __init__(
        self,
        buffer: BufferPool,
        *,
        inspection_ratio: float = 0.2,
        n_tokens: int = 1,
        clean_upon_touch: bool = True,
        memo_buckets: int = 64,
        memo: Optional[UpdateMemo] = None,
        stamp_counter: Optional[StampCounter] = None,
        recovery_option: Optional[str] = None,
        checkpoint_interval: int = 10_000,
        wal: Optional[WriteAheadLog] = None,
        phantom_inspection: bool = True,
        phantom_lag_cycles: int = 1,
        **kwargs,
    ):
        if not buffer.codec.rum_leaves:
            raise ValueError(
                "RUMTree requires a codec with rum_leaves=True "
                "(leaf entries must carry oid and stamp)"
            )
        if recovery_option is not None:
            if recovery_option not in _RECOVERY_OPTIONS:
                raise ValueError(
                    f"unknown recovery option {recovery_option!r}"
                )
            if recovery_option != RECOVERY_NONE and wal is None:
                raise ValueError(
                    f"recovery option {recovery_option} needs a write-ahead log"
                )
        if inspection_ratio < 0:
            raise ValueError("inspection_ratio must be non-negative")

        kwargs.setdefault("maintain_leaf_ring", True)
        super().__init__(buffer, **kwargs)

        # An injected memo (e.g. the disk-tiered SpillingUpdateMemo, or a
        # reopened instance during crash recovery) replaces the default
        # in-RAM hash; every memo touch goes through self.memo, so the
        # tree is agnostic to which tier answers.
        self.memo = memo if memo is not None else UpdateMemo(
            n_buckets=memo_buckets
        )
        # An injected stamp counter lets several trees draw from one
        # totally-ordered stamp stream — the sharded serving layer's
        # cross-shard ordering rule (docs/SHARDING.md) depends on every
        # shard's stamps being globally comparable.  Each tree's own
        # stream stays strictly monotone either way (the counter is a
        # thread-safe monotone source), which is all Lemma 1 needs.
        self.stamps = (
            stamp_counter if stamp_counter is not None else StampCounter()
        )
        self.clean_upon_touch = clean_upon_touch
        self.recovery_option = recovery_option
        self.checkpoint_interval = checkpoint_interval
        self.wal = wal
        # Mutated by every update path; serialised by the structure
        # latch like the rest of the tree's volatile state.
        self._updates_since_checkpoint = 0  # guarded-by: latch

        self.cleaner = GarbageCleaner(
            self,
            n_tokens=n_tokens,
            inspection_ratio=inspection_ratio,
            phantom_inspection=phantom_inspection and inspection_ratio > 0,
            phantom_lag_cycles=phantom_lag_cycles,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Extend the base cascade to the memo, the cleaner, and the WAL."""
        super().attach_obs(obs)
        attached = self.obs  # None when obs is absent or at level "off"
        self.memo.attach_obs(attached)
        self.cleaner.attach_obs(attached)
        if self.wal is not None:
            self.wal.attach_obs(attached)
        # The flight recorder's per-op memo columns ride the memo's
        # unconditional probe tallies (the baselines leave the base
        # class's None in place and report zeros).
        if attached is not None and attached.metrics_on:
            self._obs_rec_memo = self.memo

    def attach_racecheck(self, checker: Optional["RaceChecker"]) -> None:
        """Extend the base cascade to the memo and the stamp counter."""
        super().attach_racecheck(checker)
        self.memo.attach_racecheck(checker)
        self.stamps.attach_racecheck(checker)

    def _drift_update_predicted(self, tracker) -> float:
        """``IO_memo = 2(1 + ir)`` (Section 4.2.3) at the live cleaner's
        inspection ratio."""
        from repro.analysis.cost_model import expected_memo_update_io

        return expected_memo_update_io(self.cleaner.inspection_ratio)

    # ------------------------------------------------------------------
    # Memo-based insert / update / delete (Figures 4 and 5)
    # ------------------------------------------------------------------

    def insert_object(self, oid: int, rect: Rect) -> None:
        """MemoBasedInsert — inserts and updates are the same operation."""
        obs = self.obs
        if obs is None:
            self._memo_based_insert(oid, rect)
            return
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("insert", io=self.stats, tree=self.name, oid=oid):
                self._memo_based_insert(oid, rect)
        else:
            self._memo_based_insert(oid, rect)
        self._obs_op_end(
            begin, "insert", self._obs_c_updates, self._obs_h_update_io,
            self._obs_drift_update,
        )

    def update_object(
        self, oid: int, old_rect: Optional[Rect], new_rect: Rect
    ) -> None:
        """Memo-based update.  ``old_rect`` is ignored: *"The old value of
        the object being updated is not required"* (Section 3.2.1)."""
        obs = self.obs
        if obs is None:
            self._memo_based_insert(oid, new_rect)
            return
        tick = self._obs_utick
        if tick:
            # Unsampled update: exact counter + leaf-I/O histogram only
            # (see RTreeBase._obs_update_lite).
            self._obs_utick = tick - 1
            s = self.stats
            lio0 = s.leaf_reads + s.leaf_writes
            self._memo_based_insert(oid, new_rect)
            self._obs_update_lite(lio0)
            return
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("update", io=self.stats, tree=self.name, oid=oid):
                self._memo_based_insert(oid, new_rect)
        else:
            self._memo_based_insert(oid, new_rect)
        self._obs_update_end(begin)

    def _memo_based_insert(self, oid: int, rect: Rect) -> None:
        stamp = self.stamps.next()
        # Update the memo first so that clean-upon-touch already sees the
        # previous entry of this object as obsolete while the target leaf
        # is in hand.
        self.memo.record_update(oid, stamp)
        if self.recovery_option == RECOVERY_FULL_LOG:
            self.wal.append_memo_change(oid, stamp)
        with self.buffer.operation():
            self._insert(LeafEntry(rect, oid, stamp), 0, set())
        self._after_update()

    def delete_object(self, oid: int, old_rect: Optional[Rect] = None) -> None:
        """MemoBasedDelete (Figure 5): a deletion never touches the tree —
        it only bumps the memo so every tree entry of ``oid`` becomes
        obsolete and is garbage-collected later."""
        obs = self.obs
        if obs is None:
            self._memo_based_delete(oid)
            return
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("delete", io=self.stats, tree=self.name, oid=oid):
                self._memo_based_delete(oid)
        else:
            self._memo_based_delete(oid)
        self._obs_op_end(
            begin, "delete", self._obs_c_updates, self._obs_h_update_io, None
        )

    def _memo_based_delete(self, oid: int) -> None:
        stamp = self.stamps.next()
        self.memo.record_update(oid, stamp)
        if self.recovery_option == RECOVERY_FULL_LOG:
            self.wal.append_memo_change(oid, stamp)
        self._after_update()

    def _after_update(self) -> None:  # holds: latch
        self.cleaner.on_update()
        if self.recovery_option in (RECOVERY_CHECKPOINT, RECOVERY_FULL_LOG):
            if self._rc is not None:
                self._rc.access(self, "_updates_since_checkpoint", write=True)
            self._updates_since_checkpoint += 1
            if self._updates_since_checkpoint >= self.checkpoint_interval:
                self.write_checkpoint()

    def write_checkpoint(self) -> None:  # holds: latch
        """Log the UM and the stamp counter (recovery options II/III)."""
        if self.wal is None:
            raise RuntimeError("checkpointing requires a write-ahead log")
        if self._rc is not None:
            self._rc.access(self, "_updates_since_checkpoint", write=True)
        self.wal.append_checkpoint(self.memo.snapshot(), self.stamps.current)
        self._updates_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Batched ingestion (see repro.core.batch and docs/BATCHING.md)
    # ------------------------------------------------------------------

    def _apply_batch_plan(self, plan: "BatchPlan") -> "BatchResult":  # holds: latch
        """Memo-native batch application.

        Replaces the generic per-operation loop of
        :meth:`RTreeBase._apply_batch_plan` with the RUM-tree fast path:
        every surviving operation is a stamp bump plus a memo record (and,
        for upserts, one insertion) — no per-op spans, no per-op cleaner
        or checkpoint bookkeeping.  The whole batch runs inside

        * one :meth:`BufferPool.batch_scope` — repeat leaf visits hit the
          pinned op cache and writeback coalesces into a single ordered
          flush at scope exit, and
        * one :meth:`WriteAheadLog.group_commit` (Option III only) — the
          per-record forced flushes fold into one force at scope exit,
          so a batch of N memo changes costs one forced log write (plus
          one for the stamp lease reserved up front, which keeps the
          recovered stamp counter ahead of any tree entry a crashed
          batch leaves behind; see :meth:`WriteAheadLog.
          append_stamp_lease` and ``docs/BATCHING.md`` for the weakened
          mid-batch durability contract).

        Cleaner stepping is amortised with
        :meth:`GarbageCleaner.on_batch`: the same token steps run as for
        sequential application, but back to back inside the batch scope
        where their page writes coalesce with the batch's own writeback.
        Checkpoint accounting advances once per batch, so at most one UM
        checkpoint is written per batch (at its end, after the group
        commit has made the batch's memo records durable).
        """
        from .batch import BatchResult

        full_log = (
            self.recovery_option == RECOVERY_FULL_LOG and self.wal is not None
        )
        if full_log and plan.surviving:
            # Reserve the batch's stamp range up front (forced
            # immediately, outside the group scope): the batch inserts
            # durable tree entries before its memo records are forced,
            # and recovery must never reissue a stamp that may sit on
            # such an entry orphaned by a crashed group commit.
            self.wal.append_stamp_lease(
                self.stamps.current + plan.surviving
            )
        wal_scope: ContextManager[None] = (
            self.wal.group_commit() if full_log else nullcontext()
        )
        # defer_spills: with a disk-tiered memo the batch's records stay
        # in RAM and flush as at most one run at scope exit — the batch
        # *is* the memo run flush (a no-op for the in-RAM memo).
        with self.buffer.batch_scope() as scope, wal_scope, \
                self.memo.defer_spills():
            for d in plan.deletes:
                stamp = self.stamps.next()
                self.memo.record_update(d.oid, stamp)
                if full_log:
                    self.wal.append_memo_change(d.oid, stamp)
            for u in plan.upserts:
                stamp = self.stamps.next()
                self.memo.record_update(u.oid, stamp)
                if full_log:
                    self.wal.append_memo_change(u.oid, stamp)
                self._insert(LeafEntry(u.rect, u.oid, stamp), 0, set())
            self.cleaner.on_batch(plan.surviving)
        if (
            self.recovery_option in (RECOVERY_CHECKPOINT, RECOVERY_FULL_LOG)
            and plan.surviving
        ):
            if self._rc is not None:
                self._rc.access(self, "_updates_since_checkpoint", write=True)
            self._updates_since_checkpoint += plan.surviving
            if self._updates_since_checkpoint >= self.checkpoint_interval:
                self.write_checkpoint()
        return BatchResult(
            total_ops=plan.total_ops,
            applied=plan.surviving,
            deduped=plan.deduped,
            inserts=len(plan.upserts),
            deletes=len(plan.deletes),
            write_marks=scope.write_marks,
            pages_written=scope.pages_written,
        )

    # ------------------------------------------------------------------
    # Search (Figure 3b): raw R-tree answer set filtered through the memo
    # ------------------------------------------------------------------

    def search(self, window: Rect) -> List[Tuple[int, Rect]]:
        """All live objects whose latest MBR intersects ``window``."""
        obs = self.obs
        if obs is None:
            return self._memo_filtered_search(window)
        tick = self._obs_qtick
        if tick:
            self._obs_qtick = tick - 1
            return self._memo_filtered_search(window)
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("query", io=self.stats, tree=self.name):
                results = self._memo_filtered_search(window)
        else:
            results = self._memo_filtered_search(window)
        self._obs_query_end(begin, window)
        return results

    def _memo_filtered_search(self, window: Rect) -> List[Tuple[int, Rect]]:
        # CheckStatus per raw entry via memo.latest_stamp — the first-hit
        # probe every memo tier answers in ~O(1) (the disk-tiered memo
        # stops at the newest record instead of aggregating N_old), with
        # the probe tallies maintained inside the memo.  Classification
        # is identical to check_status's.
        raw = self.range_search(window)
        latest = self.memo.latest_stamp
        results: List[Tuple[int, Rect]] = []
        append = results.append
        for e in raw:
            s_latest = latest(e.oid)
            if s_latest is None or e.stamp == s_latest:
                append((e.oid, e.rect))
        return results

    def nearest_neighbors(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        """The ``k`` live objects nearest to ``(x, y)``, nearest first.

        Demonstrates that the memo filter composes with *any* R-tree query
        algorithm (Section 3.2.3): the incremental best-first stream of
        candidate entries is simply filtered through CheckStatus, pulling
        further candidates whenever an obsolete entry (or an older version
        of an object already reported) is skipped.
        """
        if k <= 0:
            return []
        obs = self.obs
        if obs is None:
            return self._memo_filtered_knn(x, y, k)
        begin = self._obs_op_begin()
        if obs.tracing:
            with obs.span("knn", io=self.stats, tree=self.name, k=k):
                results = self._memo_filtered_knn(x, y, k)
        else:
            results = self._memo_filtered_knn(x, y, k)
        self._obs_op_end(
            begin, "knn", self._obs_c_knn, self._obs_h_query_io, None
        )
        return results

    def _memo_filtered_knn(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        results: List[Tuple[int, Rect]] = []
        reported = set()
        for entry, _dist in self.iter_nearest(x, y):
            if self.memo.check_status(entry.oid, entry.stamp) != "LATEST":
                continue
            if entry.oid in reported:  # defensive; latest entries are unique
                continue
            reported.add(entry.oid)
            results.append((entry.oid, entry.rect))
            if len(results) == k:
                break
        return results

    # ------------------------------------------------------------------
    # EXPLAIN/ANALYZE overrides (memo-aware traces)
    # ------------------------------------------------------------------

    def explain_query(self, window: Rect) -> "ExplainReport":
        """ANALYZE one memo-filtered range query: the base traversal
        trace plus the Figure-3b memo filter, with the inspection
        outcome (latest vs obsolete) in the ``memo`` block.  The filter
        itself touches no pages, so the traversal's ``io_delta`` is
        still the whole cost of the query."""
        from repro import kernels
        from repro.obs.explain import ExplainReport

        mirror = self._mirror
        mirror_valid = (
            mirror is not None and mirror.version == self.buffer.version
        )
        visits, raw, io_delta = self._explain_range_traversal(window)
        check_status = self.memo.check_status
        latest = sum(
            1 for e in raw if check_status(e.oid, e.stamp) == "LATEST"
        )
        return ExplainReport(
            op="query",
            tree=self.name,
            backend=kernels.BACKEND,
            params={
                "window": (window.xmin, window.ymin, window.xmax, window.ymax)
            },
            served_by="mirror" if mirror_valid else "traversal",
            visits=visits,
            io_delta=io_delta,
            results=latest,
            memo={
                "inspections": len(raw),
                "latest": latest,
                "obsolete": len(raw) - latest,
            },
            mirror=mirror.summary() if mirror_valid else None,
        )

    def explain_knn(self, x: float, y: float, k: int) -> "ExplainReport":
        """ANALYZE one memo-filtered kNN query (Section 3.2.3): the
        best-first stream is filtered through CheckStatus, exactly as
        :meth:`nearest_neighbors` does."""
        from repro import kernels
        from repro.obs.explain import ExplainReport

        inspections = 0
        obsolete = 0
        reported: Set[int] = set()

        def accept(entry: LeafEntry) -> bool:
            nonlocal inspections, obsolete
            inspections += 1
            if self.memo.check_status(entry.oid, entry.stamp) != "LATEST":
                obsolete += 1
                return False
            if entry.oid in reported:  # defensive; latest entries are unique
                return False
            reported.add(entry.oid)
            return True

        visits, results, io_delta = self._explain_knn_traversal(
            x, y, max(k, 0), accept
        )
        return ExplainReport(
            op="knn",
            tree=self.name,
            backend=kernels.BACKEND,
            params={"x": x, "y": y, "k": k},
            visits=visits,
            io_delta=io_delta,
            results=len(results),
            memo={
                "inspections": inspections,
                "latest": inspections - obsolete,
                "obsolete": obsolete,
            },
        )

    def explain_update(
        self, oid: int, new_rect: Rect, old_rect: Optional[Rect] = None
    ) -> "ExplainReport":
        """ANALYZE one memo-based update — **this mutates the tree**.

        ``old_rect`` is accepted for protocol compatibility and ignored
        (Section 3.2.1).  The trace replays :meth:`_memo_based_insert`
        step by step with a stats snapshot between its three phases:

        * ``memo``   — stamp bump + UM record (+ the Option III forced
          log write, the only phase I/O the memo side can charge);
        * ``insert`` — the single-path R* insertion of the new entry;
        * ``clean``  — the token cleaner steps driven by this update
          (plus a UM checkpoint when one falls due).

        The visit list is the ChooseSubtree descent the insertion takes,
        pre-walked read-only with uncounted peeks (zero per-visit I/O);
        the contiguous phase deltas sum to ``io_delta`` exactly, so the
        report reconciles with fully attributed phases.
        """
        from repro import kernels
        from repro.obs.explain import ExplainReport

        visits = self._explain_insert_path(new_rect)
        height_before = self.height
        before = self.stats.snapshot()
        stamp = self.stamps.next()
        self.memo.record_update(oid, stamp)
        if self.recovery_option == RECOVERY_FULL_LOG:
            self.wal.append_memo_change(oid, stamp)
        memo_io = self.stats.snapshot() - before
        p = self.stats.snapshot()
        with self.buffer.operation():
            self._insert(LeafEntry(new_rect, oid, stamp), 0, set())
        insert_io = self.stats.snapshot() - p
        p = self.stats.snapshot()
        self._after_update()
        clean_io = self.stats.snapshot() - p
        io_delta = self.stats.snapshot() - before
        return ExplainReport(
            op="update",
            tree=self.name,
            backend=kernels.BACKEND,
            params={"oid": oid, "new_rect": tuple(new_rect)},
            visits=visits,
            phases={"memo": memo_io, "insert": insert_io, "clean": clean_io},
            io_delta=io_delta,
            results=1,
            memo={"stamp": stamp},
            extra={
                "height_before": height_before,
                "height_after": self.height,
                "visit_io_attributed": False,
            },
        )

    def _explain_insert_path(self, rect: Rect):
        """The ChooseSubtree descent an insertion of ``rect`` follows,
        pre-walked read-only with uncounted peeks (the real insertion
        afterwards charges the I/O; splits may extend the real path)."""
        from repro.obs.explain import NodeVisit
        from repro.storage.iostats import IOSnapshot

        zero = IOSnapshot()
        visits: List[NodeVisit] = []
        page_id = self.root_id
        level = self.height - 1
        while True:
            residency = self.buffer.residency(page_id)
            node = self._peek_node(page_id)
            if node.is_leaf:
                visits.append(
                    NodeVisit(
                        page_id=page_id,
                        level=level,
                        is_leaf=True,
                        entries_tested=len(node.entries),
                        entries_matched=0,
                        residency=residency,
                        io=zero,
                    )
                )
                return visits
            idx = self._choose_child_index(node, rect, level == 1)
            visits.append(
                NodeVisit(
                    page_id=page_id,
                    level=level,
                    is_leaf=False,
                    entries_tested=len(node.entries),
                    entries_matched=1,
                    residency=residency,
                    io=zero,
                )
            )
            page_id = node.entries[idx].child_id
            level -= 1

    # ------------------------------------------------------------------
    # Cleaning integration
    # ------------------------------------------------------------------

    def clean_leaf(self, leaf: Node, keep_at_least: int = 0) -> int:
        """Remove obsolete entries from ``leaf`` (Figure 8, step 1).

        ``keep_at_least`` stops the sweep early so opportunistic cleaning
        (clean-upon-touch, clean-on-split) never underflows a node in the
        middle of another structural operation.  Returns the number of
        entries removed; the caller owns MBR adjustment / condensation.
        """
        budget = len(leaf) - keep_at_least
        if budget <= 0:
            # Nothing may be removed: skip the sweep without materialising
            # the entries of a lazily decoded leaf.
            return 0
        memo = self.memo
        latest = memo.latest_stamp
        note_cleaned = memo.note_cleaned
        kept: List[LeafEntry] = []
        keep = kept.append
        removed = 0
        # Obsolescence probes go through memo.latest_stamp (first-hit,
        # tallies maintained inside the memo); the exhausted-budget
        # short circuit skips the probe exactly as before.
        for entry in leaf.entries:
            if removed < budget:
                s_latest = latest(entry.oid)
                if s_latest is not None and entry.stamp != s_latest:
                    note_cleaned(entry.oid)
                    removed += 1
                    continue
            keep(entry)
        if removed:
            leaf.entries = kept
            self.buffer.mark_dirty(leaf)
        return removed

    def _on_entry_placed(self, node: Node, entry: LeafEntry) -> None:
        if not self.clean_upon_touch:
            return
        # Clean-upon-touch (Section 3.3.3): the leaf is already being read
        # and written by this insertion, so sweeping it costs no extra I/O.
        # Leave at least min_leaf entries so the insertion path never has
        # to handle an underflow it did not cause.
        removed = self.clean_leaf(node, keep_at_least=self.min_leaf)
        if removed:
            self.cleaner.entries_removed += removed

    def _on_leaf_split(self, node: Node, sibling: Node) -> None:
        # A split inserts the new sibling right after the original in the
        # leaf ring, so obsolete entries distributed to the sibling can
        # land *behind* a cleaning token and survive the current ring
        # cycle.  Lemma 1 would then wrongly classify their memo entries
        # as phantoms and purging them would resurrect stale versions.
        # Telling the cleaner to shield those oids from the next phantom
        # purge keeps the purge sound while preserving the paper's split
        # behaviour (garbage moves with the entries; only the cleaner
        # removes it).
        if self.clean_upon_touch:
            # Touch-mode bonus: both halves are in memory — sweep them for
            # free (never below the post-split minimum fill).
            removed = self.clean_leaf(node, keep_at_least=self.min_leaf)
            removed += self.clean_leaf(sibling, keep_at_least=self.min_leaf)
            if removed:
                self.cleaner.entries_removed += removed
        memo = self.memo
        for entry in sibling.entries:
            if memo.is_obsolete(entry.oid, entry.stamp):
                self.cleaner.protect_from_purge(entry.oid)

    def _on_leaf_dissolved(self, node: Node) -> None:
        self.cleaner.on_leaf_dissolved(
            node.page_id, node.next_leaf, node.prev_leaf
        )

    def _insert(self, entry, level: int, reinserted: Set[int]):
        # Reinserted obsolete entries (leaf condensation, forced reinsert)
        # are dropped instead of re-entering the tree: physically removing
        # them here is free and keeps them from landing behind a token.
        if (
            level == 0
            and isinstance(entry, LeafEntry)
            and self.memo.is_obsolete(entry.oid, entry.stamp)
        ):
            self.memo.note_cleaned(entry.oid)
            self.cleaner.entries_removed += 1
            return None
        return super()._insert(entry, level, reinserted)

    # ------------------------------------------------------------------
    # Metrics (garbage ratio, memo size)
    # ------------------------------------------------------------------

    def garbage_count(self) -> int:
        """Exact number of obsolete entries currently in the tree."""
        return sum(
            1
            for entry in self.iter_leaf_entries()
            if self.memo.is_obsolete(entry.oid, entry.stamp)
        )

    def garbage_ratio(self, num_objects: int) -> float:
        """Obsolete entries over indexed objects (Section 3.3.1)."""
        if num_objects <= 0:
            return 0.0
        return self.garbage_count() / num_objects

    def memo_size_bytes(self) -> int:
        return self.memo.size_bytes()

    # ------------------------------------------------------------------
    # Crash simulation (Section 3.4)
    # ------------------------------------------------------------------

    def crash(self) -> None:  # holds: latch
        """Lose every volatile structure; the on-disk tree survives.

        The buffer is flushed first: the failure model of Section 3.4 is
        that *"UM is in main-memory ... when the system crashes, the data
        in UM is lost"* — the tree itself is durable.
        """
        self.buffer.flush()
        self.buffer.drop_volatile()
        self.memo.restore([])
        self.stamps.restore(0)
        self.cleaner.reset()
        self._updates_since_checkpoint = 0
