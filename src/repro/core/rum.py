"""The RUM-tree: R-tree with Update Memo (Section 3).

The memo-based update approach reduces an update to a plain insertion: the
old entry is *not* located or deleted — it simply becomes obsolete, and the
Update Memo (:mod:`repro.core.memo`) remembers which entry of each object is
the latest.  Obsolete entries are physically removed later by the garbage
cleaner (:mod:`repro.core.cleaner`), either when a cleaning token visits
their leaf or for free when an insertion touches it (*clean-upon-touch*,
Section 3.3.3).

Queries run the ordinary R-tree search and then filter the raw answer set
through the memo (Figure 3b), so the tree always returns exactly the latest
values even though multiple entries per object coexist.

Logging for the three crash-recovery options of Section 3.4 is integrated
here; the recovery procedures themselves live in
:mod:`repro.core.recovery`.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, ContextManager, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

    from .batch import BatchPlan, BatchResult

from repro.storage.buffer import BufferPool
from repro.storage.wal import WriteAheadLog

from repro.rtree.base import RTreeBase
from repro.rtree.geometry import Rect
from repro.rtree.node import LeafEntry, Node

from .cleaner import GarbageCleaner
from .memo import UpdateMemo
from .stamp import StampCounter

#: Recovery options of Section 3.4.
RECOVERY_NONE = "I"      # no log
RECOVERY_CHECKPOINT = "II"   # UM snapshot at checkpoints
RECOVERY_FULL_LOG = "III"    # checkpoints + every memo change

_RECOVERY_OPTIONS = (RECOVERY_NONE, RECOVERY_CHECKPOINT, RECOVERY_FULL_LOG)


class RUMTree(RTreeBase):
    """R-tree with Update Memo.

    Parameters
    ----------
    buffer:
        Storage stack; its codec must use the RUM leaf-entry layout
        (``NodeCodec(..., rum_leaves=True)``) so that stamps survive on
        disk — :func:`repro.factory.build_rum_tree` wires this up.
    inspection_ratio:
        ``ir`` of the garbage cleaner — leaf nodes inspected per update
        (Figure 10 sweeps 0–100%).  Together with ``n_tokens`` this fixes
        the token inspection interval ``I = n_tokens / ir``.
    n_tokens:
        Number of parallel cleaning tokens (Figure 7).
    clean_upon_touch:
        Also clean every leaf touched by an insertion, at zero extra I/O
        (Section 3.3.3).  This is the paper's "RUM-tree*touch*" variant;
        switching it off gives "RUM-tree*token*".
    recovery_option:
        ``None`` or one of ``"I"``, ``"II"``, ``"III"`` (Section 3.4).
        Options II/III require a :class:`WriteAheadLog`.
    checkpoint_interval:
        Updates between UM checkpoints for options II/III (the paper logs
        one checkpoint every 10,000 updates).
    """

    name = "RUM-tree"

    def __init__(
        self,
        buffer: BufferPool,
        *,
        inspection_ratio: float = 0.2,
        n_tokens: int = 1,
        clean_upon_touch: bool = True,
        memo_buckets: int = 64,
        recovery_option: Optional[str] = None,
        checkpoint_interval: int = 10_000,
        wal: Optional[WriteAheadLog] = None,
        phantom_inspection: bool = True,
        phantom_lag_cycles: int = 1,
        **kwargs,
    ):
        if not buffer.codec.rum_leaves:
            raise ValueError(
                "RUMTree requires a codec with rum_leaves=True "
                "(leaf entries must carry oid and stamp)"
            )
        if recovery_option is not None:
            if recovery_option not in _RECOVERY_OPTIONS:
                raise ValueError(
                    f"unknown recovery option {recovery_option!r}"
                )
            if recovery_option != RECOVERY_NONE and wal is None:
                raise ValueError(
                    f"recovery option {recovery_option} needs a write-ahead log"
                )
        if inspection_ratio < 0:
            raise ValueError("inspection_ratio must be non-negative")

        kwargs.setdefault("maintain_leaf_ring", True)
        super().__init__(buffer, **kwargs)

        self.memo = UpdateMemo(n_buckets=memo_buckets)
        self.stamps = StampCounter()
        self.clean_upon_touch = clean_upon_touch
        self.recovery_option = recovery_option
        self.checkpoint_interval = checkpoint_interval
        self.wal = wal
        self._updates_since_checkpoint = 0

        self.cleaner = GarbageCleaner(
            self,
            n_tokens=n_tokens,
            inspection_ratio=inspection_ratio,
            phantom_inspection=phantom_inspection and inspection_ratio > 0,
            phantom_lag_cycles=phantom_lag_cycles,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Extend the base cascade to the memo, the cleaner, and the WAL."""
        super().attach_obs(obs)
        attached = self.obs  # None when obs is absent or at level "off"
        self.memo.attach_obs(attached)
        self.cleaner.attach_obs(attached)
        if self.wal is not None:
            self.wal.attach_obs(attached)

    # ------------------------------------------------------------------
    # Memo-based insert / update / delete (Figures 4 and 5)
    # ------------------------------------------------------------------

    def insert_object(self, oid: int, rect: Rect) -> None:
        """MemoBasedInsert — inserts and updates are the same operation."""
        obs = self.obs
        if obs is None:
            self._memo_based_insert(oid, rect)
            return
        with obs.span("insert", io=self.stats, tree=self.name, oid=oid) as sp:
            self._memo_based_insert(oid, rect)
        self._obs_record(self._obs_c_updates, self._obs_h_update_io, sp)

    def update_object(
        self, oid: int, old_rect: Optional[Rect], new_rect: Rect
    ) -> None:
        """Memo-based update.  ``old_rect`` is ignored: *"The old value of
        the object being updated is not required"* (Section 3.2.1)."""
        obs = self.obs
        if obs is None:
            self._memo_based_insert(oid, new_rect)
            return
        with obs.span("update", io=self.stats, tree=self.name, oid=oid) as sp:
            self._memo_based_insert(oid, new_rect)
        self._obs_record(self._obs_c_updates, self._obs_h_update_io, sp)

    def _memo_based_insert(self, oid: int, rect: Rect) -> None:
        stamp = self.stamps.next()
        # Update the memo first so that clean-upon-touch already sees the
        # previous entry of this object as obsolete while the target leaf
        # is in hand.
        self.memo.record_update(oid, stamp)
        if self.recovery_option == RECOVERY_FULL_LOG:
            self.wal.append_memo_change(oid, stamp)
        with self.buffer.operation():
            self._insert(LeafEntry(rect, oid, stamp), 0, set())
        self._after_update()

    def delete_object(self, oid: int, old_rect: Optional[Rect] = None) -> None:
        """MemoBasedDelete (Figure 5): a deletion never touches the tree —
        it only bumps the memo so every tree entry of ``oid`` becomes
        obsolete and is garbage-collected later."""
        obs = self.obs
        if obs is None:
            self._memo_based_delete(oid)
            return
        with obs.span("delete", io=self.stats, tree=self.name, oid=oid) as sp:
            self._memo_based_delete(oid)
        self._obs_record(self._obs_c_updates, self._obs_h_update_io, sp)

    def _memo_based_delete(self, oid: int) -> None:
        stamp = self.stamps.next()
        self.memo.record_update(oid, stamp)
        if self.recovery_option == RECOVERY_FULL_LOG:
            self.wal.append_memo_change(oid, stamp)
        self._after_update()

    def _after_update(self) -> None:
        self.cleaner.on_update()
        if self.recovery_option in (RECOVERY_CHECKPOINT, RECOVERY_FULL_LOG):
            self._updates_since_checkpoint += 1
            if self._updates_since_checkpoint >= self.checkpoint_interval:
                self.write_checkpoint()

    def write_checkpoint(self) -> None:
        """Log the UM and the stamp counter (recovery options II/III)."""
        if self.wal is None:
            raise RuntimeError("checkpointing requires a write-ahead log")
        self.wal.append_checkpoint(self.memo.snapshot(), self.stamps.current)
        self._updates_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Batched ingestion (see repro.core.batch and docs/BATCHING.md)
    # ------------------------------------------------------------------

    def _apply_batch_plan(self, plan: "BatchPlan") -> "BatchResult":
        """Memo-native batch application.

        Replaces the generic per-operation loop of
        :meth:`RTreeBase._apply_batch_plan` with the RUM-tree fast path:
        every surviving operation is a stamp bump plus a memo record (and,
        for upserts, one insertion) — no per-op spans, no per-op cleaner
        or checkpoint bookkeeping.  The whole batch runs inside

        * one :meth:`BufferPool.batch_scope` — repeat leaf visits hit the
          pinned op cache and writeback coalesces into a single ordered
          flush at scope exit, and
        * one :meth:`WriteAheadLog.group_commit` (Option III only) — the
          per-record forced flushes fold into one force at scope exit,
          so a batch of N memo changes costs one forced log write (plus
          one for the stamp lease reserved up front, which keeps the
          recovered stamp counter ahead of any tree entry a crashed
          batch leaves behind; see :meth:`WriteAheadLog.
          append_stamp_lease` and ``docs/BATCHING.md`` for the weakened
          mid-batch durability contract).

        Cleaner stepping is amortised with
        :meth:`GarbageCleaner.on_batch`: the same token steps run as for
        sequential application, but back to back inside the batch scope
        where their page writes coalesce with the batch's own writeback.
        Checkpoint accounting advances once per batch, so at most one UM
        checkpoint is written per batch (at its end, after the group
        commit has made the batch's memo records durable).
        """
        from .batch import BatchResult

        full_log = (
            self.recovery_option == RECOVERY_FULL_LOG and self.wal is not None
        )
        if full_log and plan.surviving:
            # Reserve the batch's stamp range up front (forced
            # immediately, outside the group scope): the batch inserts
            # durable tree entries before its memo records are forced,
            # and recovery must never reissue a stamp that may sit on
            # such an entry orphaned by a crashed group commit.
            self.wal.append_stamp_lease(
                self.stamps.current + plan.surviving
            )
        wal_scope: ContextManager[None] = (
            self.wal.group_commit() if full_log else nullcontext()
        )
        with self.buffer.batch_scope() as scope, wal_scope:
            for d in plan.deletes:
                stamp = self.stamps.next()
                self.memo.record_update(d.oid, stamp)
                if full_log:
                    self.wal.append_memo_change(d.oid, stamp)
            for u in plan.upserts:
                stamp = self.stamps.next()
                self.memo.record_update(u.oid, stamp)
                if full_log:
                    self.wal.append_memo_change(u.oid, stamp)
                self._insert(LeafEntry(u.rect, u.oid, stamp), 0, set())
            self.cleaner.on_batch(plan.surviving)
        if (
            self.recovery_option in (RECOVERY_CHECKPOINT, RECOVERY_FULL_LOG)
            and plan.surviving
        ):
            self._updates_since_checkpoint += plan.surviving
            if self._updates_since_checkpoint >= self.checkpoint_interval:
                self.write_checkpoint()
        return BatchResult(
            total_ops=plan.total_ops,
            applied=plan.surviving,
            deduped=plan.deduped,
            inserts=len(plan.upserts),
            deletes=len(plan.deletes),
            write_marks=scope.write_marks,
            pages_written=scope.pages_written,
        )

    # ------------------------------------------------------------------
    # Search (Figure 3b): raw R-tree answer set filtered through the memo
    # ------------------------------------------------------------------

    def search(self, window: Rect) -> List[Tuple[int, Rect]]:
        """All live objects whose latest MBR intersects ``window``."""
        obs = self.obs
        if obs is None:
            return self._memo_filtered_search(window)
        with obs.span("query", io=self.stats, tree=self.name) as sp:
            results = self._memo_filtered_search(window)
        self._obs_record(self._obs_c_queries, self._obs_h_query_io, sp)
        return results

    def _memo_filtered_search(self, window: Rect) -> List[Tuple[int, Rect]]:
        raw = self.range_search(window)
        check_status = self.memo.check_status
        return [
            (e.oid, e.rect)
            for e in raw
            if check_status(e.oid, e.stamp) == "LATEST"
        ]

    def nearest_neighbors(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        """The ``k`` live objects nearest to ``(x, y)``, nearest first.

        Demonstrates that the memo filter composes with *any* R-tree query
        algorithm (Section 3.2.3): the incremental best-first stream of
        candidate entries is simply filtered through CheckStatus, pulling
        further candidates whenever an obsolete entry (or an older version
        of an object already reported) is skipped.
        """
        if k <= 0:
            return []
        obs = self.obs
        if obs is None:
            return self._memo_filtered_knn(x, y, k)
        with obs.span("knn", io=self.stats, tree=self.name, k=k) as sp:
            results = self._memo_filtered_knn(x, y, k)
        self._obs_record(self._obs_c_knn, self._obs_h_query_io, sp)
        return results

    def _memo_filtered_knn(
        self, x: float, y: float, k: int
    ) -> List[Tuple[int, Rect]]:
        results: List[Tuple[int, Rect]] = []
        reported = set()
        for entry, _dist in self.iter_nearest(x, y):
            if self.memo.check_status(entry.oid, entry.stamp) != "LATEST":
                continue
            if entry.oid in reported:  # defensive; latest entries are unique
                continue
            reported.add(entry.oid)
            results.append((entry.oid, entry.rect))
            if len(results) == k:
                break
        return results

    # ------------------------------------------------------------------
    # Cleaning integration
    # ------------------------------------------------------------------

    def clean_leaf(self, leaf: Node, keep_at_least: int = 0) -> int:
        """Remove obsolete entries from ``leaf`` (Figure 8, step 1).

        ``keep_at_least`` stops the sweep early so opportunistic cleaning
        (clean-upon-touch, clean-on-split) never underflows a node in the
        middle of another structural operation.  Returns the number of
        entries removed; the caller owns MBR adjustment / condensation.
        """
        budget = len(leaf) - keep_at_least
        if budget <= 0:
            # Nothing may be removed: skip the sweep without materialising
            # the entries of a lazily decoded leaf.
            return 0
        memo = self.memo
        is_obsolete = memo.is_obsolete
        note_cleaned = memo.note_cleaned
        kept: List[LeafEntry] = []
        keep = kept.append
        removed = 0
        for entry in leaf.entries:
            if removed < budget and is_obsolete(entry.oid, entry.stamp):
                note_cleaned(entry.oid)
                removed += 1
            else:
                keep(entry)
        if removed:
            leaf.entries = kept
            self.buffer.mark_dirty(leaf)
        return removed

    def _on_entry_placed(self, node: Node, entry: LeafEntry) -> None:
        if not self.clean_upon_touch:
            return
        # Clean-upon-touch (Section 3.3.3): the leaf is already being read
        # and written by this insertion, so sweeping it costs no extra I/O.
        # Leave at least min_leaf entries so the insertion path never has
        # to handle an underflow it did not cause.
        removed = self.clean_leaf(node, keep_at_least=self.min_leaf)
        if removed:
            self.cleaner.entries_removed += removed

    def _on_leaf_split(self, node: Node, sibling: Node) -> None:
        # A split inserts the new sibling right after the original in the
        # leaf ring, so obsolete entries distributed to the sibling can
        # land *behind* a cleaning token and survive the current ring
        # cycle.  Lemma 1 would then wrongly classify their memo entries
        # as phantoms and purging them would resurrect stale versions.
        # Telling the cleaner to shield those oids from the next phantom
        # purge keeps the purge sound while preserving the paper's split
        # behaviour (garbage moves with the entries; only the cleaner
        # removes it).
        if self.clean_upon_touch:
            # Touch-mode bonus: both halves are in memory — sweep them for
            # free (never below the post-split minimum fill).
            removed = self.clean_leaf(node, keep_at_least=self.min_leaf)
            removed += self.clean_leaf(sibling, keep_at_least=self.min_leaf)
            if removed:
                self.cleaner.entries_removed += removed
        memo = self.memo
        for entry in sibling.entries:
            if memo.is_obsolete(entry.oid, entry.stamp):
                self.cleaner.protect_from_purge(entry.oid)

    def _on_leaf_dissolved(self, node: Node) -> None:
        self.cleaner.on_leaf_dissolved(
            node.page_id, node.next_leaf, node.prev_leaf
        )

    def _insert(self, entry, level: int, reinserted: Set[int]):
        # Reinserted obsolete entries (leaf condensation, forced reinsert)
        # are dropped instead of re-entering the tree: physically removing
        # them here is free and keeps them from landing behind a token.
        if (
            level == 0
            and isinstance(entry, LeafEntry)
            and self.memo.is_obsolete(entry.oid, entry.stamp)
        ):
            self.memo.note_cleaned(entry.oid)
            self.cleaner.entries_removed += 1
            return None
        return super()._insert(entry, level, reinserted)

    # ------------------------------------------------------------------
    # Metrics (garbage ratio, memo size)
    # ------------------------------------------------------------------

    def garbage_count(self) -> int:
        """Exact number of obsolete entries currently in the tree."""
        return sum(
            1
            for entry in self.iter_leaf_entries()
            if self.memo.is_obsolete(entry.oid, entry.stamp)
        )

    def garbage_ratio(self, num_objects: int) -> float:
        """Obsolete entries over indexed objects (Section 3.3.1)."""
        if num_objects <= 0:
            return 0.0
        return self.garbage_count() / num_objects

    def memo_size_bytes(self) -> int:
        return self.memo.size_bytes()

    # ------------------------------------------------------------------
    # Crash simulation (Section 3.4)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose every volatile structure; the on-disk tree survives.

        The buffer is flushed first: the failure model of Section 3.4 is
        that *"UM is in main-memory ... when the system crashes, the data
        in UM is lost"* — the tree itself is durable.
        """
        self.buffer.flush()
        self.buffer.drop_volatile()
        self.memo.restore([])
        self.stamps.restore(0)
        self.cleaner.reset()
        self._updates_since_checkpoint = 0
