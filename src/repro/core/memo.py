"""The Update Memo (Section 3.1).

The UM is the RUM-tree's in-memory auxiliary structure distinguishing the
*latest* entry of an object from its *obsolete* entries.  It is a hash table
on the object identifier whose entries have the form ``(oid, S_latest,
N_old)``:

* ``S_latest`` — the stamp of the latest entry of ``oid``;
* ``N_old`` — the **maximum** number of obsolete entries for ``oid`` still
  in the tree ("maximum" because operations on non-existing objects create
  *phantom* entries whose count never drains; Section 3.3.2).

Objects guaranteed to have no obsolete entries own no UM entry at all —
that is what keeps the UM small (its size is bounded by the number of leaf
nodes over the inspection ratio, Section 4.1, not by the number of objects).

The memo is bucketised so that the concurrency experiment (Section 3.5) can
lock individual hash buckets.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import (
    TYPE_CHECKING,
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.concurrency.primitives import LockLike, make_lock
from repro.storage.wal import UM_ENTRY_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrency.racecheck import RaceChecker
    from repro.obs import Observability

#: CheckStatus results (Figure 6).
LATEST = "LATEST"
OBSOLETE = "OBSOLETE"


class UMEntry:
    """One Update-Memo entry ``(oid, S_latest, N_old)``."""

    __slots__ = ("oid", "s_latest", "n_old")

    def __init__(self, oid: int, s_latest: int, n_old: int):
        self.oid = oid
        self.s_latest = s_latest
        self.n_old = n_old

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.oid, self.s_latest, self.n_old)

    def __repr__(self) -> str:
        return f"UMEntry(oid={self.oid}, S_latest={self.s_latest}, N_old={self.n_old})"


class UpdateMemo:
    """Hash table on oid holding ``(oid, S_latest, N_old)`` entries."""

    def __init__(self, n_buckets: int = 64):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.n_buckets = n_buckets
        # Callers serialise per bucket: hold the bucket's lock (or an
        # equivalent exclusive section, e.g. the tree's structure
        # latch) around every probe and mutation of a bucket.
        self._buckets: List[Dict[int, UMEntry]] = [  # guarded-by: bucket_lock
            {} for _ in range(n_buckets)
        ]
        #: Per-bucket locks for the concurrency experiment (Section 3.5).
        self.bucket_locks: List[LockLike] = [
            make_lock() for _ in range(n_buckets)
        ]
        self._rc: Optional["RaceChecker"] = None
        #: Lifetime probe tallies, plain ints kept *unconditionally*:
        #: memo probes run up to once per leaf entry scanned, so even a
        #: ``None``-checked counter increment is measurable against the
        #: metrics-level overhead budget.  One bare integer add costs
        #: the same with or without observability; ``attach_obs``
        #: mirrors the tallies into lazy gauges.
        self.lookup_count = 0
        self.hit_count = 0
        self._obs_purge_runs = None
        self._obs_purged = None
        self._obs_inserts = None
        self._obs_obsoleted = None
        self._obs_cleaned = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry.

        Memo *size* (entries, bytes, aggregate ``N_old``) is exposed as
        callback gauges sampled at snapshot time; phantom purges — which
        run once per cleaning cycle — get counters.  The per-update
        mutation operations (``record_update``/``note_cleaned``) are
        counted too (the gap PR 2 left open): at ``metrics`` level each
        costs one ``None`` check plus an integer add, and at ``off`` the
        bound instruments are ``None`` so the disabled path keeps the
        single-check no-op guarantee that ``bench_micro``'s A/B run
        measures.  Lookups and hits fire once per *scanned leaf entry*,
        far too hot even for that pattern — they ride the unconditional
        plain-int tallies ``lookup_count``/``hit_count`` and surface as
        the lazy gauges ``memo.lookups``/``memo.hits`` (values count
        from memo construction, not from attach).
        """
        if obs is None or not obs.metrics_on:
            self._obs_purge_runs = self._obs_purged = None
            self._obs_inserts = self._obs_obsoleted = self._obs_cleaned = None
            return
        reg = obs.registry
        self._obs_purge_runs = reg.counter("memo.purge_runs")
        self._obs_purged = reg.counter("memo.purged_entries")
        self._obs_inserts = reg.counter("memo.inserts")
        self._obs_obsoleted = reg.counter("memo.obsoleted")
        self._obs_cleaned = reg.counter("memo.cleaned")
        reg.gauge("memo.lookups").set_function(
            lambda: float(self.lookup_count)
        )
        reg.gauge("memo.hits").set_function(lambda: float(self.hit_count))
        reg.gauge("memo.entries").set_function(self.__len__)
        reg.gauge("memo.bytes").set_function(self.size_bytes)
        reg.gauge("memo.total_n_old").set_function(self.total_n_old)

    def attach_racecheck(self, checker: Optional["RaceChecker"]) -> None:
        """Bind (or unbind) the Eraser race detector.

        Probe granularity is the hash bucket — the unit the paper locks
        (Section 3.5).  Whole-table operations (snapshot, restore,
        purge, size metrics) touch every bucket, so a lockless snapshot
        concurrent with a locked per-bucket write is still a race on
        that bucket's field.
        """
        self._rc = checker

    def _rc_bucket(self, oid: int, write: bool) -> None:
        checker = self._rc
        if checker is not None:
            checker.access(self, f"bucket[{oid % self.n_buckets}]", write)

    def _rc_all(self, write: bool) -> None:
        checker = self._rc
        if checker is not None:
            for index in range(self.n_buckets):
                checker.access(self, f"bucket[{index}]", write)

    def _bucket(self, oid: int) -> Dict[int, UMEntry]:  # holds: bucket_lock
        return self._buckets[oid % self.n_buckets]

    def bucket_lock(self, oid: int) -> LockLike:
        return self.bucket_locks[oid % self.n_buckets]

    # ------------------------------------------------------------------
    # The paper's memo operations
    # ------------------------------------------------------------------

    def record_update(self, oid: int, stamp: int) -> None:
        """Step 5 of MemoBasedInsert (Figure 4) — also used verbatim by
        MemoBasedDelete (Figure 5).

        If no entry exists a new ``(oid, stamp, 1)`` entry is inserted;
        otherwise ``S_latest`` becomes ``stamp`` and ``N_old`` grows by one
        (the former latest entry just became obsolete).
        """
        self._rc_bucket(oid, True)
        bucket = self._bucket(oid)
        entry = bucket.get(oid)
        if entry is None:
            bucket[oid] = UMEntry(oid, stamp, 1)
            if self._obs_inserts is not None:
                self._obs_inserts.inc()
        else:
            entry.s_latest = stamp
            entry.n_old += 1
            if self._obs_obsoleted is not None:
                self._obs_obsoleted.inc()

    def check_status(self, oid: int, stamp: int) -> str:
        """CheckStatus (Figure 6): classify a leaf entry as LATEST or
        OBSOLETE by comparing its stamp against ``S_latest``."""
        self._rc_bucket(oid, False)
        entry = self._bucket(oid).get(oid)
        self.lookup_count += 1
        if entry is None:
            return LATEST
        self.hit_count += 1
        return LATEST if stamp == entry.s_latest else OBSOLETE

    def is_obsolete(self, oid: int, stamp: int) -> bool:
        """Convenience predicate used by query filtering and the cleaner."""
        self._rc_bucket(oid, False)
        entry = self._bucket(oid).get(oid)
        self.lookup_count += 1
        if entry is None:
            return False
        self.hit_count += 1
        return stamp != entry.s_latest

    def note_cleaned(self, oid: int) -> None:
        """An obsolete entry of ``oid`` was physically removed: decrement
        ``N_old`` and drop the memo entry when it reaches zero (Figure 8,
        step 1b)."""
        self._rc_bucket(oid, True)
        bucket = self._bucket(oid)
        entry = bucket.get(oid)
        if entry is None:
            raise KeyError(
                f"cleaned an obsolete entry for oid {oid} with no UM entry"
            )
        # Count only cleans that actually drained an N_old — a KeyError
        # raised above means nothing was cleaned, so `memo.cleaned` must
        # not move (it reconciles against the cleaner's removal count).
        if self._obs_cleaned is not None:
            self._obs_cleaned.inc()
        entry.n_old -= 1
        if entry.n_old <= 0:
            del bucket[oid]

    # holds: bucket_lock
    def purge_phantoms(
        self, stamp_threshold: int, exclude: Optional[Set[int]] = None
    ) -> int:
        """Phantom inspection (Section 3.3.2, Lemma 1).

        After every leaf has been visited and cleaned once since the stamp
        counter read ``stamp_threshold``, any UM entry with ``S_latest <
        stamp_threshold`` can only be a phantom; remove them all.  Returns
        the number of entries purged.

        ``exclude`` names oids whose obsolete entries are known to have
        been relocated by node splits during the inspection cycle — their
        entries may genuinely still be in the tree, so the purge skips
        them (the cleaner shields them for one extra cycle).
        """
        self._rc_all(True)
        purged = 0
        for bucket in self._buckets:
            victims = [
                oid
                for oid, entry in bucket.items()
                if entry.s_latest < stamp_threshold
                and (exclude is None or oid not in exclude)
            ]
            for oid in victims:
                del bucket[oid]
            purged += len(victims)
        if self._obs_purge_runs is not None:
            self._obs_purge_runs.inc()
            self._obs_purged.inc(purged)
        return purged

    # ------------------------------------------------------------------
    # Lookup / snapshot / restore
    # ------------------------------------------------------------------

    def get(self, oid: int) -> Optional[UMEntry]:
        self._rc_bucket(oid, False)
        return self._bucket(oid).get(oid)

    def snapshot(self) -> List[Tuple[int, int, int]]:  # holds: bucket_lock
        """A stable copy of all entries (checkpointing, Section 3.4)."""
        self._rc_all(False)
        return [
            entry.as_tuple()
            for bucket in self._buckets
            for entry in bucket.values()
        ]

    # holds: bucket_lock
    def restore(self, entries: Iterator[Tuple[int, int, int]]) -> None:
        """Replace the whole memo content (crash recovery).

        Entries with ``n_old <= 0`` are dropped: a non-positive count can
        never be drained by ``note_cleaned`` (which deletes at zero) and
        ``purge_phantoms`` will not touch the entry while its ``S_latest``
        is recent, so restoring one would leak it forever.  A memo entry
        exists precisely to count obsolete entries — "no obsolete entries"
        is represented by *absence* (Section 3.1), never by a zero count.
        """
        self._rc_all(True)
        for bucket in self._buckets:
            bucket.clear()
        for oid, s_latest, n_old in entries:
            if n_old <= 0:
                continue
            self._bucket(oid)[oid] = UMEntry(oid, s_latest, n_old)

    # ------------------------------------------------------------------
    # Spill-tier hooks (overridden by SpillingUpdateMemo)
    # ------------------------------------------------------------------

    def latest_stamp(self, oid: int) -> Optional[int]:
        """``S_latest`` for ``oid``, or ``None`` when no entry exists.

        Semantically ``get(oid).s_latest`` with probe-tally accounting,
        but overridable by the disk-tiered memo as a *first-hit* probe:
        the newest record for ``oid`` already carries the latest stamp,
        so the probe can stop without aggregating ``N_old`` across runs.
        Hot callers (search filtering, the cleaner's CheckStatus) should
        prefer this over :meth:`get`.
        """
        self._rc_bucket(oid, False)
        entry = self._bucket(oid).get(oid)
        self.lookup_count += 1
        if entry is None:
            return None
        self.hit_count += 1
        return entry.s_latest

    def defer_spills(self) -> ContextManager[None]:
        """Context manager suspending budget-triggered spills.

        A no-op for the pure in-RAM memo.  The disk-tiered memo overrides
        it so a batch apply (PR 5) stages all its ``record_update`` calls
        in RAM and flushes at most one run at scope exit instead of
        spilling mid-batch.
        """
        return nullcontext()

    # ------------------------------------------------------------------
    # Size metrics (Figures 12d/13d/14d)
    # ------------------------------------------------------------------

    def __len__(self) -> int:  # holds: bucket_lock
        return sum(len(bucket) for bucket in self._buckets)

    def size_bytes(self) -> int:
        """Memo size using the paper's per-entry footprint ``E``."""
        return len(self) * UM_ENTRY_BYTES

    def total_n_old(self) -> int:  # holds: bucket_lock
        """Sum of ``N_old`` — an upper bound on obsolete entries in the tree."""
        return sum(
            entry.n_old
            for bucket in self._buckets
            for entry in bucket.values()
        )

    def __iter__(self) -> Iterator[UMEntry]:  # holds: bucket_lock
        for bucket in self._buckets:
            yield from bucket.values()
