"""The RUM-tree garbage cleaner (Section 3.3).

Obsolete entries are removed *lazily and in batches* by cleaning tokens:
logical tokens that traverse the circular doubly-linked ring of leaf nodes.
Every ``inspection_interval`` updates each token inspects the leaf it sits
on, deletes the obsolete entries found there, adjusts the ancestors'
MBRs (or reinserts the survivors if the leaf underflows, Figure 8), and
moves to the next leaf in the ring.

With ``m`` tokens of interval ``I`` the *inspection ratio* — leaf nodes
inspected per processed update — is ``ir = m / I`` (Equation 1), the knob
swept in Figure 10.  The cleaner is configured by ``ir`` directly and
realises fractional ratios exactly by accumulating step credit across
updates, stepping its tokens round-robin.

The cleaner also drives **phantom inspection** (Section 3.3.2): the stamp
counter is sampled when a designated token starts a ring cycle, and after
the token completes the cycle every memo entry whose ``S_latest`` precedes
the sample can only be a phantom (Lemma 1) and is purged.  Three guards
keep the purge sound under structural churn: oids whose obsolete entries
were relocated by a leaf split are shielded from the purge for one extra
cycle (``protect_from_purge``); a cycle only counts as complete after the
token has taken at least as many steps as the ring had leaves when the
cycle started; and a cycle whose start page was dissolved mid-cycle is
*tainted* — its completion restarts the marker pipeline instead of
purging, because the re-homed boundary leaf may not have been visited.
``phantom_lag_cycles`` can hold each sample for extra cycles as
additional safety margin.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

    from .rum import RUMTree


class CleaningToken:
    """State of one cleaning token walking the leaf ring."""

    __slots__ = (
        "position",
        "cycle_start",
        "pending_markers",
        "steps_in_cycle",
        "min_cycle_steps",
        "tainted",
        "cycle_started_at",
        "cycle_io",
    )

    def __init__(self, position: int, min_cycle_steps: int = 1):
        self.position = position
        self.cycle_start = position
        #: Stamp-counter samples awaiting cycle completions (newest last).
        self.pending_markers: List[int] = []
        #: Set when the cycle-start page is dissolved mid-cycle: the
        #: re-homed boundary leaf is not guaranteed to have been visited,
        #: so a tainted cycle must not drive a phantom purge.
        self.tainted = False
        #: Steps taken since the cycle started and the leaf count observed
        #: at that moment.  A cycle only completes once the token both
        #: returns to its start *and* has taken at least that many steps;
        #: without the step floor, a condensation that re-homes the start
        #: page next to the token would complete a "cycle" after a couple
        #: of steps and fire phantom inspection unsoundly.
        self.steps_in_cycle = 0
        self.min_cycle_steps = max(1, min_cycle_steps)
        #: Wall-clock start of the current ring cycle (telemetry only;
        #: wall time is the meaningful unit because token steps are
        #: interleaved with the update stream that drives them).
        self.cycle_started_at = time.perf_counter()
        #: I/O charged by this token's steps in the current cycle (the 8
        #: IOStats fields in declaration order), accumulated per step only
        #: while a flight recorder is attached.  Cycle records thus carry
        #: the cleaning cost alone, not the interleaved update stream's.
        self.cycle_io = [0] * 8


class GarbageCleaner:
    """Token-based lazy batch deletion of obsolete entries.

    Parameters
    ----------
    tree:
        The owning RUM-tree.
    n_tokens:
        Number of cleaning tokens working in parallel (Figure 7).
    inspection_ratio:
        ``ir`` — leaf nodes inspected per processed update, in aggregate
        over all tokens (each token's interval is ``n_tokens / ir``).
    phantom_inspection:
        Enable periodic purging of phantom memo entries.
    phantom_lag_cycles:
        How many completed cycles a stamp sample must age before the purge
        uses it (1 = the paper's rule; see module docstring).
    """

    def __init__(
        self,
        tree: "RUMTree",
        n_tokens: int = 1,
        inspection_ratio: float = 0.2,
        phantom_inspection: bool = True,
        phantom_lag_cycles: int = 1,
    ):
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        if inspection_ratio < 0:
            raise ValueError("inspection_ratio must be non-negative")
        if phantom_lag_cycles < 1:
            raise ValueError("phantom_lag_cycles must be at least 1")
        self.tree = tree
        self.n_tokens = n_tokens if inspection_ratio > 0 else 0
        self.inspection_ratio = inspection_ratio if n_tokens > 0 else 0.0
        self.phantom_inspection = phantom_inspection
        self.phantom_lag_cycles = phantom_lag_cycles
        self.tokens: List[CleaningToken] = []
        self._step_credit = 0.0
        self._next_token = 0
        # Oids whose obsolete entries were relocated by a leaf split and
        # may therefore sit behind a token: shielded from phantom purging
        # until a further full cycle has passed over them.
        self._purge_shield_current: Set[int] = set()
        self._purge_shield_previous: Set[int] = set()
        self.updates_seen = 0
        self.leaves_inspected = 0
        self.entries_removed = 0
        self.phantoms_purged = 0
        self.cycles_completed = 0
        self._obs = None
        self._obs_steps = None
        self._obs_removed = None
        self._obs_cycles = None
        self._obs_cycle_ms = None
        self._obs_recorder = None

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry: token steps, entries cleaned, cycle counts and
        wall-clock cycle durations; per-step events at the ``debug``
        level, one ``cleaner.cycle`` event per completed ring pass, and
        one ``cleaner_cycle`` flight-recorder record carrying the cycle's
        own accumulated step I/O."""
        if obs is None or not obs.enabled:
            self._obs = None
            self._obs_steps = self._obs_removed = None
            self._obs_cycles = self._obs_cycle_ms = None
            self._obs_recorder = None
            return
        self._obs = obs
        self._obs_recorder = obs.recorder
        if obs.metrics_on:
            reg = obs.registry
            self._obs_steps = reg.counter("cleaner.token_steps")
            self._obs_removed = reg.counter("cleaner.entries_removed")
            self._obs_cycles = reg.counter("cleaner.cycles")
            self._obs_cycle_ms = reg.histogram(
                "cleaner.cycle_ms",
                (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0),
            )
            reg.gauge("cleaner.tokens").set_function(
                lambda: len(self.tokens)
            )
            reg.gauge("cleaner.updates_seen").set_function(
                lambda: self.updates_seen
            )

    # ------------------------------------------------------------------

    @property
    def inspection_interval(self) -> float:
        """``I`` — updates between two steps of the same token, derived
        from the inspection ratio (Equation 1: ``ir = m / I``)."""
        if self.inspection_ratio <= 0:
            return float("inf")
        return self.n_tokens / self.inspection_ratio

    def on_update(self) -> None:
        """Called by the tree once per processed insert/update/delete.

        Fractional inspection ratios are realised exactly by accumulating
        step credit: ``ir`` leaf inspections are performed per update on
        average, rotating through the tokens round-robin.
        """
        self.on_batch(1)

    def on_batch(self, n_updates: int) -> None:
        """Account ``n_updates`` processed updates in one call.

        Equivalent to ``n_updates`` calls of :meth:`on_update` — the same
        step credit accrues (to within one float rounding: one multiply
        here vs ``n`` additions there) and the same token steps run — but
        the bookkeeping is paid once and the steps execute back to back
        at the end of the batch instead of interleaved with it.  Inside a
        buffer batch scope the steps' page writes then coalesce with the
        batch's own writeback.
        """
        if self.n_tokens == 0 or self.inspection_ratio <= 0 or n_updates <= 0:
            return
        self.updates_seen += n_updates
        self._step_credit += self.inspection_ratio * n_updates
        while self._step_credit >= 1.0:
            self._step_credit -= 1.0
            if not self.tokens:
                self._spawn_tokens()
            token = self.tokens[self._next_token % len(self.tokens)]
            self._next_token += 1
            self._step(token)

    def _spawn_tokens(self) -> None:
        """Place the tokens on the ring, spread as evenly as it allows."""
        ring = self._ring_pages()
        for k in range(self.n_tokens):
            start = ring[(k * len(ring)) // self.n_tokens]
            token = CleaningToken(start, min_cycle_steps=len(ring))
            if self.phantom_inspection and k == 0:
                token.pending_markers.append(self.tree.stamps.current)
            self.tokens.append(token)

    def _ring_pages(self) -> List[int]:
        """Current leaf ring as a page-id list (no I/O charged: the walk
        uses the tree's uncounted introspection path)."""
        first = next(self.tree.iter_leaf_nodes()).page_id
        pages = [first]
        node = self.tree._peek_node(first)
        while node.next_leaf != first:
            pages.append(node.next_leaf)
            node = self.tree._peek_node(node.next_leaf)
        return pages

    # ------------------------------------------------------------------

    def _step(self, token: CleaningToken) -> None:
        """Clean the token's current leaf and pass the token on (Figure 8)."""
        tree = self.tree
        rec = self._obs_recorder
        if rec is not None:
            s = tree.stats
            io_before = (
                s.leaf_reads, s.leaf_writes, s.internal_reads,
                s.internal_writes, s.index_reads, s.index_writes,
                s.log_writes, s.log_reads,
            )
        with tree.buffer.operation():
            leaf = tree.buffer.get_node(token.position)
            # Advance before mutating the tree: if the cleaning dissolves
            # the successor leaf, the dissolution hook re-homes the token.
            token.position = leaf.next_leaf
            token.steps_in_cycle += 1
            removed = tree.clean_leaf(leaf)
            self.leaves_inspected += 1
            self.entries_removed += removed
            if self._obs_steps is not None:
                self._obs_steps.inc()
                if removed:
                    self._obs_removed.inc(removed)
            if self._obs is not None and self._obs.debug:
                self._obs.event(
                    "cleaner.step",
                    page=leaf.page_id,
                    removed=removed,
                    step=token.steps_in_cycle,
                )
            if removed:
                if (
                    len(leaf.entries) < tree.min_leaf
                    and leaf.page_id != tree.root_id
                ):
                    # Underflow: dissolve the leaf and reinsert the
                    # survivors (step 2 of Figure 8).  The dissolution hook
                    # re-homes any token parked on this page.
                    tree._condense(leaf)
                else:
                    tree._adjust_upward(leaf)
        if rec is not None:
            s = tree.stats
            c = token.cycle_io
            c[0] += s.leaf_reads - io_before[0]
            c[1] += s.leaf_writes - io_before[1]
            c[2] += s.internal_reads - io_before[2]
            c[3] += s.internal_writes - io_before[3]
            c[4] += s.index_reads - io_before[4]
            c[5] += s.index_writes - io_before[5]
            c[6] += s.log_writes - io_before[6]
            c[7] += s.log_reads - io_before[7]
        self._check_cycle(token)

    def _check_cycle(self, token: CleaningToken) -> None:
        if (
            token.position != token.cycle_start
            or token.steps_in_cycle < token.min_cycle_steps
        ):
            return
        self.cycles_completed += 1
        cycle_steps = token.steps_in_cycle
        token.steps_in_cycle = 0
        token.min_cycle_steps = max(1, self.tree.num_leaf_nodes())
        tainted = token.tainted
        token.tainted = False
        if self._obs is not None:
            now = time.perf_counter()
            cycle_ms = (now - token.cycle_started_at) * 1000.0
            token.cycle_started_at = now
            if self._obs_cycles is not None:
                self._obs_cycles.inc()
                self._obs_cycle_ms.observe(cycle_ms)
            if self._obs_recorder is not None:
                self._obs_recorder.record(
                    "cleaner_cycle",
                    self.tree.name,
                    cycle_ms / 1000.0,
                    tuple(token.cycle_io),
                    0,
                    0,
                    "-",
                )
                token.cycle_io = [0] * 8
            self._obs.event(
                "cleaner.cycle",
                token=self.tokens.index(token),
                steps=cycle_steps,
                dur_ms=cycle_ms,
                tainted=tainted,
                entries_removed_total=self.entries_removed,
                memo_entries=len(self.tree.memo),
            )
        if not self.phantom_inspection or token is not self._marker_token():
            return
        if tainted:
            # The cycle-start page was dissolved mid-cycle; the re-homed
            # boundary leaf may not have been visited, so Lemma 1 does not
            # apply to the pending samples.  Restart the marker pipeline —
            # purging is merely delayed by one clean cycle.
            token.pending_markers = [self.tree.stamps.current]
            return
        token.pending_markers.append(self.tree.stamps.current)
        if len(token.pending_markers) > self.phantom_lag_cycles:
            marker = token.pending_markers.pop(0)
            shielded = self._purge_shield_current | self._purge_shield_previous
            purged = self.tree.memo.purge_phantoms(marker, exclude=shielded)
            self.phantoms_purged += purged
            if self._obs is not None and purged:
                self._obs.event(
                    "cleaner.phantom_purge",
                    marker=marker,
                    purged=purged,
                    shielded=len(shielded),
                )
        # Entries relocated during the completed cycle get swept by the
        # next one; rotating the shields retires them after that.
        self._purge_shield_previous = self._purge_shield_current
        self._purge_shield_current = set()

    def _marker_token(self) -> Optional[CleaningToken]:
        return self.tokens[0] if self.tokens else None

    # ------------------------------------------------------------------

    def on_leaf_dissolved(
        self, page_id: int, successor: int, predecessor: int
    ) -> None:
        """A leaf left the ring: re-home any token state referring to it.

        A token's *position* moves forward (the successor is what it must
        visit next), but a *cycle start* moves backward to the predecessor:
        moving it forward could place it exactly where the token stands and
        complete the cycle after a single step, which would both starve the
        cleaning sweep and fire phantom inspection far too early.
        """
        for token in self.tokens:
            if token.position == page_id:
                token.position = successor
            if token.cycle_start == page_id:
                token.cycle_start = (
                    predecessor if predecessor != page_id else successor
                )
                token.tainted = True

    def run_full_cycle(self) -> int:
        """Force a complete ring pass of token 0 *now* (tests and the
        recovery experiments use this to realise Property 1
        deterministically).  Returns the number of entries removed."""
        if not self.tokens:
            self._spawn_tokens()
        if not self.tokens:
            return 0
        token = self.tokens[0]
        removed_before = self.entries_removed
        token.cycle_start = token.position
        token.steps_in_cycle = 0
        token.min_cycle_steps = max(1, self.tree.num_leaf_nodes())
        completed = self.cycles_completed
        # The ring may shrink or grow while we walk; the guard bounds the
        # walk without affecting the completion condition.
        guard = token.min_cycle_steps * 4 + 16
        for _ in range(guard):
            self._step(token)
            if self.cycles_completed > completed:
                break
        return self.entries_removed - removed_before

    def protect_from_purge(self, oid: int) -> None:
        """Shield ``oid`` from phantom purging for at least one full
        cycle (called when a split relocates one of its obsolete
        entries; see ``RUMTree._on_leaf_split``)."""
        self._purge_shield_current.add(oid)

    def reset(self) -> None:
        """Drop all token state (crash simulation: tokens are volatile)."""
        self.tokens.clear()
        self.updates_seen = 0
        self._step_credit = 0.0
        self._next_token = 0
        self._purge_shield_current = set()
        self._purge_shield_previous = set()
