"""The paper's contribution: the RUM-tree and its supporting machinery.

* :class:`~repro.core.rum.RUMTree` — memo-based insert/update/delete/search;
* :class:`~repro.core.memo.UpdateMemo` — the in-memory Update Memo;
* :class:`~repro.core.stamp.StampCounter` — global stamp assignment;
* :class:`~repro.core.cleaner.GarbageCleaner` — cleaning tokens,
  clean-upon-touch, phantom inspection;
* :mod:`~repro.core.recovery` — crash-recovery options I/II/III.
"""

from .cleaner import CleaningToken, GarbageCleaner
from .memo import LATEST, OBSOLETE, UMEntry, UpdateMemo
from .recovery import (
    RECOVERY_PROCEDURES,
    RecoveryReport,
    recover_option_i,
    recover_option_ii,
    recover_option_iii,
)
from .rum import (
    RECOVERY_CHECKPOINT,
    RECOVERY_FULL_LOG,
    RECOVERY_NONE,
    RUMTree,
)
from .stamp import StampCounter

__all__ = [
    "RUMTree",
    "UpdateMemo",
    "UMEntry",
    "LATEST",
    "OBSOLETE",
    "StampCounter",
    "GarbageCleaner",
    "CleaningToken",
    "RecoveryReport",
    "recover_option_i",
    "recover_option_ii",
    "recover_option_iii",
    "RECOVERY_PROCEDURES",
    "RECOVERY_NONE",
    "RECOVERY_CHECKPOINT",
    "RECOVERY_FULL_LOG",
]
