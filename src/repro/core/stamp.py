"""The RUM-tree's global stamp counter (Section 3.1).

Every leaf entry receives a stamp when it enters the tree.  Stamps are
globally unique and monotonically increasing, placing a temporal order on
all entries of one object: the entry with the largest stamp is the *latest*
entry, every other entry is *obsolete*.

The counter is volatile (it lives with the Update Memo in main memory) and
is recovered after a crash either from a checkpoint or by scanning the leaf
entries (Section 3.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.concurrency.primitives import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concurrency.racecheck import RaceChecker


class StampCounter:
    """Monotonic counter handing out globally unique stamps.

    Thread-safe: the concurrency experiment (Section 3.5) treats the
    counter as a lockable resource; here the lock is built in.  Every
    access to the counter value — including the ``current`` snapshot
    and ``repr`` — takes the lock; the lock is a pure latch (held for
    an increment, never across I/O — rule REP014).
    """

    def __init__(self, start: int = 1):
        if start < 0:
            raise ValueError("stamp counter cannot start negative")
        self._value = start  # guarded-by: _lock
        self._lock = make_lock()
        self._rc: Optional["RaceChecker"] = None

    def attach_racecheck(self, checker: Optional["RaceChecker"]) -> None:
        """Bind (or unbind) the Eraser race detector."""
        self._rc = checker

    def next(self) -> int:
        """Return the next stamp and advance the counter."""
        with self._lock:
            if self._rc is not None:
                self._rc.access(self, "_value", write=True)
            stamp = self._value
            self._value += 1
            return stamp

    @property
    def current(self) -> int:
        """The next stamp that would be handed out (not yet consumed)."""
        with self._lock:
            if self._rc is not None:
                self._rc.access(self, "_value", write=False)
            return self._value

    def restore(self, value: int) -> None:
        """Reset the counter after crash recovery.

        ``value`` must be at least the current value observed during the
        recovery scan, otherwise stamp uniqueness would break.
        """
        if value < 0:
            raise ValueError("cannot restore a negative stamp counter")
        with self._lock:
            if self._rc is not None:
                self._rc.access(self, "_value", write=True)
            self._value = value

    def __repr__(self) -> str:
        return f"StampCounter(next={self.current})"
