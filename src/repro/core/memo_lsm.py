"""LSM-tiered disk-resident Update Memo.

The paper's Update Memo (Section 3.1) is a pure in-RAM hash, which caps
the index at memo-fits-in-memory scale.  :class:`SpillingUpdateMemo`
removes that cap the way the same authors' successor work ("An
Update-intensive LSM-based R-tree Index", PAPERS.md) does: when the
in-RAM table crosses a configurable byte budget it is spilled to an
immutable *run* — a file of records sorted by oid — and probes consult
the RAM table first, then the runs from newest to oldest.  Size-tiered
compaction keeps the run count logarithmic, and a per-run Bloom filter
plus page fence pointers keep the hot ``check_status``/``is_obsolete``
probes at ~O(1) page reads ("Dynamic Indexability", Yi — PAPERS.md,
formalises exactly this lookup/ingest dial).

Record semantics
----------------

A memo entry is logically ``(oid, S_latest, N_old)``.  Because spilled
tiers are immutable, the tiers hold *tagged* records that aggregate to
that entry:

* ``DELTA(stamp, d)`` — ``d >= 1`` updates happened; adds ``d`` to
  ``N_old``; written by ``record_update`` without reading older tiers,
  which keeps updates at the paper's O(1) no-I/O cost.
* ``ABSOLUTE(stamp, n)`` — ``N_old`` is exactly ``n`` (``n >= 1``) as of
  this record; older records for the oid are superseded.  Written by
  ``note_cleaned`` (which must read the total anyway) and by restore /
  phantom purge.
* ``TOMBSTONE(stamp)`` — the entry does not exist; masks older records.
  Written when a clean drains ``N_old`` to zero while older runs may
  still hold records for the oid.

A probe walks RAM then runs newest→oldest, summing ``DELTA`` values
until an ``ABSOLUTE``/``TOMBSTONE`` base (or tier exhaustion) settles
the total.  The *first* record found already carries ``S_latest``, so
the search-path probes stop there — one Bloom-screened page read.

On-disk format
--------------

Run file (all little-endian)::

    header   <8sQqqII  magic, record count, min oid, max oid,
                        bloom bits (m), bloom hashes (k)
    bloom    m/8 bytes
    records  count x <qqiB3x  (oid, stamp, n, tag) sorted by oid
    footer   <I  CRC-32 of everything above

The manifest (``memo.manifest``) is the authoritative age-ordered run
list (oldest first), JSON + CRC line, replaced atomically via the PR 3
temp-file + fsync + ``os.replace`` pattern.  A run becomes part of the
memo only when the manifest names it; crash recovery therefore reduces
to: drop a leftover manifest temp file, validate every named run
(magic, size, CRC — :class:`MemoCorruptionError` on damage), and unlink
orphan run files from interrupted flushes or compactions.  The fault
points ``memo.run_flush``, ``memo.compact`` and ``memo.manifest``
(:mod:`repro.storage.faults`) let the crash matrix kill the process
model inside each of those windows.

Run I/O is charged to ``IOStats.memo_reads``/``memo_writes`` at 4 KiB
page granularity, so the spilled memo shows up in ``counted_total`` and
the flight recorder like every other disk structure.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from bisect import bisect_right
from contextlib import contextmanager
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    ContextManager,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.storage.faults import SimulatedCrash, corrupt_page
from repro.storage.wal import UM_ENTRY_BYTES

from .memo import LATEST, OBSOLETE, UMEntry, UpdateMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.storage.faults import FaultInjector
    from repro.storage.iostats import IOStats

#: Record tags (see module docstring).
DELTA = 0
ABSOLUTE = 1
TOMBSTONE = 2

MAGIC = b"RUMMEMO1"
_HEADER = struct.Struct("<8sQqqII")
_RECORD = struct.Struct("<qqiB3x")
_FOOTER = struct.Struct("<I")

#: I/O is charged at this page granularity (reads and writes).
PAGE_BYTES = 4096
_RECORDS_PER_PAGE = PAGE_BYTES // _RECORD.size

#: Bloom sizing: ~1% false-positive rate at 10 bits/key with 7 hashes.
BLOOM_BITS_PER_KEY = 10
BLOOM_K = 7

MANIFEST_FILE = "memo.manifest"
MANIFEST_TMP_FILE = "memo.manifest.tmp"
RUN_SUFFIX = ".run"

#: Spill when the RAM table exceeds this many bytes (paper footprint
#: ``E`` per entry).  1 MiB ~= 43k entries.
DEFAULT_SPILL_BUDGET = 1 << 20

#: Merge an age-contiguous group once this many runs share a size tier.
DEFAULT_COMPACT_THRESHOLD = 4


class MemoCorruptionError(RuntimeError):
    """A memo run or manifest failed validation (CRC/magic/size)."""


_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """Deterministic 64-bit finalizer (splitmix64-style) for Bloom
    hashing — no process-seeded ``hash()``, so run files are stable
    across interpreter runs (REP004 discipline)."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


def _bloom_build(oids: List[int], m_bits: int, k: int) -> bytearray:
    bloom = bytearray(m_bits // 8)
    for oid in oids:
        h1 = _mix64(oid)
        h2 = _mix64(oid ^ 0x9E3779B97F4A7C15) | 1
        for i in range(k):
            bit = (h1 + i * h2) % m_bits
            bloom[bit >> 3] |= 1 << (bit & 7)
    return bloom


def _bloom_maybe(bloom: bytes, m_bits: int, k: int, oid: int) -> bool:
    h1 = _mix64(oid)
    h2 = _mix64(oid ^ 0x9E3779B97F4A7C15) | 1
    for i in range(k):
        bit = (h1 + i * h2) % m_bits
        if not bloom[bit >> 3] & (1 << (bit & 7)):
            return False
    return True


def _bloom_m_bits(n_keys: int) -> int:
    """Bloom size in bits: ``BLOOM_BITS_PER_KEY`` per key, rounded up
    to a whole byte, never below 64 bits."""
    return max(64, ((n_keys * BLOOM_BITS_PER_KEY + 7) // 8) * 8)


#: One tagged record: (oid, stamp, n, tag).
_Rec = Tuple[int, int, int, int]


class _Run:
    """One immutable sorted run: RAM-resident Bloom + fence pointers,
    disk-resident records probed one page at a time."""

    __slots__ = (
        "path", "count", "min_oid", "max_oid", "m_bits", "k",
        "bloom", "fences", "_records_off", "_fh",
    )

    def __init__(
        self,
        path: Path,
        count: int,
        min_oid: int,
        max_oid: int,
        m_bits: int,
        k: int,
        bloom: bytes,
        fences: List[int],
    ) -> None:
        self.path = path
        self.count = count
        self.min_oid = min_oid
        self.max_oid = max_oid
        self.m_bits = m_bits
        self.k = k
        self.bloom = bloom
        self.fences = fences
        self._records_off = _HEADER.size + len(bloom)
        self._fh: Optional[object] = None

    # -- construction ------------------------------------------------------

    @staticmethod
    def encode(records: List[_Rec]) -> bytes:
        """Serialise sorted records into a complete run image."""
        count = len(records)
        oids = [r[0] for r in records]
        m_bits = _bloom_m_bits(count)
        bloom = _bloom_build(oids, m_bits, BLOOM_K)
        parts = [
            _HEADER.pack(MAGIC, count, oids[0], oids[-1], m_bits, BLOOM_K),
            bytes(bloom),
        ]
        parts.extend(_RECORD.pack(*r) for r in records)
        payload = b"".join(parts)
        return payload + _FOOTER.pack(zlib.crc32(payload))

    @classmethod
    def from_records(cls, path: Path, records: List[_Rec]) -> "_Run":
        """Describe a freshly flushed run without re-reading the file."""
        oids = [r[0] for r in records]
        m_bits = _bloom_m_bits(len(records))
        return cls(
            path=path,
            count=len(records),
            min_oid=oids[0],
            max_oid=oids[-1],
            m_bits=m_bits,
            k=BLOOM_K,
            bloom=bytes(_bloom_build(oids, m_bits, BLOOM_K)),
            fences=oids[::_RECORDS_PER_PAGE],
        )

    @classmethod
    def load(cls, path: Path) -> "_Run":
        """Open and fully validate an existing run (magic, size, CRC),
        rebuilding the fence pointers from the record bytes.

        Raises :class:`MemoCorruptionError` on any damage — a run named
        by the manifest was fsynced before the manifest pointed at it,
        so a bad image here is real corruption, never a torn flush.
        """
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise MemoCorruptionError(
                f"memo run {path.name} named by the manifest is missing"
            ) from None
        if len(data) < _HEADER.size + _FOOTER.size:
            raise MemoCorruptionError(
                f"memo run {path.name} truncated ({len(data)} bytes)"
            )
        magic, count, min_oid, max_oid, m_bits, k = _HEADER.unpack_from(data)
        if magic != MAGIC:
            raise MemoCorruptionError(
                f"memo run {path.name} has bad magic {magic!r}"
            )
        expected = _HEADER.size + m_bits // 8 + count * _RECORD.size
        if len(data) != expected + _FOOTER.size:
            raise MemoCorruptionError(
                f"memo run {path.name} size mismatch: "
                f"{len(data)} != {expected + _FOOTER.size}"
            )
        (crc,) = _FOOTER.unpack_from(data, expected)
        if zlib.crc32(data[:expected]) != crc:
            raise MemoCorruptionError(
                f"memo run {path.name} failed its CRC check"
            )
        records_off = _HEADER.size + m_bits // 8
        fences = [
            _RECORD.unpack_from(data, records_off + i * _RECORD.size)[0]
            for i in range(0, count, _RECORDS_PER_PAGE)
        ]
        return cls(
            path=path,
            count=count,
            min_oid=min_oid,
            max_oid=max_oid,
            m_bits=m_bits,
            k=k,
            bloom=data[_HEADER.size:records_off],
            fences=fences,
        )

    # -- probing -----------------------------------------------------------

    def maybe_contains(self, oid: int) -> bool:
        """RAM-only screen: key range then Bloom filter — no I/O."""
        if oid < self.min_oid or oid > self.max_oid:
            return False
        return _bloom_maybe(self.bloom, self.m_bits, self.k, oid)

    def _file(self):  # lazy, kept open across probes
        if self._fh is None:
            self._fh = open(self.path, "rb")
        return self._fh

    def probe_page(self, oid: int) -> Optional[_Rec]:
        """Read the one fence-selected page and binary-search it.

        Caller has already passed :meth:`maybe_contains`; this is the
        1-page-read step (the Bloom false-positive case returns ``None``
        after paying that read).
        """
        page = bisect_right(self.fences, oid) - 1
        if page < 0:
            return None
        start = page * _RECORDS_PER_PAGE
        n = min(self.count - start, _RECORDS_PER_PAGE)
        fh = self._file()
        fh.seek(self._records_off + start * _RECORD.size)
        buf = fh.read(n * _RECORD.size)
        lo, hi = 0, n - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            rec = _RECORD.unpack_from(buf, mid * _RECORD.size)
            if rec[0] == oid:
                return (rec[0], rec[1], rec[2], rec[3])
            if rec[0] < oid:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def iter_records(self) -> Iterator[_Rec]:
        """All records in oid order (merged scans; unvalidated)."""
        fh = self._file()
        fh.seek(self._records_off)
        remaining = self.count
        while remaining > 0:
            n = min(remaining, _RECORDS_PER_PAGE)
            buf = fh.read(n * _RECORD.size)
            for i in range(n):
                rec = _RECORD.unpack_from(buf, i * _RECORD.size)
                yield (rec[0], rec[1], rec[2], rec[3])
            remaining -= n

    def read_validated(self) -> List[_Rec]:
        """All records, with the full-file CRC re-checked first.

        Compaction uses this instead of :meth:`iter_records`: its output
        *replaces* the inputs, so silently merging a bit-rotted run
        would launder the damage into a freshly checksummed file.
        Raises :class:`MemoCorruptionError` so the rot is surfaced at
        the merge instead.
        """
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        data = self.path.read_bytes()
        body_len = len(data) - _FOOTER.size
        if body_len < _HEADER.size:
            raise MemoCorruptionError(
                f"memo run {self.path.name} truncated ({len(data)} bytes)"
            )
        (crc,) = _FOOTER.unpack_from(data, body_len)
        if zlib.crc32(data[:body_len]) != crc:
            raise MemoCorruptionError(
                f"memo run {self.path.name} failed its CRC check"
            )
        return [
            _RECORD.unpack_from(data, self._records_off + i * _RECORD.size)
            for i in range(self.count)
        ]

    @property
    def pages(self) -> int:
        """Record pages in this run (the unit reads are charged in)."""
        return (self.count + _RECORDS_PER_PAGE - 1) // _RECORDS_PER_PAGE

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class SpillingUpdateMemo(UpdateMemo):
    """Update Memo with an LSM-tiered disk-resident overflow.

    Drop-in for :class:`UpdateMemo`: same operations, same probe-tally
    and instrument contract, bit-identical ``check_status`` answers (the
    hypothesis equivalence suite in ``tests/test_memo_lsm.py`` holds it
    to that).  The RAM tier stays under ``spill_budget`` bytes — crossing
    it flushes the table as a sorted run and empties RAM.

    Not for the lock-striped concurrency experiment: a spill touches
    every bucket, which the per-bucket lock discipline cannot cover.
    """

    def __init__(
        self,
        directory: str,
        n_buckets: int = 64,
        spill_budget: int = DEFAULT_SPILL_BUDGET,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        stats: Optional["IOStats"] = None,
        faults: Optional["FaultInjector"] = None,
    ):
        super().__init__(n_buckets=n_buckets)
        if spill_budget <= 0:
            raise ValueError("spill_budget must be positive")
        if compact_threshold < 2:
            raise ValueError("compact_threshold must be at least 2")
        self.spill_budget = spill_budget
        self.compact_threshold = compact_threshold
        self.stats = stats
        self.faults = faults
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: RAM tier: bucketised tagged records (tag, stamp, n).
        # Spill-tier state is *not* lock-striped (a spill touches every
        # bucket): callers serialise behind the owning tree's structure
        # latch, or use the memo single-threaded.
        self._ram: List[Dict[int, Tuple[int, int, int]]] = [  # guarded-by: latch
            {} for _ in range(n_buckets)
        ]
        self._ram_count = 0
        self._defer = 0
        self._runs: List[_Run] = []  # guarded-by: latch (age order: oldest first)
        self._next_seq = 1
        #: Lifetime probe tallies (plain ints, same discipline as
        #: ``lookup_count``): run pages read by probes, and how many of
        #: those were Bloom false positives.
        self.run_probe_count = 0
        self.bloom_fp_count = 0
        self._obs_spills = None
        self._obs_compactions = None
        self._obs_run_probes = None
        self._obs_bloom_fp = None
        self._recover()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind telemetry: everything the base memo binds, plus the
        spill tier — ``memo.spills``/``memo.compactions`` counters,
        ``memo.run_probes``/``memo.bloom_fp`` probe counters (mirroring
        the plain tallies, values since construction), and ``memo.runs``/
        ``memo.ram_bytes`` gauges for the tier shape."""
        super().attach_obs(obs)
        if obs is None or not obs.metrics_on:
            self._obs_spills = self._obs_compactions = None
            self._obs_run_probes = self._obs_bloom_fp = None
            return
        reg = obs.registry
        self._obs_spills = reg.counter("memo.spills")
        self._obs_compactions = reg.counter("memo.compactions")
        self._obs_run_probes = reg.counter("memo.run_probes")
        self._obs_bloom_fp = reg.counter("memo.bloom_fp")
        reg.gauge("memo.runs").set_function(lambda: float(len(self._runs)))
        reg.gauge("memo.ram_bytes").set_function(
            lambda: float(self.ram_size_bytes())
        )

    # ------------------------------------------------------------------
    # I/O charging (4 KiB page granularity)
    # ------------------------------------------------------------------

    def _charge_write_bytes(self, nbytes: int) -> None:
        if self.stats is not None:
            self.stats.memo_writes += max(
                1, (nbytes + PAGE_BYTES - 1) // PAGE_BYTES
            )

    def _charge_read_pages(self, pages: int) -> None:
        if self.stats is not None:
            self.stats.memo_reads += pages

    # ------------------------------------------------------------------
    # RAM tier helpers
    # ------------------------------------------------------------------

    def _ram_bucket(self, oid: int) -> Dict[int, Tuple[int, int, int]]:  # holds: latch
        return self._ram[oid % self.n_buckets]

    def _ram_set(self, oid: int, rec: Tuple[int, int, int]) -> None:
        bucket = self._ram_bucket(oid)
        if oid not in bucket:
            self._ram_count += 1
        bucket[oid] = rec

    def ram_size_bytes(self) -> int:
        """Bytes held by the RAM tier — bounded by ``spill_budget``
        outside a ``defer_spills`` scope."""
        return self._ram_count * UM_ENTRY_BYTES

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def _probe_runs_first(self, oid: int) -> Optional[Tuple[int, int, int]]:  # holds: latch
        """Newest record for ``oid`` across runs (newest→oldest), or
        ``None``.  Charges one page read per Bloom-passed run."""
        for run in reversed(self._runs):
            if not run.maybe_contains(oid):
                continue
            self._charge_read_pages(1)
            self.run_probe_count += 1
            if self._obs_run_probes is not None:
                self._obs_run_probes.inc()
            rec = run.probe_page(oid)
            if rec is not None:
                return (rec[3], rec[1], rec[2])
            self.bloom_fp_count += 1
            if self._obs_bloom_fp is not None:
                self._obs_bloom_fp.inc()
        return None

    def _merged_get(self, oid: int) -> Optional[Tuple[int, int]]:  # holds: latch
        """Aggregate ``(S_latest, N_old)`` for ``oid`` across all tiers
        (RAM first, then runs newest→oldest), or ``None`` if absent."""
        s_latest: Optional[int] = None
        total = 0
        rec = self._ram_bucket(oid).get(oid)
        if rec is not None:
            tag, stamp, n = rec
            if tag == TOMBSTONE:
                return None
            s_latest = stamp
            total += n
            if tag == ABSOLUTE:
                return (s_latest, total) if total > 0 else None
        for run in reversed(self._runs):
            if not run.maybe_contains(oid):
                continue
            self._charge_read_pages(1)
            self.run_probe_count += 1
            if self._obs_run_probes is not None:
                self._obs_run_probes.inc()
            found = run.probe_page(oid)
            if found is None:
                self.bloom_fp_count += 1
                if self._obs_bloom_fp is not None:
                    self._obs_bloom_fp.inc()
                continue
            _, stamp, n, tag = found
            if s_latest is None:
                s_latest = stamp
            if tag == TOMBSTONE:
                break
            total += n
            if tag == ABSOLUTE:
                break
        if s_latest is None or total <= 0:
            return None
        return (s_latest, total)

    # ------------------------------------------------------------------
    # The paper's memo operations
    # ------------------------------------------------------------------

    def record_update(self, oid: int, stamp: int) -> None:  # holds: latch
        """Same contract as the base memo, still zero-I/O: a RAM miss
        writes a ``DELTA`` record that aggregates over whatever the runs
        hold, so no tier below RAM is consulted."""
        self._rc_bucket(oid, True)
        bucket = self._ram_bucket(oid)
        rec = bucket.get(oid)
        if rec is None:
            bucket[oid] = (DELTA, stamp, 1)
            self._ram_count += 1
            # Without probing the runs, "insert vs obsoleted" is
            # unknowable at O(1); a RAM miss is reported as an insert.
            if self._obs_inserts is not None:
                self._obs_inserts.inc()
        else:
            tag, _, n = rec
            if tag == TOMBSTONE:
                bucket[oid] = (ABSOLUTE, stamp, 1)
            else:
                bucket[oid] = (tag, stamp, n + 1)
            if self._obs_obsoleted is not None:
                self._obs_obsoleted.inc()
        self._maybe_spill()

    def latest_stamp(self, oid: int) -> Optional[int]:
        """First-hit probe: the newest record in any tier already
        carries ``S_latest``, so the walk stops at one Bloom-screened
        page read without aggregating ``N_old``."""
        self._rc_bucket(oid, False)
        self.lookup_count += 1
        rec = self._ram_bucket(oid).get(oid)
        if rec is None:
            rec = self._probe_runs_first(oid)
        if rec is None or rec[0] == TOMBSTONE:
            return None
        self.hit_count += 1
        return rec[1]

    def check_status(self, oid: int, stamp: int) -> str:
        s_latest = self.latest_stamp(oid)
        if s_latest is None:
            return LATEST
        return LATEST if stamp == s_latest else OBSOLETE

    def is_obsolete(self, oid: int, stamp: int) -> bool:
        s_latest = self.latest_stamp(oid)
        return s_latest is not None and stamp != s_latest

    def note_cleaned(self, oid: int) -> None:  # holds: latch
        """Decrement ``N_old``; unlike ``record_update`` this must know
        the aggregate total, so it pays a full-depth probe and writes the
        result back as an ``ABSOLUTE`` (or ``TOMBSTONE`` at zero) that
        supersedes every older record for the oid."""
        self._rc_bucket(oid, True)
        res = self._merged_get(oid)
        if res is None:
            raise KeyError(
                f"cleaned an obsolete entry for oid {oid} with no UM entry"
            )
        if self._obs_cleaned is not None:
            self._obs_cleaned.inc()
        s_latest, total = res
        bucket = self._ram_bucket(oid)
        if total - 1 <= 0:
            if self._runs:
                # Older runs may still hold records; mask them.
                self._ram_set(oid, (TOMBSTONE, s_latest, 0))
            elif bucket.pop(oid, None) is not None:
                self._ram_count -= 1
        else:
            self._ram_set(oid, (ABSOLUTE, s_latest, total - 1))
        self._maybe_spill()

    def purge_phantoms(
        self, stamp_threshold: int, exclude: Optional[Set[int]] = None
    ) -> int:
        """Phantom inspection (Lemma 1) as a filtered major merge: fold
        every tier into absolute entries, drop the phantoms, and restart
        the LSM from the survivors (RAM if they fit, spilled otherwise).
        One full memo scan — the same O(memo) the in-RAM purge pays,
        plus the run reads, charged once per cleaning cycle."""
        self._rc_all(True)
        merged = self._merged_all()
        survivors = {
            oid: (s_latest, n_old)
            for oid, (s_latest, n_old) in merged.items()
            if n_old > 0
            and (
                s_latest >= stamp_threshold
                or (exclude is not None and oid in exclude)
            )
        }
        alive = sum(1 for _, n_old in merged.values() if n_old > 0)
        purged = alive - len(survivors)
        self._reset_tiers(
            (oid, s, n) for oid, (s, n) in survivors.items()
        )
        if self._obs_purge_runs is not None:
            self._obs_purge_runs.inc()
            self._obs_purged.inc(purged)
        return purged

    # ------------------------------------------------------------------
    # Lookup / snapshot / restore
    # ------------------------------------------------------------------

    def get(self, oid: int) -> Optional[UMEntry]:
        self._rc_bucket(oid, False)
        res = self._merged_get(oid)
        if res is None:
            return None
        return UMEntry(oid, res[0], res[1])

    def snapshot(self) -> List[Tuple[int, int, int]]:  # holds: latch
        """A stable copy of all live entries, aggregated across tiers
        (checkpointing, Section 3.4).  Charges a full run scan."""
        self._rc_all(False)
        for run in self._runs:
            self._charge_read_pages(run.pages)
        return [
            (oid, s_latest, n_old)
            for oid, (s_latest, n_old) in self._merged_all().items()
            if n_old > 0
        ]

    def restore(self, entries: Iterator[Tuple[int, int, int]]) -> None:
        """Replace the whole memo content (crash recovery), dropping
        non-positive ``N_old`` exactly like the base memo."""
        self._rc_all(True)
        self._reset_tiers(
            (oid, s_latest, n_old)
            for oid, s_latest, n_old in entries
            if n_old > 0
        )

    # holds: latch
    def _reset_tiers(
        self, entries: Iterator[Tuple[int, int, int]]
    ) -> None:
        """Restart the LSM from scratch with ``entries`` as absolute
        truth.  The empty manifest is committed *before* the old run
        files are unlinked, so a crash in between leaves orphans (swept
        at the next open), never a manifest naming missing files."""
        for bucket in self._ram:
            bucket.clear()
        self._ram_count = 0
        old_runs = self._runs
        self._runs = []
        self._write_manifest([])
        for run in old_runs:
            run.close()
            run.path.unlink(missing_ok=True)
        for oid, s_latest, n_old in entries:
            self._ram_set(oid, (ABSOLUTE, s_latest, n_old))
        self._maybe_spill()

    # ------------------------------------------------------------------
    # Size metrics (gauges — peek-style, uncharged)
    # ------------------------------------------------------------------

    def _merged_all(self) -> Dict[int, Tuple[int, int]]:  # holds: latch
        """Aggregate every tier into ``{oid: (S_latest, N_old)}``.

        Applies runs oldest→newest then RAM on top (the forward
        equivalent of the newest→oldest probe walk): ``ABSOLUTE``/
        ``TOMBSTONE`` replace, ``DELTA`` adds.  Tombstoned entries stay
        in the dict with ``N_old`` 0 so callers can distinguish "absent"
        from "never seen"; live entries have ``N_old > 0``.  Does not
        charge I/O itself — gauge callbacks sample it at snapshot time,
        and charging those reads would pollute per-op I/O deltas;
        operation-path callers charge explicitly.
        """
        agg: Dict[int, Tuple[int, int]] = {}
        for run in self._runs:
            for oid, stamp, n, tag in run.iter_records():
                if tag == DELTA:
                    prev = agg.get(oid)
                    agg[oid] = (stamp, (prev[1] if prev else 0) + n)
                elif tag == ABSOLUTE:
                    agg[oid] = (stamp, n)
                else:
                    agg[oid] = (stamp, 0)
        for bucket in self._ram:
            for oid, (tag, stamp, n) in bucket.items():
                if tag == DELTA:
                    prev = agg.get(oid)
                    agg[oid] = (stamp, (prev[1] if prev else 0) + n)
                elif tag == ABSOLUTE:
                    agg[oid] = (stamp, n)
                else:
                    agg[oid] = (stamp, 0)
        return agg

    def __len__(self) -> int:
        return sum(1 for _, n in self._merged_all().values() if n > 0)

    def size_bytes(self) -> int:
        """Logical memo size at the paper's per-entry footprint ``E``
        (live entries only, whatever tier they sit in)."""
        return len(self) * UM_ENTRY_BYTES

    def total_n_old(self) -> int:
        return sum(
            n for _, n in self._merged_all().values() if n > 0
        )

    def __iter__(self) -> Iterator[UMEntry]:
        for oid, (s_latest, n_old) in self._merged_all().items():
            if n_old > 0:
                yield UMEntry(oid, s_latest, n_old)

    # ------------------------------------------------------------------
    # Spilling
    # ------------------------------------------------------------------

    def defer_spills(self) -> ContextManager[None]:
        """Suspend budget-triggered spills for a batch apply (PR 5):
        every ``record_update`` in the scope stays in RAM, and scope
        exit flushes at most one run — the batch *becomes* a memo run
        flush instead of shearing into many mid-batch spills."""
        return self._defer_scope()

    @contextmanager
    def _defer_scope(self) -> Iterator[None]:
        self._defer += 1
        try:
            yield
        finally:
            self._defer -= 1
            if self._defer == 0:
                self._maybe_spill()

    def _maybe_spill(self) -> None:
        if self._defer > 0 or self._ram_count * UM_ENTRY_BYTES <= self.spill_budget:
            return
        self.flush_ram()

    def flush_ram(self) -> None:  # holds: latch
        """Spill the whole RAM tier as one new run (newest in the age
        order) and empty RAM.  Crash windows: ``memo.run_flush`` while
        the run image is written (an interrupted image is an orphan —
        the manifest does not name it yet), then ``memo.manifest``."""
        if self._ram_count == 0:
            return
        records = sorted(
            (oid, stamp, n, tag)
            for bucket in self._ram
            for oid, (tag, stamp, n) in bucket.items()
        )
        name = f"run-{self._next_seq:08d}{RUN_SUFFIX}"
        self._next_seq += 1
        path = self.directory / name
        data = _Run.encode(records)
        self._write_run_file(path, data, "memo.run_flush")
        self._write_manifest([r.path.name for r in self._runs] + [name])
        self._runs.append(_Run.from_records(path, records))
        for bucket in self._ram:
            bucket.clear()
        self._ram_count = 0
        if self._obs_spills is not None:
            self._obs_spills.inc()
        self._maybe_compact()

    def _write_run_file(self, path: Path, data: bytes, point: str) -> None:
        """Write + fsync one run image, honouring the fault point:
        ``crash`` dies before any byte lands, ``torn`` persists a prefix
        then dies, ``corrupt`` writes a silently damaged image."""
        faults = self.faults
        mode: Optional[str] = None
        if (
            faults is not None
            and faults.point == point
            and faults.should_trigger(point)
        ):
            mode = faults.mode
        if mode == "corrupt":
            faults._mark_fired(point)
            data = corrupt_page(data, faults.corrupt_bytes)
            mode = None
        if mode == "crash":
            faults._mark_fired(point)
            raise SimulatedCrash(point)
        with open(path, "wb") as f:
            if mode == "torn":
                k = faults.torn_bytes if faults.torn_bytes > 0 else len(data) // 2
                k = max(1, min(k, len(data) - 1))
                f.write(data[:k])
                f.flush()
                os.fsync(f.fileno())
                faults._mark_fired(point)
                raise SimulatedCrash(point)
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        self._charge_write_bytes(len(data))

    def _write_manifest(self, names: List[str]) -> None:
        """Atomically replace the manifest (temp + fsync + replace, the
        PR 3 pattern): a crash at any point leaves either the previous
        complete manifest or the new one."""
        body = json.dumps(
            {"seq": self._next_seq, "runs": names}, sort_keys=True
        )
        content = (
            body + "\n" + format(zlib.crc32(body.encode("utf-8")), "08x") + "\n"
        ).encode("utf-8")
        faults = self.faults
        mode: Optional[str] = None
        if (
            faults is not None
            and faults.point == "memo.manifest"
            and faults.should_trigger("memo.manifest")
        ):
            mode = faults.mode
        if mode == "corrupt":
            faults._mark_fired("memo.manifest")
            content = corrupt_page(content, faults.corrupt_bytes)
            mode = None
        tmp_path = self.directory / MANIFEST_TMP_FILE
        with open(tmp_path, "wb") as tmp:
            if mode == "torn":
                k = faults.torn_bytes if faults.torn_bytes > 0 else len(content) // 2
                k = max(1, min(k, len(content) - 1))
                tmp.write(content[:k])
                tmp.flush()
                os.fsync(tmp.fileno())
                faults._mark_fired("memo.manifest")
                raise SimulatedCrash("memo.manifest")
            tmp.write(content)
            tmp.flush()
            os.fsync(tmp.fileno())
        if mode == "crash":
            # Crash window: new manifest fully written but not yet live;
            # the previous manifest must still name the previous runs.
            faults._mark_fired("memo.manifest")
            raise SimulatedCrash("memo.manifest")
        os.replace(tmp_path, self.directory / MANIFEST_FILE)
        self._charge_write_bytes(len(content))

    # ------------------------------------------------------------------
    # Size-tiered compaction
    # ------------------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Merge age-contiguous groups of same-tier runs until no group
        reaches ``compact_threshold``.  Only age-contiguous runs may
        merge — the manifest order is the authoritative record-age order
        the newest→oldest probe walk depends on."""
        while True:
            group = self._find_compactable()
            if group is None:
                return
            self._compact(*group)

    def _find_compactable(self) -> Optional[Tuple[int, int]]:  # holds: latch
        runs = self._runs
        i = 0
        while i < len(runs):
            tier = runs[i].count.bit_length()
            j = i
            while j + 1 < len(runs) and runs[j + 1].count.bit_length() == tier:
                j += 1
            if j - i + 1 >= self.compact_threshold:
                return (i, j)
            i = j + 1
        return None

    def _compact(self, i: int, j: int) -> None:  # holds: latch
        """Merge runs ``i..j`` (age order, inclusive) into one run.

        Record folding is the probe walk in the forward direction:
        within the group, newer ``ABSOLUTE``/``TOMBSTONE`` replace and
        ``DELTA`` adds.  When the group includes the oldest run of the
        memo there is nothing below to mask or add to, so tombstones
        drop out and surviving deltas normalise to absolutes.
        """
        group = self._runs[i:j + 1]
        agg: Dict[int, Tuple[int, int, int]] = {}
        for run in group:
            self._charge_read_pages(run.pages)
            for oid, stamp, n, tag in run.read_validated():
                if tag == DELTA:
                    prev = agg.get(oid)
                    if prev is None:
                        agg[oid] = (DELTA, stamp, n)
                    elif prev[0] == TOMBSTONE:
                        agg[oid] = (ABSOLUTE, stamp, n)
                    else:
                        agg[oid] = (prev[0], stamp, prev[2] + n)
                else:
                    agg[oid] = (tag, stamp, n)
        if i == 0:
            merged = {}
            for oid, (tag, stamp, n) in agg.items():
                if tag == TOMBSTONE or n <= 0:
                    continue
                merged[oid] = (ABSOLUTE, stamp, n)
            agg = merged
        records = sorted(
            (oid, stamp, n, tag) for oid, (tag, stamp, n) in agg.items()
        )
        names = [r.path.name for r in self._runs]
        if records:
            name = f"run-{self._next_seq:08d}{RUN_SUFFIX}"
            self._next_seq += 1
            out_path = self.directory / name
            self._write_run_file(out_path, _Run.encode(records), "memo.compact")
            new_runs = [_Run.from_records(out_path, records)]
            new_names = [name]
        else:
            new_runs = []
            new_names = []
        # Crash window closes here: the manifest swap makes the merged
        # run live and the inputs orphans, atomically.
        self._write_manifest(names[:i] + new_names + names[j + 1:])
        for run in group:
            run.close()
            run.path.unlink(missing_ok=True)
        self._runs[i:j + 1] = new_runs
        if self._obs_compactions is not None:
            self._obs_compactions.inc()

    # ------------------------------------------------------------------
    # Open / recover / close
    # ------------------------------------------------------------------

    def _recover(self) -> None:  # holds: latch
        """Bring the directory to a consistent state at open:

        1. drop a leftover manifest temp file (an interrupted atomic
           replace — the real manifest is intact by construction);
        2. load + validate every manifest-named run (CRC/magic/size;
           :class:`MemoCorruptionError` on damage);
        3. unlink orphan ``.run`` files (interrupted flush/compaction).
        """
        (self.directory / MANIFEST_TMP_FILE).unlink(missing_ok=True)
        manifest_path = self.directory / MANIFEST_FILE
        names: List[str] = []
        if manifest_path.exists():
            raw = manifest_path.read_bytes()
            lines = raw.decode("utf-8", errors="replace").splitlines()
            if len(lines) != 2:
                raise MemoCorruptionError(
                    "memo manifest is malformed "
                    f"({len(lines)} lines, expected 2)"
                )
            body, crc_line = lines
            if format(zlib.crc32(body.encode("utf-8")), "08x") != crc_line:
                raise MemoCorruptionError(
                    "memo manifest failed its CRC check"
                )
            meta = json.loads(body)
            names = list(meta["runs"])
            self._next_seq = int(meta["seq"])
            self._charge_read_pages(1)
        self._runs = []
        for name in names:
            run = _Run.load(self.directory / name)
            self._charge_read_pages(run.pages)
            self._runs.append(run)
        live = set(names)
        for path in self.directory.glob(f"*{RUN_SUFFIX}"):
            if path.name not in live:
                path.unlink(missing_ok=True)

    def close(self) -> None:  # holds: latch
        """Release run file handles (the manifest is already durable —
        every mutation of the run set commits it before returning)."""
        for run in self._runs:
            run.close()
