"""Batched update ingestion: dedup, locality ordering, batch plans.

Update-intensive spatial workloads amortise per-update overhead by
buffering updates and applying them in groups (cf. the LSM-based R-tree
line of work in PAPERS.md).  The memo-based update of Section 3 makes
this particularly clean for the RUM-tree: an update never needs the old
entry, so a buffered batch can be *deduplicated per object* — only the
last operation of each object has any effect on the final visible state
— and the surviving insertions can be *reordered freely* without
changing semantics.  This module implements the workload-independent
half of that pipeline:

* **Operation normalisation** — batches are sequences of plain tuples,
  ``("insert", oid, rect)``, ``("update", oid, new_rect[, old_rect])``
  and ``("delete", oid[, old_rect])``.  The optional ``old_rect`` is
  ignored by the RUM-tree (Section 3.2.1) but threaded through for the
  top-down baselines, which need the currently-stored MBR to locate the
  entry they must remove.
* **Last-write-wins dedup** (:func:`plan_batch`) — per oid, operations
  fold left-to-right into at most one surviving operation.  For the
  RUM-tree this is *exactly* equivalent to sequential application as
  far as queries are concerned: sequentially, every superseded
  insertion produces an entry that is obsolete the moment the next
  stamp for the same oid is recorded, and the memo filter hides it from
  every query.  Skipping it merely skips creating garbage (see
  ``docs/BATCHING.md`` for the full argument).  For the baselines the
  fold chains ``old_rect`` of the first folded operation onto the last
  one, so the single surviving top-down update still finds the stored
  entry.
* **Z-order locality key** (:func:`repro.rtree.zorder.zorder_key`) —
  surviving insertions are sorted by the Morton code of their
  rectangle's centre, so consecutive choose-subtree descents land on
  nearby leaves and the batch scope's page pinning turns repeat visits
  into buffer hits.  The encoding itself lives in
  :mod:`repro.rtree.zorder` (it also drives the serving layer's shard
  partition); ``zorder_key`` and ``ZORDER_BITS`` stay re-exported here
  for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rtree.geometry import Rect
from repro.rtree.zorder import ZORDER_BITS, zorder_key, zorder_keys

__all__ = [
    "KINDS",
    "ZORDER_BITS",
    "zorder_key",
    "BatchUpsert",
    "BatchDelete",
    "BatchPlan",
    "BatchResult",
    "normalize_op",
    "plan_batch",
]

#: Operation kinds accepted by :func:`plan_batch`.
KINDS = ("insert", "update", "delete")


@dataclass(frozen=True)
class BatchUpsert:
    """One surviving insertion of a batch plan."""

    oid: int
    rect: Rect
    #: Stored MBR the top-down baselines must delete first; ``None`` for
    #: a fresh insert (or when the producer knows the consumer is a
    #: RUM-tree, which never needs it).
    old_rect: Optional[Rect] = None


@dataclass(frozen=True)
class BatchDelete:
    """One surviving deletion of a batch plan."""

    oid: int
    old_rect: Optional[Rect] = None


@dataclass
class BatchPlan:
    """The deduplicated, locality-ordered form of one operation batch."""

    #: Surviving insertions, sorted by :func:`zorder_key` of their rects.
    upserts: List[BatchUpsert] = field(default_factory=list)
    #: Surviving deletions (order is irrelevant: they touch no page in
    #: the memo-based path and distinct oids never interact).
    deletes: List[BatchDelete] = field(default_factory=list)
    #: Operations in the input batch.
    total_ops: int = 0

    @property
    def surviving(self) -> int:
        return len(self.upserts) + len(self.deletes)

    @property
    def deduped(self) -> int:
        """Operations dropped by last-write-wins folding."""
        return self.total_ops - self.surviving

    @property
    def dedup_ratio(self) -> float:
        """Fraction of the batch folded away (0.0 = nothing saved)."""
        return self.deduped / self.total_ops if self.total_ops else 0.0


@dataclass
class BatchResult:
    """What applying one batch did (returned by ``apply_batch``)."""

    total_ops: int
    applied: int
    deduped: int
    inserts: int
    deletes: int
    #: Leaf dirty-marks vs. distinct pages written by the batch scope;
    #: their difference is the writeback the batching coalesced away.
    write_marks: int = 0
    pages_written: int = 0

    @property
    def coalesced_writes(self) -> int:
        return max(0, self.write_marks - self.pages_written)


# Per-oid fold state: (kind, new_rect, old_rect).  ``kind`` is one of
# "insert" / "update" / "delete" / "noop" ("noop" = insert followed by
# delete inside the same batch: the object never existed outside it).
_FoldState = Tuple[str, Optional[Rect], Optional[Rect]]


def _fold(state: Optional[_FoldState], op: Tuple) -> _FoldState:
    """Fold the next operation of one oid onto its current state.

    Left-to-right, last write wins; the ``old_rect`` of the *first*
    folded operation is preserved so a top-down consumer still finds the
    entry that is physically in its tree.
    """
    kind = op[0]
    new_rect = op[2] if kind in ("insert", "update") else None
    op_old: Optional[Rect] = None
    if kind == "update" and len(op) > 3:
        op_old = op[3]
    elif kind == "delete" and len(op) > 2:
        op_old = op[2]

    if state is None:
        return (kind, new_rect, op_old)
    prev_kind, _prev_rect, prev_old = state
    if prev_kind == "insert":
        if kind == "delete":
            return ("noop", None, None)
        return ("insert", new_rect, None)
    if prev_kind == "noop":
        # The object does not exist at this point of the batch: any
        # further write re-creates it from scratch.
        if kind == "delete":
            return ("noop", None, None)
        return ("insert", new_rect, None)
    # prev_kind is "update" or "delete": the object pre-exists the batch
    # and prev_old (possibly None) locates its stored entry.
    if kind == "delete":
        return ("delete", None, prev_old)
    if prev_kind == "delete":
        # delete then re-insert: net effect is moving the stored entry.
        return ("update", new_rect, prev_old)
    return ("update", new_rect, prev_old)


def normalize_op(op: Sequence) -> Tuple:
    """Validate one batch operation tuple; returns it as a plain tuple."""
    if not op:
        raise ValueError("empty batch operation")
    kind = op[0]
    if kind not in KINDS:
        raise ValueError(
            f"unknown batch operation kind {kind!r}; expected one of {KINDS}"
        )
    if kind == "delete":
        if not 2 <= len(op) <= 3:
            raise ValueError(
                f"delete op takes (oid[, old_rect]), got {len(op) - 1} args"
            )
    else:
        if not 3 <= len(op) <= 4:
            raise ValueError(
                f"{kind} op takes (oid, rect[, old_rect]), "
                f"got {len(op) - 1} args"
            )
        if not isinstance(op[2], Rect):
            raise TypeError(f"{kind} op rect must be a Rect, got {op[2]!r}")
    if not isinstance(op[1], int):
        raise TypeError(f"{kind} op oid must be an int, got {op[1]!r}")
    return tuple(op)


def plan_batch(ops: Iterable[Sequence]) -> BatchPlan:
    """Deduplicate and locality-order a batch of operations.

    Returns a :class:`BatchPlan` whose application (deletes, then the
    Z-ordered upserts) is equivalent — for every query that runs after
    the batch — to applying ``ops`` sequentially in input order.
    """
    states: Dict[int, _FoldState] = {}
    total = 0
    for raw in ops:
        op = normalize_op(raw)
        total += 1
        oid = op[1]
        states[oid] = _fold(states.get(oid), op)

    plan = BatchPlan(total_ops=total)
    for oid, (kind, new_rect, old_rect) in states.items():
        if kind == "noop":
            continue
        if kind == "delete":
            plan.deletes.append(BatchDelete(oid, old_rect))
        elif new_rect is None:  # fold invariant: upserts carry a rect
            raise RuntimeError(f"batch fold lost the rect of oid {oid}")
        else:
            plan.upserts.append(BatchUpsert(oid, new_rect, old_rect))
    if plan.upserts:
        # One bulk encode, then a keyed sort: same order as sorting by
        # (zorder_key(u.rect), u.oid) per element.
        keys = zorder_keys([u.rect for u in plan.upserts])
        order = sorted(
            range(len(plan.upserts)),
            key=lambda i: (keys[i], plan.upserts[i].oid),
        )
        plan.upserts = [plan.upserts[i] for i in order]
    return plan
