"""Crash recovery for the Update Memo (Section 3.4).

The UM and the stamp counter live in main memory and are lost on a crash;
the tree pages on disk survive.  Three recovery options trade logging cost
against recovery cost (Figure 15 and Table 2):

* **Option I** — no log: rebuild the UM by scanning every leaf entry.  The
  intermediate table holds one slot per *object*, so for large object
  populations it exceeds main memory and spills to disk — that spill is
  what makes Option I's recovery cost explode in Table 2.
* **Option II** — the UM is checkpointed periodically: restore the last
  snapshot, then scan the leaves and replay only entries stamped after the
  checkpoint.  The result is a superset of the true UM (cleanings since
  the checkpoint were lost), i.e. it contains phantoms, which one cleaning
  cycle plus phantom inspection subsequently removes.
* **Option III** — checkpoints plus a log record per memo change: restore
  the snapshot and replay the log.  No tree scan at all — the cheapest
  recovery, bought with the highest logging cost during normal operation.

Known semantic limits, faithful to the paper's design: deletions performed
after the last durable information (ever, for Option I; after the last
checkpoint, for Option II) are lost, because a memo-based delete leaves no
trace in the tree.  Only Option III recovers deletes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.storage.iostats import IOSnapshot

from repro.rtree.node import Node

from .rum import RUMTree


@dataclass
class RecoveryReport:
    """Outcome and cost of one recovery run."""

    option: str
    io: IOSnapshot
    leaf_entries_scanned: int = 0
    log_records_replayed: int = 0
    spill_accesses: int = 0
    memo_entries_after: int = 0
    stamp_restored: int = 0

    @property
    def disk_accesses(self) -> int:
        """Total disk accesses charged to the recovery (Table 2 metric)."""
        return self.io.counted_total


def _scan_leaves_counted(tree: RUMTree) -> Iterator[Node]:
    """Read every leaf through the buffer pool so the scan is charged."""
    stack = [tree.root_id]
    while stack:
        node = tree.buffer.get_node(stack.pop())
        if node.is_leaf:
            yield node
        else:
            stack.extend(e.child_id for e in node.entries)


class _IntermediateTable:
    """Per-object (max stamp, entry count) table used by Options I/II.

    Charges one auxiliary disk access per touch once it outgrows its memory
    budget — the spill behaviour that dominates Option I's recovery cost
    for large object populations.
    """

    def __init__(self, tree: RUMTree, memory_budget_entries: Optional[int]):
        self._tree = tree
        self._budget = memory_budget_entries
        self._table: Dict[int, Tuple[int, int]] = {}
        self.spill_accesses = 0

    def touch(self, oid: int, stamp: int) -> None:
        if self._budget is not None and len(self._table) > self._budget:
            # Read-modify-write of a spilled bucket page (amortised 1 I/O).
            self._tree.stats.index_reads += 1
            self.spill_accesses += 1
        old = self._table.get(oid)
        if old is None:
            self._table[oid] = (stamp, 1)
        else:
            max_stamp, count = old
            self._table[oid] = (max(max_stamp, stamp), count + 1)

    def items(self) -> Iterator[Tuple[int, Tuple[int, int]]]:
        return iter(self._table.items())


def recover_option_i(
    tree: RUMTree, memory_budget_entries: Optional[int] = None
) -> RecoveryReport:
    """Option I: full leaf scan, no log.

    ``memory_budget_entries`` models how many intermediate-table slots fit
    in main memory; ``None`` means the table always fits (small data sets).
    """
    before = tree.stats.snapshot()
    table = _IntermediateTable(tree, memory_budget_entries)
    scanned = 0
    max_stamp = 0
    for leaf in _scan_leaves_counted(tree):
        for entry in leaf.entries:
            table.touch(entry.oid, entry.stamp)
            if entry.stamp > max_stamp:
                max_stamp = entry.stamp
            scanned += 1
    memo_entries = [
        (oid, stamp, count - 1)
        for oid, (stamp, count) in table.items()
        if count > 1
    ]
    tree.memo.restore(iter(memo_entries))
    tree.stamps.restore(max_stamp + 1)
    return RecoveryReport(
        option="I",
        io=tree.stats.snapshot() - before,
        leaf_entries_scanned=scanned,
        spill_accesses=table.spill_accesses,
        memo_entries_after=len(tree.memo),
        stamp_restored=max_stamp + 1,
    )


def recover_option_ii(tree: RUMTree) -> RecoveryReport:
    """Option II: restore the checkpointed UM, replay newer leaf entries."""
    if tree.wal is None:
        raise ValueError("Option II recovery needs the write-ahead log")
    before = tree.stats.snapshot()
    checkpoint = tree.wal.last_checkpoint()
    if checkpoint is None:
        report = recover_option_i(tree)
        report.option = "II"
        return report
    # Option II reads only the checkpoint record itself — read_from()
    # would also bill the whole post-checkpoint log tail (memo-change
    # records an Option III logger may have appended) that this
    # procedure never replays.
    tree.wal.read_record(checkpoint)
    checkpoint_stamp, snapshot = checkpoint.payload
    tree.memo.restore(iter(snapshot))

    newer = []
    scanned = 0
    max_stamp = checkpoint_stamp - 1
    for leaf in _scan_leaves_counted(tree):
        for entry in leaf.entries:
            scanned += 1
            if entry.stamp >= checkpoint_stamp:
                newer.append((entry.stamp, entry.oid))
            if entry.stamp > max_stamp:
                max_stamp = entry.stamp
    for stamp, oid in sorted(newer):
        tree.memo.record_update(oid, stamp)
    restored = max(checkpoint_stamp, max_stamp + 1)
    tree.stamps.restore(restored)
    return RecoveryReport(
        option="II",
        io=tree.stats.snapshot() - before,
        leaf_entries_scanned=scanned,
        memo_entries_after=len(tree.memo),
        stamp_restored=restored,
    )


def recover_option_iii(tree: RUMTree) -> RecoveryReport:
    """Option III: restore the checkpoint and replay the memo-change log.

    **Torn batches.** Batched ingestion (``RUMTree.apply_batch`` under
    group commit) logs a *stamp lease* before each batch and defers the
    forced flush of the batch's memo records to the batch end.  A crash
    inside the batch therefore leaves the lease durable but (part of)
    the records volatile, while the tree — durable on its own in this
    failure model — may already contain entries the batch inserted.  The
    pure log replay above cannot see those orphaned entries; when the
    lease's stamp range is not fully covered by durable memo records the
    recovery falls back to one leaf scan and merges physical ground
    truth with the durable log: an operation of the torn batch counts as
    applied iff its entry reached the tree or its memo record became
    durable.  The scan is paid only on a crash that lands inside an open
    batch — the no-scan fast path of the paper is unchanged otherwise.
    """
    if tree.wal is None:
        raise ValueError("Option III recovery needs the write-ahead log")
    before = tree.stats.snapshot()
    checkpoint = tree.wal.last_checkpoint()
    start_lsn = 0
    max_stamp = 0
    if checkpoint is not None:
        checkpoint_stamp, snapshot = checkpoint.payload
        tree.memo.restore(iter(snapshot))
        max_stamp = checkpoint_stamp - 1
        start_lsn = checkpoint.lsn
    else:
        tree.memo.restore(iter(()))
    replayed = 0
    max_lease = 0
    for record in tree.wal.read_from(start_lsn):
        if record.kind == "lease":
            max_lease = max(max_lease, record.payload)
            continue
        if record.kind != "memo":
            continue
        oid, stamp = record.payload
        tree.memo.record_update(oid, stamp)
        if stamp > max_stamp:
            max_stamp = stamp
        replayed += 1
    scanned = 0
    if max_lease - 1 > max_stamp:
        # Torn batch: stamps up to the lease ceiling may sit on durable
        # tree entries whose memo records died with the crash.
        scanned, scan_max = _merge_torn_batch_scan(tree)
        max_stamp = max(max_stamp, scan_max, max_lease - 1)
    tree.stamps.restore(max_stamp + 1)
    return RecoveryReport(
        option="III",
        io=tree.stats.snapshot() - before,
        log_records_replayed=replayed,
        leaf_entries_scanned=scanned,
        memo_entries_after=len(tree.memo),
        stamp_restored=max_stamp + 1,
    )


def _merge_torn_batch_scan(tree: RUMTree) -> Tuple[int, int]:
    """Reconcile the replayed memo with the tree's physical entries.

    For every object the authoritative latest version is whichever is
    newer of (a) the newest *physical* entry found by a full leaf scan
    — an orphan inserted by the torn batch counts as applied — and (b)
    the newest *logged* stamp already in the replayed memo — a durable
    record whose insertion never ran (or a durable delete) stays
    authoritative, hiding every physical entry.  ``N_old`` is recomputed
    from the physical count so the cleaner's accounting starts exact.
    Returns ``(entries scanned, highest physical stamp seen)``.
    """
    logged = {oid: s for oid, s, _n_old in tree.memo.snapshot()}
    physical: Dict[int, Tuple[int, int]] = {}
    scanned = 0
    scan_max = 0
    for leaf in _scan_leaves_counted(tree):
        for entry in leaf.entries:
            smax, count = physical.get(entry.oid, (-1, 0))
            physical[entry.oid] = (max(smax, entry.stamp), count + 1)
            if entry.stamp > scan_max:
                scan_max = entry.stamp
            scanned += 1
    merged = []
    for oid, (smax, count) in physical.items():
        logged_stamp = logged.get(oid, -1)
        if logged_stamp > smax:
            # Durable record newer than anything physical: every entry
            # of the object is obsolete (lost insert or a delete).
            merged.append((oid, logged_stamp, count))
        elif count > 1:
            merged.append((oid, smax, count - 1))
        # A single entry at the newest stamp needs no memo entry.
    tree.memo.restore(iter(merged))
    return scanned, scan_max


RECOVERY_PROCEDURES = {
    "I": recover_option_i,
    "II": recover_option_ii,
    "III": recover_option_iii,
}
