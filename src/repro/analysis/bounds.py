"""Bounds on the garbage ratio and the Update-Memo size (Section 4.1).

By Property 1, every leaf is cleaned once per ``N / ir`` updates (``N``
leaf nodes, inspection ratio ``ir``), and each of those updates introduces
at most one new obsolete entry.  Hence, in steady state:

* obsolete entries  ≤ ``N / ir``       (average ``N / 2·ir``),
* garbage ratio     ≤ ``N / (ir·M)``   (``M`` indexed objects),
* UM size           ≤ ``N·E / ir``     bytes (each obsolete entry owns at
  most one memo entry of ``E`` bytes), average half of that.

The bounds depend on the number of **leaf nodes**, which is a small
fraction of the number of objects — that is the paper's argument for the
memo fitting in main memory.  The cost-model ablation bench checks the
measured steady-state values against these bounds.
"""

from __future__ import annotations

from repro.storage.wal import UM_ENTRY_BYTES


def max_obsolete_entries(n_leaves: int, inspection_ratio: float) -> float:
    """Worst-case number of obsolete entries in steady state."""
    if inspection_ratio <= 0:
        return float("inf")
    return n_leaves / inspection_ratio


def avg_obsolete_entries(n_leaves: int, inspection_ratio: float) -> float:
    """Average number of obsolete entries in steady state."""
    return max_obsolete_entries(n_leaves, inspection_ratio) / 2.0


def garbage_ratio_upper_bound(
    n_leaves: int, inspection_ratio: float, n_objects: int
) -> float:
    """Upper bound on obsolete entries per indexed object."""
    if n_objects <= 0:
        raise ValueError("n_objects must be positive")
    return max_obsolete_entries(n_leaves, inspection_ratio) / n_objects


def garbage_ratio_average(
    n_leaves: int, inspection_ratio: float, n_objects: int
) -> float:
    """Average-case garbage ratio ``N / (2·ir·M)``."""
    return garbage_ratio_upper_bound(n_leaves, inspection_ratio, n_objects) / 2.0


def um_size_upper_bound(
    n_leaves: int,
    inspection_ratio: float,
    entry_bytes: int = UM_ENTRY_BYTES,
) -> float:
    """Upper bound on the Update-Memo size in bytes: ``N·E / ir``."""
    return max_obsolete_entries(n_leaves, inspection_ratio) * entry_bytes


def um_size_average(
    n_leaves: int,
    inspection_ratio: float,
    entry_bytes: int = UM_ENTRY_BYTES,
) -> float:
    """Average Update-Memo size in bytes: ``N·E / 2·ir``."""
    return um_size_upper_bound(n_leaves, inspection_ratio, entry_bytes) / 2.0
