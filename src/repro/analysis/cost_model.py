"""Analytical update-cost model (Section 4.2).

The paper derives the expected number of *leaf-node* disk accesses per
update for the three approaches (internal nodes are cached):

* **Top-down** (Section 4.2.1): the deletion search only descends into
  nodes whose MBR fully contains the old entry's MBR.  By Lemma 2 a leaf
  MBR of size ``x×y`` contains a random ``a×b`` entry with probability
  ``max(x-a,0)·max(y-b,0)``, so the expected search cost is half the sum
  of those probabilities over all leaves (on average the entry is found
  halfway through the qualifying leaves), and

  ``IO_TD = 1/2 · Σ_i max(x_i-a,0)·max(y_i-b,0) + 3``

  (+3 = write the leaf after the delete, read + write the insertion leaf).
* **Bottom-up** (Section 4.2.2): 3, 6 or 7 accesses depending on whether
  the new entry stays in place, moves to a sibling, or needs a top-down
  insertion.
* **Memo-based** (Section 4.2.3): one read + one write for the insertion
  plus the amortised cleaning,

  ``IO_memo = 2 · (1 + ir)``.

The logging surcharges of the recovery options (per update) are
``N·E / (ir·P·C)`` for Option II and that plus one forced log write for
Option III.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.rtree.geometry import containment_probability
from repro.storage.wal import UM_ENTRY_BYTES


def expected_topdown_search_io(
    leaf_sides: Sequence[Tuple[float, float]],
    entry_width: float = 0.0,
    entry_height: float = 0.0,
) -> float:
    """Expected leaf reads to locate an entry for a top-down deletion.

    ``leaf_sides`` are the (width, height) pairs of the actual leaf MBRs —
    :meth:`repro.rtree.base.RTreeBase.leaf_mbr_sides` supplies them, so the
    estimator can be validated against the measured tree (the cost-model
    ablation bench does exactly that).
    """
    qualifying = sum(
        containment_probability(w, h, entry_width, entry_height)
        for w, h in leaf_sides
    )
    return qualifying / 2.0


def expected_topdown_update_io(
    leaf_sides: Sequence[Tuple[float, float]],
    entry_width: float = 0.0,
    entry_height: float = 0.0,
) -> float:
    """``IO_TD``: search + delete write + insert read + insert write."""
    return (
        expected_topdown_search_io(leaf_sides, entry_width, entry_height)
        + 3.0
    )


#: Disk accesses of the three bottom-up cases (Section 4.2.2).
BOTTOM_UP_IN_PLACE_IO = 3.0
BOTTOM_UP_SIBLING_IO = 6.0
BOTTOM_UP_TOP_DOWN_IO = 7.0


def expected_bottomup_update_io(
    p_in_place: float, p_sibling: float
) -> float:
    """``IO_BU`` for a given placement mix.

    ``p_in_place`` and ``p_sibling`` are the probabilities that the new
    entry stays in the original leaf resp. fits a sibling; the remainder
    falls back to a top-down insertion.
    """
    if p_in_place < 0 or p_sibling < 0 or p_in_place + p_sibling > 1 + 1e-12:
        raise ValueError("probabilities must be non-negative and sum <= 1")
    p_top_down = max(0.0, 1.0 - p_in_place - p_sibling)
    return (
        BOTTOM_UP_IN_PLACE_IO * p_in_place
        + BOTTOM_UP_SIBLING_IO * p_sibling
        + BOTTOM_UP_TOP_DOWN_IO * p_top_down
    )


def expected_query_leaf_io(
    leaf_sides: Sequence[Tuple[float, float]],
    query_width: float,
    query_height: float,
) -> float:
    """Expected leaf reads of a range query with a ``qw×qh`` window.

    Complement of Lemma 2: a leaf MBR of size ``x×y`` *intersects* a
    random ``qw×qh`` window (both uniform in the unit square) with
    probability ``min(1, (x+qw)·(y+qh))`` — the Minkowski-sum area,
    clamped since a large leaf may qualify always.  Summing over the
    live leaf MBRs gives the expected leaves a traversal must read;
    the drift monitor evaluates this at the workload's observed window
    extents and compares it against the measured per-query EWMA.
    """
    if query_width < 0 or query_height < 0:
        raise ValueError("query extents must be non-negative")
    return sum(
        min(1.0, (w + query_width) * (h + query_height))
        for w, h in leaf_sides
    )


def expected_memo_update_io(inspection_ratio: float) -> float:
    """``IO_memo = 2 (1 + ir)``: the insertion's read+write plus the
    amortised token cleaning (each inspected leaf is read and written)."""
    if inspection_ratio < 0:
        raise ValueError("inspection_ratio must be non-negative")
    return 2.0 * (1.0 + inspection_ratio)


def logging_io_per_update_option_ii(
    n_leaves: int,
    inspection_ratio: float,
    page_size: int,
    checkpoint_interval: int,
    entry_bytes: int = UM_ENTRY_BYTES,
) -> float:
    """Option II surcharge: a UM snapshot of at most ``N·E/ir`` bytes every
    ``C`` updates (Section 4.2.3)."""
    if inspection_ratio <= 0:
        raise ValueError("Option II requires a positive inspection ratio")
    um_bytes = n_leaves * entry_bytes / inspection_ratio
    return um_bytes / (page_size * checkpoint_interval)


def logging_io_per_update_option_iii(
    n_leaves: int,
    inspection_ratio: float,
    page_size: int,
    checkpoint_interval: int,
    entry_bytes: int = UM_ENTRY_BYTES,
) -> float:
    """Option III surcharge: Option II plus one forced log write per
    update."""
    return (
        logging_io_per_update_option_ii(
            n_leaves,
            inspection_ratio,
            page_size,
            checkpoint_interval,
            entry_bytes,
        )
        + 1.0
    )
