"""Analytical models of Section 4: update costs and memo-size bounds."""

from .bounds import (
    avg_obsolete_entries,
    garbage_ratio_average,
    garbage_ratio_upper_bound,
    max_obsolete_entries,
    um_size_average,
    um_size_upper_bound,
)
from .cost_model import (
    BOTTOM_UP_IN_PLACE_IO,
    BOTTOM_UP_SIBLING_IO,
    BOTTOM_UP_TOP_DOWN_IO,
    expected_bottomup_update_io,
    expected_memo_update_io,
    expected_topdown_search_io,
    expected_topdown_update_io,
    logging_io_per_update_option_ii,
    logging_io_per_update_option_iii,
)

__all__ = [
    "expected_topdown_search_io",
    "expected_topdown_update_io",
    "expected_bottomup_update_io",
    "expected_memo_update_io",
    "logging_io_per_update_option_ii",
    "logging_io_per_update_option_iii",
    "BOTTOM_UP_IN_PLACE_IO",
    "BOTTOM_UP_SIBLING_IO",
    "BOTTOM_UP_TOP_DOWN_IO",
    "max_obsolete_entries",
    "avg_obsolete_entries",
    "garbage_ratio_upper_bound",
    "garbage_ratio_average",
    "um_size_upper_bound",
    "um_size_average",
]
