"""Lock-construction factories — the only sanctioned way to build
``threading`` primitives outside this package (rule REP015).

Two reasons to funnel construction through here instead of calling
``threading.Lock()`` at the use site:

* **one choke point** — the lock-discipline linter can guarantee that
  every mutex in the tree's core was built here, so interposition
  below covers all of them;
* **race-detector interposition** — when :mod:`repro.concurrency.
  racecheck` is (or may become) active, :func:`make_lock` returns a
  :class:`~repro.concurrency.racecheck.TrackedLock` whose
  acquire/release feed the checker's held-lock sets.  When detection
  is off the factories return the bare ``threading`` primitive — the
  hot paths pay nothing.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Any, Optional, Protocol

from . import racecheck


class LockLike(Protocol):
    """Structural type shared by ``threading.Lock``/``RLock`` and
    :class:`~repro.concurrency.racecheck.TrackedLock`."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        ...

    def release(self) -> None:
        ...

    def __enter__(self) -> bool:
        ...

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> Optional[bool]:
        ...


def _tracking() -> bool:
    return racecheck.ACTIVE is not None or racecheck.env_enabled()


def make_lock() -> LockLike:
    """A mutex; tracked by the race checker when detection is enabled."""
    lock = threading.Lock()
    if _tracking():
        return racecheck.TrackedLock(lock)
    return lock


def make_rlock() -> LockLike:
    """A reentrant mutex, tracked like :func:`make_lock`."""
    rlock = threading.RLock()
    if _tracking():
        return racecheck.TrackedLock(rlock)
    return rlock


def make_condition(lock: Optional[Any] = None) -> threading.Condition:
    """A condition variable (never tracked: conditions serialise their
    own waiters; the lockset checker cares about data-guarding locks)."""
    return threading.Condition(lock)
