"""Read/write locks and a granular lock manager (Section 3.5).

The paper adopts Dynamic Granular Locking (DGL [4]) for the on-disk tree
and associates read/write locks with the Update-Memo hash buckets and the
stamp counter.  This module supplies the locking substrate for the
throughput experiment (Figure 16):

* :class:`ReadWriteLock` — a classic shared/exclusive lock with writer
  preference (so update-heavy workloads are not starved) and reentrant
  *reads* (a thread already holding a read hold re-enters without
  queuing behind waiting writers — queuing would self-deadlock, see
  ``docs/CONCURRENCY.md``);
* :class:`GranularLockManager` — a table of read/write locks over named
  granules with deterministic multi-granule acquisition order (granules
  are always locked in a process-wide total order, which rules out
  deadlocks under two-phase locking; the contract is documented on
  :meth:`GranularLockManager.order_key`).

Both classes notify the active :mod:`~repro.concurrency.racecheck`
checker on acquire/release so the Eraser lockset algorithm sees
read/write holds with the correct mode.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

from . import racecheck as _racecheck


class ReadWriteLock:
    """A shared/exclusive lock with writer preference.

    Reads are **reentrant**: a thread that already holds a read hold may
    acquire further read holds without blocking, even while a writer is
    queued.  Without this, writer preference turns read reentrancy into
    a guaranteed self-deadlock — the waiting writer blocks the thread's
    second ``acquire_read`` while the writer itself waits for that
    thread's first hold to drain.  Writes are **not** reentrant, and
    upgrading (``acquire_write`` while holding a read hold) is refused:
    both are detected and raise ``RuntimeError`` instead of deadlocking.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writer_tid: int | None = None
        self._writers_waiting = 0
        # Per-thread read hold count (each lock instance carries its own
        # thread-local namespace, so counts never mix across locks).
        self._local = threading.local()

    def _read_holds(self) -> int:
        holds: int = getattr(self._local, "read_holds", 0)
        return holds

    def acquire_read(self) -> None:
        held = self._read_holds()
        if held:
            # Reentrant read: exclusion already holds for this thread,
            # and waiting on the writer-preference gate here would
            # deadlock against any queued writer.
            with self._condition:
                self._readers += 1
            self._local.read_holds = held + 1
        else:
            with self._condition:
                if self._writer_tid == threading.get_ident():
                    raise RuntimeError(
                        "acquire_read while holding the write lock "
                        "would self-deadlock (no downgrade support)"
                    )
                while self._writer or self._writers_waiting:
                    self._condition.wait()
                self._readers += 1
            self._local.read_holds = 1
        checker = _racecheck.ACTIVE
        if checker is not None:
            checker.note_acquire(self, _racecheck.READ_MODE)

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()
        held = self._read_holds()
        if held:
            self._local.read_holds = held - 1
        checker = _racecheck.ACTIVE
        if checker is not None:
            checker.note_release(self)

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._condition:
            if self._writer_tid == me:
                raise RuntimeError(
                    "the write lock is not reentrant (second "
                    "acquire_write by the holding thread)"
                )
            if self._read_holds():
                raise RuntimeError(
                    "lock upgrade (acquire_write while holding a read "
                    "hold) would self-deadlock"
                )
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
            self._writer_tid = me
        checker = _racecheck.ACTIVE
        if checker is not None:
            checker.note_acquire(self, _racecheck.WRITE_MODE)

    def release_write(self) -> None:
        with self._condition:
            if not self._writer:
                raise RuntimeError("release_write without a matching acquire")
            self._writer = False
            self._writer_tid = None
            self._condition.notify_all()
        checker = _racecheck.ACTIVE
        if checker is not None:
            checker.note_release(self)

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


#: Lock modes accepted by the lock manager.
READ = "read"
WRITE = "write"

#: The sort key produced by :meth:`GranularLockManager.order_key`.
OrderKey = Tuple[str, str, int]


class GranularLockManager:
    """Read/write locks over dynamically created granules.

    Granules are arbitrary hashable names (spatial cells, memo buckets,
    the stamp counter).  :meth:`locked` acquires a whole set of
    ``(granule, mode)`` pairs in the total order defined by
    :meth:`order_key` and releases them on exit — two-phase locking
    with a global acquisition order, hence deadlock-free.
    """

    def __init__(self) -> None:
        self._locks: Dict[Hashable, ReadWriteLock] = {}
        self._order: Dict[Hashable, OrderKey] = {}
        self._table_guard = threading.Lock()

    def lock_for(self, granule: Hashable) -> ReadWriteLock:
        with self._table_guard:
            lock = self._locks.get(granule)
            if lock is None:
                lock = ReadWriteLock()
                self._locks[granule] = lock
            return lock

    def order_key(self, granule: Hashable) -> OrderKey:
        """The granule's position in the global acquisition order.

        **Total-order contract.**  Deadlock freedom under two-phase
        locking needs every thread to acquire granules in one
        process-wide total order.  Sorting by ``repr`` alone (the
        original scheme) is *not* total: two distinct granules can
        share a repr (or embed ``id()`` hex that compares differently
        from their identity), so two threads could order the same pair
        oppositely.  The key is a triple:

        ``(type-name, repr, registration index)``

        * *type-name* groups granules of one type together and keeps
          heterogeneous granule sets comparable (tuples of strings
          always compare; raw granules of different types may not);
        * *repr* keeps the common case — distinct, meaningful reprs —
          deterministic across runs and independent of first-use order;
        * the *registration index*, assigned once per granule under the
          table guard on first use and cached for the granule's
          lifetime, breaks every remaining tie.  Within one process the
          index never changes, so the induced order is total and
          stable even for adversarial types whose ``repr`` collides or
          is non-deterministic call-to-call (the repr is captured once,
          at registration).
        """
        with self._table_guard:
            key = self._order.get(granule)
            if key is None:
                key = (type(granule).__name__, repr(granule), len(self._order))
                self._order[granule] = key
            return key

    @contextmanager
    def locked(
        self, requests: Iterable[Tuple[Hashable, str]]
    ) -> Iterator[None]:
        """Hold all requested granule locks for the duration of the block.

        Duplicate granules are coalesced (write wins over read).
        """
        merged: Dict[Hashable, str] = {}
        for granule, mode in requests:
            if mode not in (READ, WRITE):
                raise ValueError(f"unknown lock mode {mode!r}")
            if merged.get(granule) != WRITE:
                merged[granule] = mode
        ordered: Sequence[Tuple[Hashable, str]] = sorted(
            merged.items(), key=lambda item: self.order_key(item[0])
        )
        acquired: List[Tuple[ReadWriteLock, str]] = []
        try:
            for granule, mode in ordered:
                lock = self.lock_for(granule)
                if mode == WRITE:
                    lock.acquire_write()
                else:
                    lock.acquire_read()
                acquired.append((lock, mode))
            yield
        finally:
            for lock, mode in reversed(acquired):
                if mode == WRITE:
                    lock.release_write()
                else:
                    lock.release_read()

    def num_granules(self) -> int:
        with self._table_guard:
            return len(self._locks)
