"""Read/write locks and a granular lock manager (Section 3.5).

The paper adopts Dynamic Granular Locking (DGL [4]) for the on-disk tree
and associates read/write locks with the Update-Memo hash buckets and the
stamp counter.  This module supplies the locking substrate for the
throughput experiment (Figure 16):

* :class:`ReadWriteLock` — a classic shared/exclusive lock with writer
  preference (so update-heavy workloads are not starved);
* :class:`GranularLockManager` — a table of read/write locks over named
  granules with deterministic multi-granule acquisition order (granules
  are always locked in sorted order, which rules out deadlocks under
  two-phase locking).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple


class ReadWriteLock:
    """A shared/exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            if not self._writer:
                raise RuntimeError("release_write without a matching acquire")
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


#: Lock modes accepted by the lock manager.
READ = "read"
WRITE = "write"


class GranularLockManager:
    """Read/write locks over dynamically created granules.

    Granules are arbitrary hashable names (spatial cells, memo buckets,
    the stamp counter).  :meth:`locked` acquires a whole set of
    ``(granule, mode)`` pairs in sorted granule order and releases them on
    exit — two-phase locking with a global acquisition order, hence
    deadlock-free.
    """

    def __init__(self) -> None:
        self._locks: Dict[Hashable, ReadWriteLock] = {}
        self._table_guard = threading.Lock()

    def lock_for(self, granule: Hashable) -> ReadWriteLock:
        with self._table_guard:
            lock = self._locks.get(granule)
            if lock is None:
                lock = ReadWriteLock()
                self._locks[granule] = lock
            return lock

    @contextmanager
    def locked(
        self, requests: Iterable[Tuple[Hashable, str]]
    ) -> Iterator[None]:
        """Hold all requested granule locks for the duration of the block.

        Duplicate granules are coalesced (write wins over read).
        """
        merged: Dict[Hashable, str] = {}
        for granule, mode in requests:
            if mode not in (READ, WRITE):
                raise ValueError(f"unknown lock mode {mode!r}")
            if merged.get(granule) != WRITE:
                merged[granule] = mode
        ordered: Sequence[Tuple[Hashable, str]] = sorted(
            merged.items(), key=lambda item: repr(item[0])
        )
        acquired: List[Tuple[ReadWriteLock, str]] = []
        try:
            for granule, mode in ordered:
                lock = self.lock_for(granule)
                if mode == WRITE:
                    lock.acquire_write()
                else:
                    lock.acquire_read()
                acquired.append((lock, mode))
            yield
        finally:
            for lock, mode in reversed(acquired):
                if mode == WRITE:
                    lock.release_write()
                else:
                    lock.release_read()

    def num_granules(self) -> int:
        with self._table_guard:
            return len(self._locks)
