"""Concurrency control substrate (Section 3.5) and the Figure-16 harness."""

from .locks import READ, WRITE, GranularLockManager, ReadWriteLock
from .throughput import ConcurrentHarness, ThroughputResult

__all__ = [
    "ReadWriteLock",
    "GranularLockManager",
    "READ",
    "WRITE",
    "ConcurrentHarness",
    "ThroughputResult",
]
