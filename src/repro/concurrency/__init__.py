"""Concurrency control substrate (Section 3.5) and the Figure-16 harness.

The harness (:class:`ConcurrentHarness`, :class:`MixedStressHarness`,
:class:`ThroughputResult`) is imported lazily: ``throughput`` pulls in
the whole tree stack (``repro.core.rum``), while the tree stack itself
needs this package's locks (``RTreeBase`` owns a structure latch) — an
eager import here would be circular.
"""

from typing import Any

from . import racecheck
from .locks import READ, WRITE, GranularLockManager, ReadWriteLock
from .primitives import LockLike, make_condition, make_lock, make_rlock

__all__ = [
    "ReadWriteLock",
    "GranularLockManager",
    "READ",
    "WRITE",
    "LockLike",
    "make_lock",
    "make_rlock",
    "make_condition",
    "racecheck",
    "ConcurrentHarness",
    "MixedStressHarness",
    "ThroughputResult",
]

_LAZY = ("ConcurrentHarness", "MixedStressHarness", "ThroughputResult")


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import throughput

        return getattr(throughput, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
