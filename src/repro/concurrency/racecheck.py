"""Eraser-style dynamic data-race detector (lockset + happens-before).

The static rules in :mod:`repro.lint.concurrency` prove lock *discipline*
— pairing, ordering, guarded-by — but a discipline check cannot tell
whether the lock a thread actually held at runtime was the *right* one.
This module closes that gap with the classic Eraser algorithm
(Savage et al., SOSP '97) refined by per-thread vector clocks:

* every shared location (an ``(object, field)`` pair reported through
  :meth:`RaceChecker.access`) carries a **candidate lockset** — the
  intersection of the locks held at every access since the location
  became shared.  A write with an empty candidate set is a race: no
  single lock protected every access.
* the raw Eraser state machine (virgin → exclusive → shared →
  shared-modified) misreports the fork/join idiom — a parent
  initialises an object without locks, hands it to workers, and reads
  it back after ``join()``.  Per-thread **vector clocks**, advanced on
  :meth:`note_fork`/:meth:`note_join`, let the checker discard
  accessors whose last access *happens-before* the current one; when
  every earlier accessor is ordered before the current thread the
  location collapses back to exclusive ownership instead of raising a
  false alarm.
* read/write locks are mode-aware: a read access is protected by any
  held lock, a write access only by locks held in ``write`` (or plain
  mutex ``exclusive``) mode — two threads sharing a read lock do not
  exclude each other's writes.

Activation is explicit and global: ``REPRO_RACECHECK=1`` in the
environment (checked by :func:`from_env`, which the concurrency harness
calls) or a direct :func:`activate`.  When no checker is active every
instrumented site pays a single attribute load and ``None`` check —
the same dormant-path contract as ``attach_obs`` (see
``benchmarks/bench_micro.py``'s racecheck A/B leg).

Races are *collected*, not raised: each one becomes a
:class:`RaceReport` carrying both access sites' stack traces, rendered
in the linter's ``path:line: RCxxx message`` diagnostic style, and is
counted on the ``racecheck.races`` counter when an
:class:`~repro.obs.Observability` is attached.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from dataclasses import dataclass
from types import FrameType
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability

#: Lock modes understood by :meth:`RaceChecker.note_acquire`.
READ_MODE = "read"
WRITE_MODE = "write"
EXCLUSIVE_MODE = "exclusive"

_MODES = (READ_MODE, WRITE_MODE, EXCLUSIVE_MODE)

#: Innermost stack frames captured per access site (racecheck's own
#: frames are filtered out afterwards).
_STACK_LIMIT = 16


#: This module's own source file, filtered from captured stacks (an
#: exact match — ``endswith`` would also eat e.g. ``test_racecheck.py``).
_SELF_FILE = __file__


def _capture_site(write: bool) -> "AccessSite":
    thread = threading.current_thread()
    frames = traceback.extract_stack(limit=_STACK_LIMIT)
    stack = [
        f"{frame.filename}:{frame.lineno} in {frame.name}"
        for frame in frames
        if frame.filename != _SELF_FILE
    ]
    return AccessSite(thread=thread.name, write=write, stack=stack)


def _cheap_site(write: bool) -> "AccessSite":
    """Single-frame access site for hot-path bookkeeping.

    ``traceback.extract_stack`` costs more than the guarded operation
    itself, so recording a full stack on *every* access would dominate
    the detector's overhead (measured ~35x on the update path).  The
    prior-access side of a race report only needs to point at the code,
    so the hot path walks raw frames to the nearest caller outside this
    module; the full stack is captured only for the racing access
    itself, at report time.
    """
    frame: Optional[FrameType] = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == _SELF_FILE:
        frame = frame.f_back
    stack = (
        []
        if frame is None
        else [
            f"{frame.f_code.co_filename}:{frame.f_lineno}"
            f" in {frame.f_code.co_name}"
        ]
    )
    return AccessSite(
        thread=threading.current_thread().name, write=write, stack=stack
    )


@dataclass
class AccessSite:
    """One recorded access: the thread and its (trimmed) call stack."""

    thread: str
    write: bool
    stack: List[str]

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        lines = [f"{kind} by thread {self.thread!r}:"]
        lines.extend(f"    {frame}" for frame in self.stack)
        return "\n".join(lines)


@dataclass
class RaceReport:
    """A location reached shared-modified state with an empty lockset."""

    class_name: str
    field: str
    lockset: Tuple[str, ...]
    current: AccessSite
    prior: Optional[AccessSite]

    @property
    def location(self) -> str:
        return f"{self.class_name}.{self.field}"

    def render(self) -> str:
        """Multi-line report in the linter's diagnostic style."""
        anchor = self.current.stack[-1] if self.current.stack else "<unknown>"
        lines = [
            f"{anchor}: RC001 data race on {self.location}: no common "
            f"lock protects all accesses (candidate lockset is empty)",
            "  " + self.current.describe().replace("\n", "\n  "),
        ]
        if self.prior is not None:
            lines.append("  previous " + self.prior.describe().replace("\n", "\n  "))
        return "\n".join(lines)


class _FieldState:
    """Eraser per-location state.

    ``accessors`` maps each thread (by ident) that has touched the
    location — and is not yet ordered before a later access by
    happens-before — to its clock value at its last access.  While the
    map holds at most the current thread the location is *exclusive*
    and the lockset is not refined (single-threaded phases need no
    locks); once two unordered threads appear, ``lockset`` refines by
    intersection on every access.
    """

    __slots__ = ("accessors", "lockset", "wrote", "last_site", "reported")

    def __init__(self) -> None:
        self.accessors: Dict[int, int] = {}
        self.lockset: Optional[FrozenSet[int]] = None
        self.wrote = False
        self.last_site: Optional[AccessSite] = None
        self.reported = False


class RaceChecker:
    """Collects lock-held sets, vector clocks, and per-field locksets.

    All note/access entry points are safe to call from any thread; the
    checker serialises its own state behind one internal mutex (held
    only for the bookkeeping, never while running user code).
    """

    def __init__(self) -> None:
        # Internal primitives are constructed directly: this module *is*
        # part of repro.concurrency, the one place REP015 allows it.
        self._mu = threading.Lock()
        self._held = threading.local()
        # Thread identity tokens.  ``threading.get_ident()`` values are
        # recycled once a thread exits, which would let a later worker
        # inherit a dead thread's clock (and silently merge their
        # accesses).  A token is handed out once per OS thread and
        # lives in thread-local storage, so it can never be reused.
        self._tid_mu = threading.Lock()
        self._tid_local = threading.local()
        self._tid_count = 0
        self._fields: Dict[Tuple[int, str], _FieldState] = {}
        self._class_names: Dict[Tuple[int, str], str] = {}
        self._lock_names: Dict[int, str] = {}
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._thread_tids: Dict[threading.Thread, int] = {}
        self._pending_forks: Dict[threading.Thread, Dict[int, int]] = {}
        self.races: List[RaceReport] = []
        self._obs_races: Optional[Any] = None

    # -- observability -------------------------------------------------

    def attach_obs(self, obs: Optional["Observability"]) -> None:
        """Bind the ``racecheck.races`` counter (mirrors ``attach_obs``
        everywhere else: ``None`` or metrics-off detaches)."""
        if obs is None or not obs.metrics_on:
            self._obs_races = None
            return
        self._obs_races = obs.registry.counter("racecheck.races")

    # -- thread identity -----------------------------------------------

    def _tid(self) -> int:
        """A unique, never-recycled token for the calling thread."""
        tid = getattr(self._tid_local, "value", None)
        if tid is None:
            with self._tid_mu:
                self._tid_count += 1
                tid = self._tid_count
            self._tid_local.value = tid
        result: int = tid
        return result

    # -- held-lock tracking (thread-local) -----------------------------

    def _held_list(self) -> List[Tuple[int, str]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        result: List[Tuple[int, str]] = stack
        return result

    def note_acquire(
        self, lock: object, mode: str = EXCLUSIVE_MODE, name: Optional[str] = None
    ) -> None:
        """The calling thread now holds ``lock`` in ``mode``."""
        if mode not in _MODES:
            raise ValueError(f"unknown lock mode {mode!r}")
        lid = id(lock)
        if lid not in self._lock_names:
            label = name if name is not None else type(lock).__name__
            self._lock_names[lid] = f"{label}@{lid:#x}"
        self._held_list().append((lid, mode))

    def note_release(self, lock: object) -> None:
        """The calling thread released ``lock`` (latest matching hold)."""
        stack = self._held_list()
        lid = id(lock)
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == lid:
                del stack[i]
                return
        # A release this thread never acquired: tolerated (locks may be
        # handed across threads by user code); nothing to unwind.

    def held_locks(self) -> List[str]:
        """Names of locks the calling thread currently holds (debugging)."""
        return [self._lock_names[lid] for lid, _mode in self._held_list()]

    # -- vector clocks (fork/join happens-before) ----------------------

    def _ensure_clock(self, tid: int) -> Dict[int, int]:
        vc = self._clocks.get(tid)
        if vc is None:
            vc = {tid: 1}
            current = threading.current_thread()
            snapshot = self._pending_forks.pop(current, None)
            if snapshot is not None:
                for other, clk in snapshot.items():
                    if vc.get(other, 0) < clk:
                        vc[other] = clk
            self._thread_tids[current] = tid
            self._clocks[tid] = vc
        return vc

    def note_fork(self, thread: threading.Thread) -> None:
        """Parent is about to ``thread.start()``: everything the parent
        did so far happens-before everything ``thread`` will do."""
        parent = self._tid()
        with self._mu:
            vc = self._ensure_clock(parent)
            self._pending_forks[thread] = dict(vc)
            vc[parent] = vc.get(parent, 0) + 1

    def note_join(self, thread: threading.Thread) -> None:
        """Parent returned from ``thread.join()``: everything ``thread``
        did happens-before everything the parent does next."""
        parent = self._tid()
        with self._mu:
            self._pending_forks.pop(thread, None)
            child_tid = self._thread_tids.pop(thread, None)
            if child_tid is None:
                return  # the child never touched the checker
            child_vc = self._clocks.get(child_tid, {})
            vc = self._ensure_clock(parent)
            for other, clk in child_vc.items():
                if vc.get(other, 0) < clk:
                    vc[other] = clk
            vc[parent] = vc.get(parent, 0) + 1

    # -- the Eraser state machine --------------------------------------

    def access(self, obj: object, field: str, write: bool) -> None:
        """Record one read/write of ``obj.field`` by the calling thread."""
        tid = self._tid()
        held = self._held_list()
        site = _cheap_site(write)
        with self._mu:
            vc = self._ensure_clock(tid)
            key = (id(obj), field)
            state = self._fields.get(key)
            if state is None:
                state = _FieldState()
                self._fields[key] = state
                self._class_names[key] = type(obj).__name__
            # Happens-before pruning: accessors ordered before this
            # access can never race with it.
            for other, clk in list(state.accessors.items()):
                if other != tid and vc.get(other, 0) >= clk:
                    del state.accessors[other]
            own = not state.accessors or set(state.accessors) == {tid}
            if own:
                if tid not in state.accessors:
                    # Fresh exclusive epoch (virgin, or every earlier
                    # accessor is HB-ordered before us): restart.
                    state.wrote = write
                    state.lockset = None
                else:
                    state.wrote = state.wrote or write
            else:
                # Genuinely shared: refine the candidate lockset.  A
                # write is only protected by write/exclusive holds; a
                # read by any hold.
                if write:
                    effective = frozenset(
                        lid for lid, mode in held if mode != READ_MODE
                    )
                else:
                    effective = frozenset(lid for lid, _mode in held)
                state.wrote = state.wrote or write
                state.lockset = (
                    effective
                    if state.lockset is None
                    else state.lockset & effective
                )
                if state.wrote and not state.lockset and not state.reported:
                    state.reported = True
                    # Full stack only here: the racing access is live,
                    # so the expensive capture runs once per report.
                    self._report(key, state, field, _capture_site(write))
            state.accessors[tid] = vc[tid]
            state.last_site = site

    def _report(
        self,
        key: Tuple[int, str],
        state: _FieldState,
        field: str,
        site: AccessSite,
    ) -> None:
        report = RaceReport(
            class_name=self._class_names.get(key, "<object>"),
            field=field,
            lockset=(),
            current=site,
            prior=state.last_site,
        )
        self.races.append(report)
        if self._obs_races is not None:
            self._obs_races.inc()

    # -- reporting -----------------------------------------------------

    @property
    def race_count(self) -> int:
        return len(self.races)

    def report(self) -> str:
        """All collected races rendered as linter-style diagnostics."""
        if not self.races:
            return "racecheck: no data races detected"
        return "\n".join(race.render() for race in self.races)

    def assert_no_races(self) -> None:
        """Raise ``RuntimeError`` with the full report if races exist."""
        if self.races:
            raise RuntimeError(self.report())

    def reset(self) -> None:
        """Forget all state (between independent test phases)."""
        with self._mu:
            self._fields.clear()
            self._class_names.clear()
            self._clocks.clear()
            self._thread_tids.clear()
            self._pending_forks.clear()
            self.races.clear()


class TrackedLock:
    """A mutex whose acquire/release notify the *active* checker.

    Constructed by :func:`repro.concurrency.primitives.make_lock` when
    race checking is (or may become) enabled; behaves exactly like the
    wrapped lock otherwise.  The checker is looked up at call time so a
    lock built before :func:`activate` is still tracked afterwards.
    """

    __slots__ = ("_inner",)

    def __init__(self, inner: Any) -> None:
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = bool(self._inner.acquire(blocking, timeout))
        if ok:
            checker = ACTIVE
            if checker is not None:
                checker.note_acquire(self, EXCLUSIVE_MODE)
        return ok

    def release(self) -> None:
        checker = ACTIVE
        if checker is not None:
            checker.note_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


#: The process-wide checker, or ``None`` when detection is off.  Read
#: directly on hot paths (one module-attribute load + ``None`` check).
ACTIVE: Optional[RaceChecker] = None

_ENV_FLAG = "REPRO_RACECHECK"


def env_enabled() -> bool:
    """True when ``REPRO_RACECHECK`` requests detection."""
    return os.environ.get(_ENV_FLAG, "") not in ("", "0")


def activate(checker: Optional[RaceChecker] = None) -> RaceChecker:
    """Install (and return) the process-wide checker."""
    global ACTIVE
    ACTIVE = checker if checker is not None else RaceChecker()
    return ACTIVE


def deactivate() -> None:
    """Disable detection (instrumented sites return to the no-op path)."""
    global ACTIVE
    ACTIVE = None


def active() -> Optional[RaceChecker]:
    """The installed checker, if any."""
    return ACTIVE


def from_env() -> Optional[RaceChecker]:
    """Activate from ``REPRO_RACECHECK`` if requested; return the
    active checker either way (``None`` when detection stays off)."""
    if ACTIVE is None and env_enabled():
        return activate()
    return ACTIVE
