"""Concurrent-throughput experiment (Section 5.6, Figure 16).

The paper runs 100 threads of mixed updates/queries against the RUM-tree
and the R*-tree and reports throughput as the update share grows: with
queries only the two trees are on par, but the R*-tree falls behind as
updates dominate because *"an update requires fewer locks than a query in
the RUM-tree, while it is not the case for the R*-tree"*.

This module reproduces that lock-granularity asymmetry with a discrete
simulation over real threads:

* the unit square is partitioned into spatial **cell granules** managed by
  a :class:`GranularLockManager` (standing in for DGL's node granules);
* a **query** read-locks the cells its window intersects;
* a **RUM-tree update** briefly latches the stamp counter and its memo
  bucket (in-memory structures, released before any disk time) and then
  write-locks only the single cell of the new position — the memo-based
  approach touches one insertion path;
* an **R*-tree update** write-locks the whole neighbourhood of cells its
  top-down deletion search may visit (multiple paths!) plus the insertion
  cell, and holds them across its disk I/O.

Each operation executes against the real tree under the tree's own
structure latch (``tree.latch``, write mode — the in-memory simulator
is not yet internally thread-safe), then *holds its granule locks*
while sleeping for its simulated I/O time — the number of leaf accesses
the operation actually incurred times ``io_latency``.  Python's GIL is
released during sleeps, so lock contention, not compute, determines
throughput, exactly the effect Figure 16 measures.

**Race detection.**  With ``REPRO_RACECHECK=1`` (or an explicitly
activated :mod:`~repro.concurrency.racecheck` checker) the harness
attaches the Eraser-style detector to the tree's ``attach_racecheck``
cascade and brackets every worker thread with fork/join
happens-before edges; :class:`MixedStressHarness` adds batch applies
and cleaning cycles to the thread mix so the detector sees every
mutation path the tree offers.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Sequence, Tuple

from repro.core.rum import RUMTree
from repro.rtree.geometry import Rect
from repro.workload.trace import Operation, QueryOp, UpdateOp

from . import racecheck
from .locks import READ, WRITE, GranularLockManager, ReadWriteLock


def _cells_for(
    rect: Rect, grid: int, pad: float = 0.0
) -> List[Hashable]:
    """All grid-cell granules intersecting ``rect`` grown by ``pad``."""
    xmin = max(0, int(math.floor((rect.xmin - pad) * grid)))
    ymin = max(0, int(math.floor((rect.ymin - pad) * grid)))
    xmax = min(grid - 1, int(math.floor((rect.xmax + pad) * grid)))
    ymax = min(grid - 1, int(math.floor((rect.ymax + pad) * grid)))
    return [
        ("cell", cx, cy)
        for cx in range(xmin, xmax + 1)
        for cy in range(ymin, ymax + 1)
    ]


@dataclass
class ThroughputResult:
    """Outcome of one concurrent run."""

    tree_name: str
    update_fraction: float
    n_threads: int
    operations: int
    elapsed_seconds: float

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds


class ConcurrentHarness:
    """Runs a mixed workload against one tree under granular locking."""

    def __init__(
        self,
        tree: Any,
        *,
        grid: int = 8,
        io_latency: float = 0.0005,
        search_lock_pad: float = 0.12,
    ) -> None:
        self.tree = tree
        self.grid = grid
        self.io_latency = io_latency
        self.search_lock_pad = search_lock_pad
        self.locks = GranularLockManager()
        # Structure serialisation: the tree's own latch when it has one
        # (every RTreeBase does), a private lock otherwise — so two
        # harnesses over one tree still exclude each other.
        latch = getattr(tree, "latch", None)
        self.tree_latch: ReadWriteLock = (
            latch if isinstance(latch, ReadWriteLock) else ReadWriteLock()
        )
        self._is_rum = isinstance(tree, RUMTree)
        # Race detection: opt-in via REPRO_RACECHECK=1 or an activated
        # checker; the attach cascade mirrors attach_obs.
        self.racecheck = racecheck.from_env()
        if self.racecheck is not None:
            attach = getattr(tree, "attach_racecheck", None)
            if attach is not None:
                attach(self.racecheck)

    # -- lock footprints -----------------------------------------------------

    def _update_brief_requests(
        self, op: UpdateOp
    ) -> Sequence[Tuple[Hashable, str]]:
        """Latch-like locks held only for an instant (Section 3.5): the
        stamp counter and the memo bucket are in-memory structures — a
        RUM-tree update locks them for the increment and the memo write,
        not for the duration of its disk I/O."""
        if not self._is_rum:
            return []
        return [
            ("stamp_counter", WRITE),
            (("memo_bucket", op.oid % self.tree.memo.n_buckets), WRITE),
        ]

    def _update_lock_requests(
        self, op: UpdateOp
    ) -> Sequence[Tuple[Hashable, str]]:
        requests: List[Tuple[Hashable, str]] = []
        if self._is_rum:
            # Memo-based update: a single insertion path — one spatial
            # granule held while its page I/O completes.
            requests.extend(
                (cell, WRITE) for cell in _cells_for(op.new_rect, self.grid)
            )
        else:
            # Top-down update: the deletion search follows multiple paths,
            # write-locking the old position's whole neighbourhood.
            requests.extend(
                (cell, WRITE)
                for cell in _cells_for(
                    op.old_rect, self.grid, pad=self.search_lock_pad
                )
            )
            requests.extend(
                (cell, WRITE) for cell in _cells_for(op.new_rect, self.grid)
            )
        return requests

    def _query_lock_requests(
        self, op: QueryOp
    ) -> Sequence[Tuple[Hashable, str]]:
        return [
            (cell, READ) for cell in _cells_for(op.window, self.grid)
        ]

    # -- execution ---------------------------------------------------------------

    def _execute(self, op: Operation) -> int:  # holds: tree_latch
        """Run the operation on the real tree, returning its leaf I/O.

        The caller holds ``tree_latch`` in write mode (the lock-order
        discipline is *granule locks, then structure latch* — see
        docs/CONCURRENCY.md).
        """
        stats = self.tree.stats
        before = stats.leaf_reads + stats.leaf_writes
        if isinstance(op, UpdateOp):
            self.tree.update_object(op.oid, op.old_rect, op.new_rect)
        else:
            self.tree.search(op.window)
        return stats.leaf_reads + stats.leaf_writes - before

    def perform(self, op: Operation) -> None:
        """Lock, execute, and hold the locks for the simulated I/O time."""
        if isinstance(op, UpdateOp):
            # Brief in-memory latches first (stamp counter, memo bucket):
            # acquired and released before any simulated disk time.
            brief = self._update_brief_requests(op)
            if brief:
                with self.locks.locked(brief):
                    pass
            requests = self._update_lock_requests(op)
        else:
            requests = self._query_lock_requests(op)
        with self.locks.locked(requests):
            with self.tree_latch.write():
                leaf_io = self._execute(op)
            if self.io_latency > 0:
                time.sleep(leaf_io * self.io_latency)

    def run(
        self, operations: Sequence[Any], n_threads: int = 16
    ) -> ThroughputResult:
        """Drain ``operations`` with ``n_threads`` workers; returns ops/s."""
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        cursor = {"next": 0}
        cursor_lock = threading.Lock()
        errors: List[BaseException] = []
        checker = self.racecheck

        def worker() -> None:
            while True:
                with cursor_lock:
                    i = cursor["next"]
                    if i >= len(operations):
                        return
                    cursor["next"] = i + 1
                try:
                    self.perform(operations[i])
                # Worker threads must capture every failure (including
                # SimulatedCrash) so the coordinator can re-raise the
                # first one after joining; nothing is swallowed.
                # lint: disable=REP001
                except BaseException as exc:  # surfaced after the join
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, name=f"harness-{k}")
            for k in range(n_threads)
        ]
        started = time.perf_counter()
        for thread in threads:
            # Fork edge: the workload built so far happens-before the
            # worker, so the detector never flags the build phase.
            if checker is not None:
                checker.note_fork(thread)
            thread.start()
        for thread in threads:
            thread.join()
            if checker is not None:
                checker.note_join(thread)
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        update_ops = sum(1 for op in operations if isinstance(op, UpdateOp))
        return ThroughputResult(
            tree_name=getattr(self.tree, "name", type(self.tree).__name__),
            update_fraction=update_ops / len(operations) if operations else 0.0,
            n_threads=n_threads,
            operations=len(operations),
            elapsed_seconds=elapsed,
        )


#: Tagged operations understood by :class:`MixedStressHarness`.
StressOp = Tuple[str, Any]


class MixedStressHarness(ConcurrentHarness):
    """Adds batch applies and cleaning cycles to the thread mix.

    The race detector's beat cop: updates, queries, ``apply_batch``
    and full cleaner cycles all run concurrently from worker threads,
    so every mutation path the RUM-tree offers — memo insert, WAL
    append, buffer writeback, cleaner drain, batch plan — executes
    under contention while the checker watches the annotated fields.

    Operations are ``(kind, payload)`` tuples built by
    :func:`build_mixed_ops`:

    * ``("update", UpdateOp)`` / ``("query", QueryOp)`` — as in the
      base harness;
    * ``("batch", [(oid, rect), ...])`` — one ``tree.apply_batch`` of
      update ops, write-locking every target cell (plus the brief
      stamp/memo latches) for the duration;
    * ``("clean", n)`` — ``n`` full cleaning cycles under the
      structure latch (no spatial granules: the cleaner walks the
      whole leaf ring).
    """

    def perform(self, op: Any) -> None:
        kind, payload = op
        if kind in ("update", "query"):
            super().perform(payload)
            return
        if kind == "batch":
            pairs: List[Tuple[int, Rect]] = payload
            brief: List[Tuple[Hashable, str]] = [("stamp_counter", WRITE)]
            if self._is_rum:
                brief.extend(
                    (("memo_bucket", oid % self.tree.memo.n_buckets), WRITE)
                    for oid, _rect in pairs
                )
                with self.locks.locked(brief):
                    pass
            requests: List[Tuple[Hashable, str]] = []
            for _oid, rect in pairs:
                requests.extend(
                    (cell, WRITE) for cell in _cells_for(rect, self.grid)
                )
            with self.locks.locked(requests):
                with self.tree_latch.write():
                    self.tree.apply_batch(
                        [("update", oid, rect) for oid, rect in pairs]
                    )
            return
        if kind == "clean":
            cycles: int = payload
            with self.tree_latch.write():
                for _ in range(cycles):
                    self.tree.cleaner.run_full_cycle()
            return
        raise ValueError(f"unknown stress op kind {kind!r}")


def build_mixed_ops(
    n_objects: int,
    n_ops: int,
    *,
    update_fraction: float = 0.5,
    batch_every: int = 12,
    batch_size: int = 8,
    clean_every: int = 40,
    seed: int = 7,
) -> Tuple[List[Tuple[int, Rect]], List[StressOp]]:
    """A seeded mixed workload for :class:`MixedStressHarness`.

    Returns ``(initial, ops)``: ``initial`` is the ``(oid, rect)`` load
    to insert before starting threads; ``ops`` interleaves updates,
    range queries, batches and cleaning at the requested cadence.
    """
    rng = random.Random(seed)

    def rect_at(x: float, y: float, w: float = 0.01) -> Rect:
        x = min(max(x, 0.0), 1.0 - w)
        y = min(max(y, 0.0), 1.0 - w)
        return Rect(x, y, x + w, y + w)

    positions: Dict[int, Rect] = {
        oid: rect_at(rng.random(), rng.random()) for oid in range(n_objects)
    }
    initial = sorted(positions.items())
    ops: List[StressOp] = []
    for i in range(n_ops):
        if clean_every and i and i % clean_every == 0:
            ops.append(("clean", 1))
            continue
        if batch_every and i and i % batch_every == 0:
            pairs: List[Tuple[int, Rect]] = []
            for _ in range(batch_size):
                oid = rng.randrange(n_objects)
                new = rect_at(rng.random(), rng.random())
                pairs.append((oid, new))
                positions[oid] = new
            ops.append(("batch", pairs))
            continue
        if rng.random() < update_fraction:
            oid = rng.randrange(n_objects)
            new = rect_at(rng.random(), rng.random())
            ops.append(("update", UpdateOp(oid, positions[oid], new)))
            positions[oid] = new
        else:
            x, y = rng.random() * 0.9, rng.random() * 0.9
            ops.append(("query", QueryOp(Rect(x, y, x + 0.1, y + 0.1))))
    return initial, ops
