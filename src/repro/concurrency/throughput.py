"""Concurrent-throughput experiment (Section 5.6, Figure 16).

The paper runs 100 threads of mixed updates/queries against the RUM-tree
and the R*-tree and reports throughput as the update share grows: with
queries only the two trees are on par, but the R*-tree falls behind as
updates dominate because *"an update requires fewer locks than a query in
the RUM-tree, while it is not the case for the R*-tree"*.

This module reproduces that lock-granularity asymmetry with a discrete
simulation over real threads:

* the unit square is partitioned into spatial **cell granules** managed by
  a :class:`GranularLockManager` (standing in for DGL's node granules);
* a **query** read-locks the cells its window intersects;
* a **RUM-tree update** briefly latches the stamp counter and its memo
  bucket (in-memory structures, released before any disk time) and then
  write-locks only the single cell of the new position — the memo-based
  approach touches one insertion path;
* an **R*-tree update** write-locks the whole neighbourhood of cells its
  top-down deletion search may visit (multiple paths!) plus the insertion
  cell, and holds them across its disk I/O.

Each operation executes against the real tree under the tree's own
structure latch — **write** mode for updates, **read** mode for
queries, so read-only operations genuinely overlap (the harness
switches the tree's buffer pool into shared-access mode, which
serialises the pool's internal cache mutations behind its own guard;
``ReadWriteLock`` has been read-reentrant since the race-detector PR).
The operation then *holds its granule locks* while sleeping for its
simulated I/O time — the number of leaf accesses it actually incurred
times ``io_latency``.  Python's GIL is released during sleeps, so lock
contention, not compute, determines throughput, exactly the effect
Figure 16 measures.  (Per-operation leaf I/O is read from the calling
thread's own tally — :meth:`~repro.storage.iostats.IOStats.thread_leaf_io`
— so the attribution stays exact even when read-mode queries overlap.)

:class:`OpenLoopHarness` is the serving-layer complement: a
multi-client **open-loop** load generator.  Arrivals are scheduled on a
fixed-rate clock that never waits for completions — exactly how
external client traffic behaves — and each operation's latency is
measured from its *scheduled* arrival, so queueing delay shows up in
the percentiles instead of being silently absorbed, avoiding classic
coordinated omission.

**Race detection.**  With ``REPRO_RACECHECK=1`` (or an explicitly
activated :mod:`~repro.concurrency.racecheck` checker) the harness
attaches the Eraser-style detector to the tree's ``attach_racecheck``
cascade and brackets every worker thread with fork/join
happens-before edges; :class:`MixedStressHarness` adds batch applies
and cleaning cycles to the thread mix so the detector sees every
mutation path the tree offers.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from repro.core.rum import RUMTree
from repro.rtree.geometry import Rect
from repro.workload.trace import Operation, QueryOp, UpdateOp

from . import racecheck
from .locks import READ, WRITE, GranularLockManager, ReadWriteLock


def _cells_for(
    rect: Rect, grid: int, pad: float = 0.0
) -> List[Hashable]:
    """All grid-cell granules intersecting ``rect`` grown by ``pad``."""
    xmin = max(0, int(math.floor((rect.xmin - pad) * grid)))
    ymin = max(0, int(math.floor((rect.ymin - pad) * grid)))
    xmax = min(grid - 1, int(math.floor((rect.xmax + pad) * grid)))
    ymax = min(grid - 1, int(math.floor((rect.ymax + pad) * grid)))
    return [
        ("cell", cx, cy)
        for cx in range(xmin, xmax + 1)
        for cy in range(ymin, ymax + 1)
    ]


@dataclass
class ThroughputResult:
    """Outcome of one concurrent run."""

    tree_name: str
    update_fraction: float
    n_threads: int
    operations: int
    elapsed_seconds: float

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds


class ConcurrentHarness:
    """Runs a mixed workload against one tree under granular locking."""

    def __init__(
        self,
        tree: Any,
        *,
        grid: int = 8,
        io_latency: float = 0.0005,
        search_lock_pad: float = 0.12,
    ) -> None:
        self.tree = tree
        self.grid = grid
        self.io_latency = io_latency
        self.search_lock_pad = search_lock_pad
        self.locks = GranularLockManager()
        # Structure serialisation: the tree's own latch when it has one
        # (every RTreeBase does), a private lock otherwise — so two
        # harnesses over one tree still exclude each other.
        latch = getattr(tree, "latch", None)
        self.tree_latch: ReadWriteLock = (
            latch if isinstance(latch, ReadWriteLock) else ReadWriteLock()
        )
        self._is_rum = isinstance(tree, RUMTree)
        # Queries run under the latch in read mode, so the buffer pool
        # must serialise its own cache mutations across them.
        buffer = getattr(tree, "buffer", None)
        if buffer is not None:
            buffer.enable_shared_access()
        # Race detection: opt-in via REPRO_RACECHECK=1 or an activated
        # checker; the attach cascade mirrors attach_obs.
        self.racecheck = racecheck.from_env()
        if self.racecheck is not None:
            attach = getattr(tree, "attach_racecheck", None)
            if attach is not None:
                attach(self.racecheck)

    # -- lock footprints -----------------------------------------------------

    def _update_brief_requests(
        self, op: UpdateOp
    ) -> Sequence[Tuple[Hashable, str]]:
        """Latch-like locks held only for an instant (Section 3.5): the
        stamp counter and the memo bucket are in-memory structures — a
        RUM-tree update locks them for the increment and the memo write,
        not for the duration of its disk I/O."""
        if not self._is_rum:
            return []
        return [
            ("stamp_counter", WRITE),
            (("memo_bucket", op.oid % self.tree.memo.n_buckets), WRITE),
        ]

    def _update_lock_requests(
        self, op: UpdateOp
    ) -> Sequence[Tuple[Hashable, str]]:
        requests: List[Tuple[Hashable, str]] = []
        if self._is_rum:
            # Memo-based update: a single insertion path — one spatial
            # granule held while its page I/O completes.
            requests.extend(
                (cell, WRITE) for cell in _cells_for(op.new_rect, self.grid)
            )
        else:
            # Top-down update: the deletion search follows multiple paths,
            # write-locking the old position's whole neighbourhood.
            requests.extend(
                (cell, WRITE)
                for cell in _cells_for(
                    op.old_rect, self.grid, pad=self.search_lock_pad
                )
            )
            requests.extend(
                (cell, WRITE) for cell in _cells_for(op.new_rect, self.grid)
            )
        return requests

    def _query_lock_requests(
        self, op: QueryOp
    ) -> Sequence[Tuple[Hashable, str]]:
        return [
            (cell, READ) for cell in _cells_for(op.window, self.grid)
        ]

    # -- execution ---------------------------------------------------------------

    def _execute(self, op: Operation) -> int:  # holds: tree_latch
        """Run the operation on the real tree, returning its leaf I/O.

        The caller holds ``tree_latch`` — write mode for updates, read
        mode for queries (the lock-order discipline is *granule locks,
        then structure latch* — see docs/CONCURRENCY.md).  The leaf I/O
        is the *calling thread's* tally, so the attribution stays exact
        even when read-mode queries overlap on the shared counters.
        """
        stats = self.tree.stats
        before = stats.thread_leaf_io()
        if isinstance(op, UpdateOp):
            self.tree.update_object(op.oid, op.old_rect, op.new_rect)
        else:
            self.tree.search(op.window)
        return stats.thread_leaf_io() - before

    def perform(self, op: Operation) -> None:
        """Lock, execute, and hold the locks for the simulated I/O time."""
        if isinstance(op, UpdateOp):
            # Brief in-memory latches first (stamp counter, memo bucket):
            # acquired and released before any simulated disk time.
            brief = self._update_brief_requests(op)
            if brief:
                with self.locks.locked(brief):
                    pass
            requests = self._update_lock_requests(op)
            with self.locks.locked(requests):
                with self.tree_latch.write():
                    leaf_io = self._execute(op)
                if self.io_latency > 0:
                    time.sleep(leaf_io * self.io_latency)
            return
        # Read-only queries share the structure latch: the buffer pool
        # is in shared-access mode (see __init__), so concurrent
        # searches only exclude writers, not each other.
        requests = self._query_lock_requests(op)
        with self.locks.locked(requests):
            with self.tree_latch.read():
                leaf_io = self._execute(op)
            if self.io_latency > 0:
                time.sleep(leaf_io * self.io_latency)

    def run(
        self, operations: Sequence[Any], n_threads: int = 16
    ) -> ThroughputResult:
        """Drain ``operations`` with ``n_threads`` workers; returns ops/s."""
        if n_threads <= 0:
            raise ValueError("n_threads must be positive")
        cursor = {"next": 0}
        cursor_lock = threading.Lock()
        errors: List[BaseException] = []
        checker = self.racecheck

        def worker() -> None:
            while True:
                with cursor_lock:
                    i = cursor["next"]
                    if i >= len(operations):
                        return
                    cursor["next"] = i + 1
                try:
                    self.perform(operations[i])
                # Worker threads must capture every failure (including
                # SimulatedCrash) so the coordinator can re-raise the
                # first one after joining; nothing is swallowed.
                # lint: disable=REP001
                except BaseException as exc:  # surfaced after the join
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, name=f"harness-{k}")
            for k in range(n_threads)
        ]
        started = time.perf_counter()
        for thread in threads:
            # Fork edge: the workload built so far happens-before the
            # worker, so the detector never flags the build phase.
            if checker is not None:
                checker.note_fork(thread)
            thread.start()
        for thread in threads:
            thread.join()
            if checker is not None:
                checker.note_join(thread)
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        update_ops = sum(1 for op in operations if isinstance(op, UpdateOp))
        return ThroughputResult(
            tree_name=getattr(self.tree, "name", type(self.tree).__name__),
            update_fraction=update_ops / len(operations) if operations else 0.0,
            n_threads=n_threads,
            operations=len(operations),
            elapsed_seconds=elapsed,
        )


#: Tagged operations understood by :class:`MixedStressHarness`.
StressOp = Tuple[str, Any]


class MixedStressHarness(ConcurrentHarness):
    """Adds batch applies and cleaning cycles to the thread mix.

    The race detector's beat cop: updates, queries, ``apply_batch``
    and full cleaner cycles all run concurrently from worker threads,
    so every mutation path the RUM-tree offers — memo insert, WAL
    append, buffer writeback, cleaner drain, batch plan — executes
    under contention while the checker watches the annotated fields.

    Operations are ``(kind, payload)`` tuples built by
    :func:`build_mixed_ops`:

    * ``("update", UpdateOp)`` / ``("query", QueryOp)`` — as in the
      base harness;
    * ``("batch", [(oid, rect), ...])`` — one ``tree.apply_batch`` of
      update ops, write-locking every target cell (plus the brief
      stamp/memo latches) for the duration;
    * ``("clean", n)`` — ``n`` full cleaning cycles under the
      structure latch (no spatial granules: the cleaner walks the
      whole leaf ring).
    """

    def perform(self, op: Any) -> None:
        kind, payload = op
        if kind in ("update", "query"):
            super().perform(payload)
            return
        if kind == "batch":
            pairs: List[Tuple[int, Rect]] = payload
            brief: List[Tuple[Hashable, str]] = [("stamp_counter", WRITE)]
            if self._is_rum:
                brief.extend(
                    (("memo_bucket", oid % self.tree.memo.n_buckets), WRITE)
                    for oid, _rect in pairs
                )
                with self.locks.locked(brief):
                    pass
            requests: List[Tuple[Hashable, str]] = []
            for _oid, rect in pairs:
                requests.extend(
                    (cell, WRITE) for cell in _cells_for(rect, self.grid)
                )
            with self.locks.locked(requests):
                with self.tree_latch.write():
                    self.tree.apply_batch(
                        [("update", oid, rect) for oid, rect in pairs]
                    )
            return
        if kind == "clean":
            cycles: int = payload
            with self.tree_latch.write():
                for _ in range(cycles):
                    self.tree.cleaner.run_full_cycle()
            return
        raise ValueError(f"unknown stress op kind {kind!r}")


def build_mixed_ops(
    n_objects: int,
    n_ops: int,
    *,
    update_fraction: float = 0.5,
    batch_every: int = 12,
    batch_size: int = 8,
    clean_every: int = 40,
    seed: int = 7,
) -> Tuple[List[Tuple[int, Rect]], List[StressOp]]:
    """A seeded mixed workload for :class:`MixedStressHarness`.

    Returns ``(initial, ops)``: ``initial`` is the ``(oid, rect)`` load
    to insert before starting threads; ``ops`` interleaves updates,
    range queries, batches and cleaning at the requested cadence.
    """
    rng = random.Random(seed)

    def rect_at(x: float, y: float, w: float = 0.01) -> Rect:
        x = min(max(x, 0.0), 1.0 - w)
        y = min(max(y, 0.0), 1.0 - w)
        return Rect(x, y, x + w, y + w)

    positions: Dict[int, Rect] = {
        oid: rect_at(rng.random(), rng.random()) for oid in range(n_objects)
    }
    initial = sorted(positions.items())
    ops: List[StressOp] = []
    for i in range(n_ops):
        if clean_every and i and i % clean_every == 0:
            ops.append(("clean", 1))
            continue
        if batch_every and i and i % batch_every == 0:
            pairs: List[Tuple[int, Rect]] = []
            for _ in range(batch_size):
                oid = rng.randrange(n_objects)
                new = rect_at(rng.random(), rng.random())
                pairs.append((oid, new))
                positions[oid] = new
            ops.append(("batch", pairs))
            continue
        if rng.random() < update_fraction:
            oid = rng.randrange(n_objects)
            new = rect_at(rng.random(), rng.random())
            ops.append(("update", UpdateOp(oid, positions[oid], new)))
            positions[oid] = new
        else:
            x, y = rng.random() * 0.9, rng.random() * 0.9
            ops.append(("query", QueryOp(Rect(x, y, x + 0.1, y + 0.1))))
    return initial, ops


# ---------------------------------------------------------------------------
# Open-loop latency benchmark (the serving layer's load generator)
# ---------------------------------------------------------------------------


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted data (the same
    estimator as the obs registry histogram and bench_compare)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class OpenLoopResult:
    """Outcome of one open-loop run.

    ``latencies_ms`` is sorted ascending; each sample measures
    completion minus *scheduled* arrival, so time an operation spent
    queued behind a saturated server counts against it (no coordinated
    omission).
    """

    n_clients: int
    operations: int
    #: Scheduled arrival rate (ops/s); ``inf`` = every arrival due
    #: immediately (the saturation probe).
    offered_rate: float
    elapsed_seconds: float
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def achieved_rate(self) -> float:
        """Completions per second over the whole run."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.operations / self.elapsed_seconds

    def percentile_ms(self, q: float) -> float:
        return percentile(self.latencies_ms, q)

    def report(self) -> Dict[str, float]:
        """The latency percentiles the serve benchmark publishes."""
        return {
            "p50_ms": self.percentile_ms(0.50),
            "p95_ms": self.percentile_ms(0.95),
            "p99_ms": self.percentile_ms(0.99),
            "max_ms": self.latencies_ms[-1] if self.latencies_ms else 0.0,
        }


#: Applies one workload operation; returned by the client factory.
ExecuteFn = Callable[[Any], None]


class OpenLoopHarness:
    """Multi-client open-loop load generator.

    ``client_factory(k)`` is called once inside each of the
    ``n_clients`` worker threads and returns that client's execute
    function — the place to open a per-client socket connection (or to
    close over a shared in-process router).  Operation ``i`` of the
    workload is scheduled at ``start + i / rate`` and handed to client
    ``i % n_clients``; a client that falls behind its schedule executes
    late arrivals immediately, and the lateness is charged to their
    latency.  With ``rate=float("inf")`` every arrival is due at the
    start, which turns the run into a saturation probe: the achieved
    rate is the system's capacity at this concurrency.
    """

    def __init__(
        self,
        client_factory: Callable[[int], ExecuteFn],
        *,
        n_clients: int = 8,
    ) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        self.client_factory = client_factory
        self.n_clients = n_clients
        self.racecheck = racecheck.from_env()

    def run(
        self, operations: Sequence[Any], rate: float
    ) -> OpenLoopResult:
        """Drive ``operations`` at ``rate`` ops/s; returns latencies."""
        if rate <= 0:
            raise ValueError("rate must be positive (use inf to saturate)")
        interval = 0.0 if math.isinf(rate) else 1.0 / rate
        n = len(operations)
        per_client: List[List[float]] = [[] for _ in range(self.n_clients)]
        errors: List[BaseException] = []
        checker = self.racecheck
        start_barrier = threading.Barrier(self.n_clients + 1)

        def client(k: int, start_holder: List[float]) -> None:
            try:
                execute = self.client_factory(k)
                latencies = per_client[k]
                start_barrier.wait()  # ready: connection built
                start_barrier.wait()  # go: start stamp published
                start = start_holder[0]
                for i in range(k, n, self.n_clients):
                    due = start + i * interval
                    now = time.perf_counter()
                    if now < due:
                        time.sleep(due - now)
                    execute(operations[i])
                    latencies.append(
                        (time.perf_counter() - due) * 1000.0
                    )
            # Client threads must capture every failure (including
            # SimulatedCrash) so the coordinator can re-raise the first
            # one after joining; nothing is swallowed.
            # lint: disable=REP001
            except BaseException as exc:  # surfaced after the join
                errors.append(exc)

        start_holder: List[float] = [0.0]
        threads = [
            threading.Thread(
                target=client,
                args=(k, start_holder),
                name=f"openloop-{k}",
            )
            for k in range(self.n_clients)
        ]
        for thread in threads:
            # Fork edge: workload construction happens-before the client.
            if checker is not None:
                checker.note_fork(thread)
            thread.start()
        # The clock starts after every client has built its connection,
        # so connection setup never counts as scheduling lateness.  Two
        # barrier phases: the first proves every client is ready, the
        # stamp lands between them, the second publishes it.
        start_barrier.wait()
        started = time.perf_counter()
        start_holder[0] = started
        start_barrier.wait()
        for thread in threads:
            thread.join()
            if checker is not None:
                checker.note_join(thread)
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        merged = sorted(
            sample for samples in per_client for sample in samples
        )
        return OpenLoopResult(
            n_clients=self.n_clients,
            operations=n,
            offered_rate=rate,
            elapsed_seconds=elapsed,
            latencies_ms=merged,
        )
