"""Figure 13 — performance vs. the extent of the indexed objects.

Objects become squares whose side (the *extent*) grows from 0 (points)
upwards.  Expected shapes (Section 5.3): the R*-tree's update cost grows
with the extent (larger MBRs → more paths searched by the top-down
deletion); the FUR-tree's update cost does not grow (larger node MBRs →
more in-place updates); the RUM-tree is flat and cheapest (14–25% of the
R*-tree in the paper).  The Update-Memo size decreases with the extent
because clean-upon-touch hits the original node more often.

Scale note: the paper sweeps extents up to 0.01 ≈ 1.2x its leaf-MBR side
(2M objects).  At the simulator's population the leaves are larger, so
the default sweep extends to 0.04 to cover the same extent-to-leaf-size
regime (see DESIGN.md on scale substitution).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.workload.objects import default_network_workload

from .comparison import overall_comparison, sweep_comparison
from .harness import ExperimentResult, scaled

DEFAULT_EXTENTS = (0.0, 0.01, 0.02, 0.04)
DEFAULT_RATIOS = ((1, 100), (1, 10), (1, 1), (10, 1), (100, 1), (10000, 1))


def run_fig13(
    num_objects: int = 8000,
    node_size: int = 2048,
    extents: Sequence[float] = DEFAULT_EXTENTS,
    moving_distance: float = 0.01,
    seed: int = 31,
) -> ExperimentResult:
    """Panels (a), (b), (d): sweep the object extent."""
    n = scaled(num_objects)

    def factory(extent: float):
        return (
            default_network_workload(
                n,
                moving_distance=moving_distance,
                extent=extent,
                seed=seed,
            ),
            n,
        )

    return sweep_comparison(
        "Figure 13(a,b,d)",
        "update I/O, search I/O and auxiliary size vs object extent",
        "extent",
        extents,
        factory,
        node_size=node_size,
    )


def run_fig13_overall(
    num_objects: int = 6000,
    node_size: int = 2048,
    ratios: Sequence[Tuple[int, int]] = DEFAULT_RATIOS,
    extent: float = 0.01,
    moving_distance: float = 0.01,
    seed: int = 31,
) -> ExperimentResult:
    """Panel (c): overall cost vs update:query ratio at extent 0.01."""
    n = scaled(num_objects)

    def factory():
        return (
            default_network_workload(
                n,
                moving_distance=moving_distance,
                extent=extent,
                seed=seed,
            ),
            n,
        )

    return overall_comparison(
        "Figure 13(c)",
        f"overall I/O per operation vs update:query ratio (extent {extent})",
        ratios,
        factory,
        node_size=node_size,
    )
