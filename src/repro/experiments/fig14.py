"""Figure 14 — scalability with the number of indexed objects.

The population grows (the paper: 2M → 20M; the simulator sweeps one decade
at its own scale) and the same four panels are reported.  Expected shapes
(Section 5.4): the R*-tree's update cost grows with the population (more
nodes to search top-down); the FUR-tree's stays near its top-down
upper bound; the RUM-tree's is flat — insertion cost and amortised
cleaning cost are both independent of the tree size (Section 4.2.3).  The
Update-Memo size grows linearly with the population because the garbage
*ratio* is population-independent.
"""

from __future__ import annotations

import random
import tempfile
from typing import Sequence, Tuple

from repro.core.memo_lsm import SpillingUpdateMemo
from repro.storage.iostats import IOStats
from repro.workload.objects import default_network_workload

from .comparison import overall_comparison, sweep_comparison
from .harness import ExperimentResult, scaled

DEFAULT_POPULATIONS = (2500, 5000, 10000, 20000)
DEFAULT_RATIOS = ((1, 100), (1, 10), (1, 1), (10, 1), (100, 1), (10000, 1))

#: Populations for the disk-tiered memo leg.  The paper's Figure 14 runs
#: 2M-20M objects against a memo that must stay in RAM; the spilling
#: memo removes that constraint, so this sweep extends one decade past
#: the tree sweep up to one million objects (scaled by REPRO_BENCH_SCALE).
MEMO_POPULATIONS = (10_000, 100_000, 1_000_000)


def run_fig14(
    populations: Sequence[int] = DEFAULT_POPULATIONS,
    node_size: int = 2048,
    moving_distance: float = 0.01,
    seed: int = 37,
) -> ExperimentResult:
    """Panels (a), (b), (d): sweep the number of objects."""

    def factory(population: float):
        n = scaled(int(population))
        return (
            default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            ),
            n,
        )

    return sweep_comparison(
        "Figure 14(a,b,d)",
        "update I/O, search I/O and memo size vs number of objects",
        "num_objects_swept",
        list(populations),
        factory,
        node_size=node_size,
    )


def run_fig14_overall(
    population: int = 10000,
    node_size: int = 2048,
    ratios: Sequence[Tuple[int, int]] = DEFAULT_RATIOS,
    moving_distance: float = 0.01,
    seed: int = 37,
) -> ExperimentResult:
    """Panel (c): overall cost vs update:query ratio at the largest
    population."""
    n = scaled(population)

    def factory():
        return (
            default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            ),
            n,
        )

    return overall_comparison(
        "Figure 14(c)",
        f"overall I/O per operation vs update:query ratio ({n} objects)",
        ratios,
        factory,
        node_size=node_size,
        ops_factor=1.0,
    )


def run_fig14_memo(
    populations: Sequence[int] = MEMO_POPULATIONS,
    spill_budget: int = 64 * 1024,
    compact_threshold: int = 4,
    update_factor: float = 0.5,
    probe_sample: int = 2000,
    seed: int = 37,
) -> ExperimentResult:
    """Panel (d) extended: memo scalability with a *fixed* RAM budget.

    Figure 14(d) shows the Update Memo growing linearly with the object
    population — which caps how far the in-RAM memo scales.  This leg
    reruns the memo half of the sweep against the LSM-tiered
    :class:`~repro.core.memo_lsm.SpillingUpdateMemo`: every object gets
    one update plus ``update_factor`` random re-updates, while RAM is
    pinned at ``spill_budget`` bytes and overflow spills to sorted runs.
    Reported per population: the logical memo size (still linear, as the
    paper predicts), the *peak* RAM footprint (must stay under budget —
    the run raises if it ever does not), the run-tier shape, and the
    probe cost of ``latest_stamp`` over the spilled tier (pages per
    probe, Bloom false-positive rate).
    """
    rows = []
    for population in populations:
        n = scaled(int(population))
        rng = random.Random(seed)
        stats = IOStats()
        with tempfile.TemporaryDirectory(prefix="fig14memo-") as tmp:
            memo = SpillingUpdateMemo(
                tmp,
                spill_budget=spill_budget,
                compact_threshold=compact_threshold,
                stats=stats,
            )
            stamp = 0
            peak_ram = 0
            for oid in range(n):
                stamp += 1
                memo.record_update(oid, stamp)
                ram = memo.ram_size_bytes()
                if ram > peak_ram:
                    peak_ram = ram
            for _ in range(int(n * update_factor)):
                stamp += 1
                memo.record_update(rng.randrange(n), stamp)
                ram = memo.ram_size_bytes()
                if ram > peak_ram:
                    peak_ram = ram
            if peak_ram > spill_budget:
                raise RuntimeError(
                    f"fig14memo: peak memo RAM {peak_ram} exceeded the "
                    f"{spill_budget}-byte budget at {n} objects"
                )
            probes_before = memo.run_probe_count
            reads_before = stats.memo_reads
            hits = 0
            for _ in range(probe_sample):
                if memo.latest_stamp(rng.randrange(n)) is not None:
                    hits += 1
            # Misses exercise the Bloom filters: absent oids should be
            # rejected by the in-RAM summaries, not by run page reads.
            for miss in range(n, n + probe_sample):
                memo.latest_stamp(miss)
            probed_pages = memo.run_probe_count - probes_before
            rows.append(
                {
                    "num_objects": n,
                    "memo_entries": len(memo),
                    "memo_bytes": memo.size_bytes(),
                    "peak_ram_bytes": peak_ram,
                    "spill_budget": spill_budget,
                    "runs": len(memo._runs),
                    "spilled_pages": sum(r.pages for r in memo._runs),
                    "flush_writes": stats.memo_writes,
                    "probe_pages_per_lookup": round(
                        probed_pages / max(1, 2 * probe_sample), 3
                    ),
                    "bloom_fp": memo.bloom_fp_count,
                    "probe_hits": hits,
                }
            )
            memo.close()
    return ExperimentResult(
        experiment="Figure 14(d) extended",
        description=(
            "disk-tiered memo scalability: logical size grows linearly, "
            f"RAM pinned at {spill_budget} bytes"
        ),
        rows=rows,
    )
