"""Figure 14 — scalability with the number of indexed objects.

The population grows (the paper: 2M → 20M; the simulator sweeps one decade
at its own scale) and the same four panels are reported.  Expected shapes
(Section 5.4): the R*-tree's update cost grows with the population (more
nodes to search top-down); the FUR-tree's stays near its top-down
upper bound; the RUM-tree's is flat — insertion cost and amortised
cleaning cost are both independent of the tree size (Section 4.2.3).  The
Update-Memo size grows linearly with the population because the garbage
*ratio* is population-independent.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.workload.objects import default_network_workload

from .comparison import overall_comparison, sweep_comparison
from .harness import ExperimentResult, scaled

DEFAULT_POPULATIONS = (2500, 5000, 10000, 20000)
DEFAULT_RATIOS = ((1, 100), (1, 10), (1, 1), (10, 1), (100, 1), (10000, 1))


def run_fig14(
    populations: Sequence[int] = DEFAULT_POPULATIONS,
    node_size: int = 2048,
    moving_distance: float = 0.01,
    seed: int = 37,
) -> ExperimentResult:
    """Panels (a), (b), (d): sweep the number of objects."""

    def factory(population: float):
        n = scaled(int(population))
        return (
            default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            ),
            n,
        )

    return sweep_comparison(
        "Figure 14(a,b,d)",
        "update I/O, search I/O and memo size vs number of objects",
        "num_objects_swept",
        list(populations),
        factory,
        node_size=node_size,
    )


def run_fig14_overall(
    population: int = 10000,
    node_size: int = 2048,
    ratios: Sequence[Tuple[int, int]] = DEFAULT_RATIOS,
    moving_distance: float = 0.01,
    seed: int = 37,
) -> ExperimentResult:
    """Panel (c): overall cost vs update:query ratio at the largest
    population."""
    n = scaled(population)

    def factory():
        return (
            default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            ),
            n,
        )

    return overall_comparison(
        "Figure 14(c)",
        f"overall I/O per operation vs update:query ratio ({n} objects)",
        ratios,
        factory,
        node_size=node_size,
        ops_factor=1.0,
    )
