"""Figure 10 — effect of the inspection ratio on the RUM-tree.

Sweeps the garbage cleaner's inspection ratio from 0% to 100% for both
RUM-tree variants and reports (a) the average update I/O and (b) the
garbage ratio, plus the Update-Memo size.  Expected shape (Section 5.1.1):
update I/O grows with ir; the garbage ratio collapses by ir ≈ 20% (the
configuration the rest of the paper uses); the clean-upon-touch variant
matches the token variant's I/O while achieving far lower garbage ratios.
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.objects import default_network_workload

from .harness import (
    ExperimentResult,
    TREE_LABELS,
    load_tree,
    make_tree,
    measure_updates,
    scaled,
)

DEFAULT_RATIOS = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def run_fig10(
    node_size: int = 2048,
    num_objects: int = 8000,
    updates_per_object: float = 3.0,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    moving_distance: float = 0.01,
    seed: int = 11,
) -> ExperimentResult:
    """Run the Figure-10 sweep; one row per (ir, RUM variant)."""
    result = ExperimentResult(
        experiment="Figure 10",
        description="RUM-tree update I/O and garbage ratio vs inspection ratio",
    )
    n = scaled(num_objects)
    n_updates = max(16, int(n * updates_per_object))
    for ir in ratios:
        for kind in ("rum_token", "rum_touch"):
            workload = default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            )
            tree = make_tree(kind, node_size=node_size, inspection_ratio=ir)
            load_tree(tree, workload.initial())
            cost = measure_updates(tree, workload, n_updates)
            result.rows.append(
                {
                    "inspection_ratio": ir,
                    "tree": TREE_LABELS[kind],
                    "update_io": cost.io_per_update,
                    "garbage_ratio": tree.garbage_ratio(n),
                    "memo_entries": len(tree.memo),
                    "memo_kb": tree.memo_size_bytes() / 1024.0,
                    "leaves": tree.num_leaf_nodes(),
                }
            )
    return result
