"""Figure 16 — throughput under concurrent accesses (RUM-tree vs R*-tree).

Threads run mixed workloads whose update share sweeps from 0% (queries
only) to 100% (updates only).  Expected shape (Section 5.6): comparable
throughput at 0% updates; as the update share rises, the R*-tree's
throughput falls — its top-down updates exclusively lock the whole
neighbourhood that the multi-path deletion search may visit — while the
RUM-tree's rises, because a memo-based update locks a single insertion
path plus one memo bucket.  The FUR-tree is not measured, matching the
paper ("insufficient knowledge about concurrency control in the
FUR-tree").
"""

from __future__ import annotations

from typing import Sequence

from repro.concurrency.throughput import ConcurrentHarness
from repro.workload.objects import default_network_workload
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import mixed_trace

from .harness import (
    ExperimentResult,
    TREE_LABELS,
    load_tree,
    make_tree,
    scaled,
)

DEFAULT_UPDATE_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run_fig16(
    num_objects: int = 2000,
    node_size: int = 2048,
    total_ops: int = 800,
    n_threads: int = 16,
    io_latency: float = 0.0004,
    update_fractions: Sequence[float] = DEFAULT_UPDATE_FRACTIONS,
    query_side: float = 0.05,
    moving_distance: float = 0.02,
    seed: int = 47,
) -> ExperimentResult:
    """One row per (update fraction, tree) with the measured throughput."""
    result = ExperimentResult(
        experiment="Figure 16",
        description="throughput vs update percentage under concurrent access",
    )
    n = scaled(num_objects)
    ops = scaled(total_ops)
    for fraction in update_fractions:
        for kind in ("rum_touch", "rstar"):
            workload = default_network_workload(
                n, moving_distance=moving_distance, seed=seed
            )
            tree = make_tree(kind, node_size=node_size)
            load_tree(tree, workload.initial())
            trace = mixed_trace(
                workload,
                RangeQueryGenerator(side=query_side, seed=53),
                ops,
                fraction,
                seed=59,
            )
            harness = ConcurrentHarness(tree, io_latency=io_latency)
            outcome = harness.run(trace, n_threads=n_threads)
            result.rows.append(
                {
                    "update_pct": round(100 * fraction),
                    "tree": TREE_LABELS[kind],
                    "ops_per_s": outcome.ops_per_second,
                    "elapsed_s": outcome.elapsed_seconds,
                    "threads": n_threads,
                    "operations": ops,
                }
            )
    return result
