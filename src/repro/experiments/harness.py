"""Shared experiment machinery: tree construction, loading, measurement.

Every figure driver uses the same primitives so that all trees see
identical workloads and all metrics are computed the same way:

* :func:`make_tree` — build one of the four evaluated index variants
  ("rstar", "fur", "rum_token", "rum_touch") on a fresh storage stack;
* :func:`load_tree` — bulk-load the initial object population;
* :func:`measure_updates` — average per-update disk accesses and CPU time
  over an update stream;
* :func:`measure_queries` — average per-query disk accesses;
* :func:`run_trace` — replay a mixed update/query trace.

The paper's absolute workload sizes (2M–20M objects, 100k queries) are far
beyond a pure-Python simulator's single-run budget; the drivers default to
thousands of objects and scale every count by ``REPRO_BENCH_SCALE``
(float, default 1.0), so the suite can be run larger when time allows.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.rum import RUMTree
from repro.factory import build_fur_tree, build_rstar_tree, build_rum_tree
from repro.obs import Observability, get_default_obs
from repro.storage.iostats import IOSnapshot
from repro.workload.queries import RangeQueryGenerator
from repro.workload.trace import Operation, UpdateOp

#: Names of the evaluated index variants (Section 5 terminology).
TREE_KINDS = ("rstar", "fur", "rum_token", "rum_touch")

TREE_LABELS = {
    "rstar": "R*-tree",
    "fur": "FUR-tree",
    "rum_token": "RUM-tree(token)",
    "rum_touch": "RUM-tree(touch)",
}


#: Malformed ``REPRO_BENCH_SCALE`` values already warned about, so a bad
#: setting produces exactly one warning per process, not one per call.
_warned_bench_scales: set = set()


def bench_scale() -> float:
    """Global workload multiplier from the ``REPRO_BENCH_SCALE`` env var.

    A value that does not parse as a float falls back to 1.0 with a
    one-time :class:`RuntimeWarning` naming the offending value — a typo
    in the variable should not silently run the full-size workload.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        return max(0.01, float(raw))
    except ValueError:
        if raw not in _warned_bench_scales:
            _warned_bench_scales.add(raw)
            warnings.warn(
                f"ignoring malformed REPRO_BENCH_SCALE={raw!r}; "
                f"using scale 1.0",
                RuntimeWarning,
                stacklevel=2,
            )
        return 1.0


def scaled(count: int, scale: Optional[float] = None) -> int:
    """Scale a workload count, keeping it at a sane minimum."""
    factor = bench_scale() if scale is None else scale
    return max(16, int(count * factor))


def make_tree(
    kind: str,
    node_size: int = 8192,
    inspection_ratio: float = 0.2,
    fur_extension: float = 0.01,
    obs: Optional[Observability] = None,
    **extra,
):
    """Construct one evaluated index variant on a fresh storage stack.

    When no ``obs`` is given, the process-default observability (set by
    the CLI's ``--obs-out``/``--obs-level``) is attached, so every figure
    driver emits telemetry without threading a parameter through.
    """
    if obs is None:
        obs = get_default_obs()
    if obs is not None:
        extra.setdefault("obs", obs)
    if kind == "rstar":
        return build_rstar_tree(node_size=node_size, **extra)
    if kind == "fur":
        return build_fur_tree(
            node_size=node_size, extension=fur_extension, **extra
        )
    if kind == "rum_token":
        return build_rum_tree(
            node_size=node_size,
            inspection_ratio=inspection_ratio,
            clean_upon_touch=False,
            **extra,
        )
    if kind == "rum_touch":
        return build_rum_tree(
            node_size=node_size,
            inspection_ratio=inspection_ratio,
            clean_upon_touch=True,
            **extra,
        )
    raise ValueError(f"unknown tree kind {kind!r}; expected {TREE_KINDS}")


def load_tree(tree, initial: Iterable) -> int:
    """Insert the initial population; returns the number of objects."""
    count = 0
    for oid, rect in initial:
        tree.insert_object(oid, rect)
        count += 1
    return count


@dataclass
class UpdateMeasurement:
    """Averaged update-cost metrics over one measured stream."""

    updates: int
    io: IOSnapshot
    cpu_seconds: float

    @property
    def io_per_update(self) -> float:
        return self.io.counted_total / self.updates if self.updates else 0.0

    @property
    def leaf_io_per_update(self) -> float:
        return self.io.leaf_total / self.updates if self.updates else 0.0

    @property
    def cpu_ms_per_update(self) -> float:
        return 1000.0 * self.cpu_seconds / self.updates if self.updates else 0.0


def measure_updates(tree, objects, count: int) -> UpdateMeasurement:
    """Replay ``count`` updates and average their cost."""
    before = tree.stats.snapshot()
    started = time.process_time()
    for oid, old_rect, new_rect in objects.updates(count):
        tree.update_object(oid, old_rect, new_rect)
    cpu = time.process_time() - started
    measurement = UpdateMeasurement(
        updates=count, io=tree.stats.snapshot() - before, cpu_seconds=cpu
    )
    obs = getattr(tree, "obs", None)
    if obs is not None:
        obs.event(
            "measure.updates",
            tree=tree.name,
            updates=count,
            cpu_seconds=cpu,
            io=measurement.io.as_dict(),
        )
    return measurement


def measure_batched_updates(
    tree, objects, count: int, batch_size: int
) -> UpdateMeasurement:
    """Replay ``count`` updates through ``apply_batch`` in fixed groups.

    The same update stream as :func:`measure_updates`, chunked into
    batches of ``batch_size`` operations; the final partial batch is
    applied too, so exactly ``count`` updates reach the tree either way.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    before = tree.stats.snapshot()
    started = time.process_time()
    batch: List = []
    for oid, old_rect, new_rect in objects.updates(count):
        batch.append(("update", oid, new_rect, old_rect))
        if len(batch) >= batch_size:
            tree.apply_batch(batch)
            batch = []
    if batch:
        tree.apply_batch(batch)
    cpu = time.process_time() - started
    measurement = UpdateMeasurement(
        updates=count, io=tree.stats.snapshot() - before, cpu_seconds=cpu
    )
    obs = getattr(tree, "obs", None)
    if obs is not None:
        obs.event(
            "measure.batched_updates",
            tree=tree.name,
            updates=count,
            batch_size=batch_size,
            cpu_seconds=cpu,
            io=measurement.io.as_dict(),
        )
    return measurement


@dataclass
class QueryMeasurement:
    """Averaged query-cost metrics over one measured stream."""

    queries: int
    io: IOSnapshot
    cpu_seconds: float
    results: int = 0

    @property
    def io_per_query(self) -> float:
        return self.io.counted_total / self.queries if self.queries else 0.0


def measure_queries(
    tree, queries: RangeQueryGenerator, count: int
) -> QueryMeasurement:
    """Evaluate ``count`` range queries and average their cost."""
    before = tree.stats.snapshot()
    started = time.process_time()
    results = 0
    for window in queries.queries(count):
        results += len(tree.search(window))
    cpu = time.process_time() - started
    measurement = QueryMeasurement(
        queries=count,
        io=tree.stats.snapshot() - before,
        cpu_seconds=cpu,
        results=results,
    )
    obs = getattr(tree, "obs", None)
    if obs is not None:
        obs.event(
            "measure.queries",
            tree=tree.name,
            queries=count,
            cpu_seconds=cpu,
            results=results,
            io=measurement.io.as_dict(),
        )
    return measurement


@dataclass
class TraceMeasurement:
    """Cost of replaying a mixed trace."""

    operations: int
    updates: int
    queries: int
    io: IOSnapshot

    @property
    def io_per_operation(self) -> float:
        return self.io.counted_total / self.operations if self.operations else 0.0


def run_trace(tree, trace: Sequence[Operation]) -> TraceMeasurement:
    """Replay a prepared mixed trace against one tree."""
    before = tree.stats.snapshot()
    updates = queries = 0
    for op in trace:
        if isinstance(op, UpdateOp):
            tree.update_object(op.oid, op.old_rect, op.new_rect)
            updates += 1
        else:
            tree.search(op.window)
            queries += 1
    return TraceMeasurement(
        operations=len(trace),
        updates=updates,
        queries=queries,
        io=tree.stats.snapshot() - before,
    )


def auxiliary_size_bytes(tree) -> int:
    """Size of the tree's auxiliary structure (Figures 12d/13d/14d):
    the Update Memo for the RUM-tree, the secondary index for the
    FUR-tree, nothing for the R*-tree."""
    if isinstance(tree, RUMTree):
        return tree.memo_size_bytes()
    index = getattr(tree, "index", None)
    if index is not None:
        return index.size_bytes()
    return 0


@dataclass
class ExperimentResult:
    """Uniform container every figure driver returns.

    ``rows`` is a list of dicts (one per measured configuration); the
    bench wrappers print them and EXPERIMENTS.md records them.
    """

    experiment: str
    description: str
    rows: List[Dict] = field(default_factory=list)

    def column(self, key: str) -> List:
        return [row[key] for row in self.rows]
